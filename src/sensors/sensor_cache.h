#pragma once

// In-memory per-sensor cache of recent readings. This is the hot data path of
// the whole framework: Pushers fill it at sampling time and the Wintermute
// Query Engine reads views from it instead of round-tripping to the storage
// backend. The cache retains readings within a sliding time window and
// supports the two query modes the paper evaluates (Fig. 5):
//
//  * relative mode — "the last X nanoseconds of data", resolved against the
//    most recent reading with O(1) index arithmetic over the ring buffer,
//    exploiting the (near-)uniform sampling interval;
//  * absolute mode — "[t0, t1] by wall-clock timestamp", resolved with a
//    binary search over the ring, O(log N).
//
// Each mode comes in three read flavours (docs/PERFORMANCE.md):
//  * view*     — materialises a ReadingVector copy (compatibility API);
//  * forEach*  — copy-free visitation under the cache's shared lock;
//  * stats*    — fused reduction (count/sum/min/max/first/last) in one pass
//                with no allocation, covering the aggregator, smoothing and
//                perfmetrics hot paths.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/time_utils.h"
#include "sensors/metadata.h"
#include "sensors/reading.h"
#include "sensors/topic_table.h"

namespace wm::sensors {

/// One-pass reduction over a time range of readings: everything the built-in
/// operator plugins need from a window without materialising it.
struct RangeStats {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    Reading first;  // oldest reading in the range
    Reading last;   // newest reading in the range

    double average() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Counter delta over the range (perfmetrics, aggregator delta mode).
    double delta() const { return last.value - first.value; }
    /// Covered wall-clock span in seconds.
    double spanSec() const {
        return static_cast<double>(last.timestamp - first.timestamp) /
               static_cast<double>(common::kNsPerSec);
    }

    void accumulate(const Reading& reading) {
        if (count == 0) {
            min = max = reading.value;
            first = reading;
        } else {
            if (reading.value < min) min = reading.value;
            if (reading.value > max) max = reading.value;
        }
        last = reading;
        sum += reading.value;
        ++count;
    }

    /// Combines the reductions of two ranges (aggregation across inputs).
    void merge(const RangeStats& other) {
        if (other.count == 0) return;
        if (count == 0) {
            *this = other;
            return;
        }
        sum += other.sum;
        if (other.min < min) min = other.min;
        if (other.max > max) max = other.max;
        if (other.first.timestamp < first.timestamp) first = other.first;
        if (other.last.timestamp > last.timestamp) last = other.last;
        count += other.count;
    }
};

class SensorCache {
  public:
    /// `window_ns` is the retention window; readings older than
    /// (newest - window) are evicted on insertion. `nominal_interval_ns`
    /// seeds the O(1) relative-view arithmetic and is refined online from
    /// observed inter-arrival times.
    explicit SensorCache(common::TimestampNs window_ns = 180 * common::kNsPerSec,
                         common::TimestampNs nominal_interval_ns = common::kNsPerSec);

    /// Inserts a reading. Out-of-order readings (older than the newest) are
    /// accepted only if they still fall inside the window; they are placed
    /// to keep the buffer time-ordered. Returns false if dropped.
    bool store(const Reading& reading);

    /// Most recent reading, if any.
    std::optional<Reading> latest() const;

    /// Relative view: all readings with timestamp >= newest - offset_ns.
    /// O(1) positioning via interval arithmetic, then a bounded local fix-up.
    ReadingVector viewRelative(common::TimestampNs offset_ns) const;

    /// Absolute view: all readings with t0 <= timestamp <= t1. O(log N).
    ReadingVector viewAbsolute(common::TimestampNs t0, common::TimestampNs t1) const;

    /// Copy-free relative view: invokes `visit` on each reading in time
    /// order, under the cache's shared lock. `visit` must not call back
    /// into the cache (the lock is held) and should be cheap.
    template <typename Visitor>
    void forEachRelative(common::TimestampNs offset_ns, Visitor&& visit) const {
        common::ReadLock lock(mutex_);
        if (count_ == 0) return;
        visitRangeLocked(relativeFirstLocked(offset_ns), count_, visit);
    }

    /// Copy-free absolute view over [t0, t1], in time order.
    template <typename Visitor>
    void forEachAbsolute(common::TimestampNs t0, common::TimestampNs t1,
                         Visitor&& visit) const {
        common::ReadLock lock(mutex_);
        if (count_ == 0 || t1 < t0) return;
        visitRangeLocked(lowerBoundLocked(t0), lowerBoundLocked(t1 + 1), visit);
    }

    /// Fused one-pass reduction over the relative window; nullopt if empty.
    std::optional<RangeStats> statsRelative(common::TimestampNs offset_ns) const;

    /// Fused one-pass reduction over [t0, t1]; nullopt if empty.
    std::optional<RangeStats> statsAbsolute(common::TimestampNs t0,
                                            common::TimestampNs t1) const;

    /// Average of readings newer than (newest - offset_ns); nullopt if empty.
    std::optional<double> averageRelative(common::TimestampNs offset_ns) const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    common::TimestampNs windowNs() const { return window_ns_; }

    /// Bytes held by this cache: the object itself plus the ring buffer's
    /// current allocation. Compared against the wm-check capacity model
    /// (src/analysis/capacity.cpp) by the cross-validation test.
    std::size_t memoryBytes() const;

    /// Current estimate of the sampling interval (refined from data).
    common::TimestampNs estimatedIntervalNs() const;

  private:
    // Index helpers; callers hold the lock (shared suffices for reads).
    std::size_t physicalIndex(std::size_t logical) const WM_REQUIRES_SHARED(mutex_) {
        return (head_ + logical) % buffer_.size();
    }
    const Reading& at(std::size_t logical) const WM_REQUIRES_SHARED(mutex_) {
        return buffer_[physicalIndex(logical)];
    }
    Reading& at(std::size_t logical) WM_REQUIRES(mutex_) {
        return buffer_[physicalIndex(logical)];
    }
    void evictExpiredLocked() WM_REQUIRES(mutex_);
    void ensureCapacityLocked() WM_REQUIRES(mutex_);
    /// First logical index with timestamp >= t (binary search), or count_.
    std::size_t lowerBoundLocked(common::TimestampNs t) const WM_REQUIRES_SHARED(mutex_);
    /// First logical index inside the relative window ending at the newest
    /// reading: O(1) interval arithmetic plus a bounded local fix-up.
    /// Precondition: count_ > 0.
    std::size_t relativeFirstLocked(common::TimestampNs offset_ns) const
        WM_REQUIRES_SHARED(mutex_);
    ReadingVector copyRangeLocked(std::size_t first, std::size_t last) const
        WM_REQUIRES_SHARED(mutex_);
    /// Visits logical range [first, last) as the (at most two) contiguous
    /// physical spans of the ring — no per-element modulo indexing.
    template <typename Visitor>
    void visitRangeLocked(std::size_t first, std::size_t last,
                          Visitor&& visit) const WM_REQUIRES_SHARED(mutex_) {
        if (first >= last) return;
        const std::size_t count = last - first;
        const std::size_t start = physicalIndex(first);
        const std::size_t first_chunk = std::min(count, buffer_.size() - start);
        const Reading* data = buffer_.data();
        for (std::size_t i = start; i < start + first_chunk; ++i) visit(data[i]);
        for (std::size_t i = 0; i < count - first_chunk; ++i) visit(data[i]);
    }

    mutable common::SharedMutex mutex_{"SensorCache", common::LockRank::kSensorCache};
    // Ring buffer: logical order = insertion/time order.
    std::vector<Reading> buffer_ WM_GUARDED_BY(mutex_);
    std::size_t head_ WM_GUARDED_BY(mutex_) = 0;  // physical index of the oldest element
    std::size_t count_ WM_GUARDED_BY(mutex_) = 0;
    common::TimestampNs window_ns_;  // immutable after construction
    common::TimestampNs interval_estimate_ns_ WM_GUARDED_BY(mutex_);
};

/// Registry mapping sensor topics to their caches; shared between the
/// sampling side (Pusher plugins) and the query side (Query Engine).
///
/// Topics are interned into a TopicTable (process-wide by default), and the
/// id-keyed lookup path is lock-free: `find(TopicId)` reads the cache
/// pointer from append-only chunked storage with two atomic loads — no
/// string hash, no CacheStore lock. Consumers resolve `topic -> TopicId`
/// once (unit-resolution time) and query through the handle afterwards.
class CacheStore {
  public:
    /// `table` is the interning table (defaults to the process-wide one);
    /// not owned, must outlive the store.
    explicit CacheStore(common::TimestampNs default_window_ns = 180 * common::kNsPerSec,
                        TopicTable* table = nullptr)
        : default_window_ns_(default_window_ns),
          table_(table != nullptr ? table : &TopicTable::instance()) {}
    ~CacheStore();

    CacheStore(const CacheStore&) = delete;
    CacheStore& operator=(const CacheStore&) = delete;

    /// Returns the cache for `topic`, creating it on first use. Interns the
    /// topic; the metadata overload records the publish flag in the
    /// interned entry (read lock-free by the Pusher's publication loop).
    SensorCache& getOrCreate(const SensorMetadata& metadata);
    SensorCache& getOrCreate(const std::string& topic);

    /// Returns nullptr when the topic has no cache yet.
    const SensorCache* find(const std::string& topic) const;
    SensorCache* find(const std::string& topic);

    /// Lock-free id-keyed lookup (the per-read hot path).
    SensorCache* find(TopicId id) const {
        if (id >= id_limit_.load(std::memory_order_acquire)) return nullptr;
        const std::atomic<SensorCache*>* chunk =
            cache_chunks_[id >> kChunkBits].load(std::memory_order_acquire);
        return chunk == nullptr ? nullptr
                                : chunk[id & (kChunkSize - 1)].load(std::memory_order_acquire);
    }

    /// Interned id of `topic`, or kInvalidTopicId when never interned.
    TopicId idOf(const std::string& topic) const { return table_->find(topic); }

    /// Metadata recorded at creation time (empty topic when unknown).
    SensorMetadata metadataFor(const std::string& topic) const;

    /// Publish flag without copying the full metadata. The id overload is
    /// the hot path of the Pusher's publication loop: lock-free, no hash.
    /// Unknown topics default to publishable.
    bool publishAllowed(TopicId id) const { return table_->publishAllowed(id); }
    bool publishAllowed(const std::string& topic) const {
        return table_->publishAllowed(table_->find(topic));
    }

    TopicTable& topicTable() const { return *table_; }

    std::vector<std::string> topics() const;
    std::size_t sensorCount() const;
    common::TimestampNs defaultWindowNs() const { return default_window_ns_; }

    /// Flat per-entry overhead charged on top of each cache's own bytes:
    /// the hash-map node, metadata strings and the chunked-index slot. The
    /// wm-check capacity model uses the same constant so the static
    /// prediction and this measurement agree on what "cache memory" means.
    static constexpr std::size_t kEntryOverheadEstimateBytes = 96;

    /// Total bytes across all caches: sum of SensorCache::memoryBytes()
    /// plus kEntryOverheadEstimateBytes per entry.
    std::size_t memoryBytes() const;

  private:
    struct Entry {
        SensorMetadata metadata;
        std::unique_ptr<SensorCache> cache;
    };

    // Chunked id -> cache pointers, published with release stores after the
    // entry is fully constructed (same append-only scheme as TopicTable).
    static constexpr std::size_t kChunkBits = 10;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
    static constexpr std::size_t kMaxChunks = 1 << 14;

    SensorCache& getOrCreateInterned(TopicId id, const SensorMetadata& metadata);
    /// Publishes `cache` under `id` in the chunked index (write lock held).
    void publishCachePointerLocked(TopicId id, SensorCache* cache) WM_REQUIRES(mutex_);

    mutable common::SharedMutex mutex_{"CacheStore", common::LockRank::kCacheStore};
    // The SensorCache objects are heap-allocated and never destroyed while
    // the store lives, so references returned by getOrCreate()/find() stay
    // valid outside the store lock.
    std::unordered_map<TopicId, Entry> entries_ WM_GUARDED_BY(mutex_);
    std::vector<std::atomic<std::atomic<SensorCache*>*>> cache_chunks_{kMaxChunks};
    /// Ids strictly below this limit are safe to index (monotone).
    std::atomic<TopicId> id_limit_{0};
    common::TimestampNs default_window_ns_;  // immutable after construction
    TopicTable* table_;                      // not owned
};

/// A resolved sensor handle: a topic string plus its lazily-interned id.
/// Operators bind handles at unit-resolution time; per-read queries then go
/// `handle -> find(TopicId)` with no hashing and no CacheStore lock.
/// Handles memoise the id against the process-wide interning table the
/// stores share, so one handle works across Pusher and Collect Agent.
class CacheHandle {
  public:
    explicit CacheHandle(std::string topic) : topic_(std::move(topic)) {}

    const std::string& topic() const { return topic_; }

    /// Interned id, resolved once against `table` and memoised.
    TopicId id(const TopicTable& table) const {
        TopicId id = id_.load(std::memory_order_relaxed);
        if (id == kInvalidTopicId) {
            id = table.find(topic_);
            if (id != kInvalidTopicId) id_.store(id, std::memory_order_relaxed);
        }
        return id;
    }

    /// Cache of this topic in `store`, or nullptr when absent. Lock-free
    /// after the first call interned the id.
    SensorCache* resolve(const CacheStore& store) const {
        return store.find(id(store.topicTable()));
    }

  private:
    std::string topic_;
    mutable std::atomic<TopicId> id_{kInvalidTopicId};
};

using CacheHandlePtr = std::shared_ptr<const CacheHandle>;

/// Builds a shared handle for `topic`.
inline CacheHandlePtr makeCacheHandle(std::string topic) {
    return std::make_shared<const CacheHandle>(std::move(topic));
}

}  // namespace wm::sensors
