#pragma once

// In-memory per-sensor cache of recent readings. This is the hot data path of
// the whole framework: Pushers fill it at sampling time and the Wintermute
// Query Engine reads views from it instead of round-tripping to the storage
// backend. The cache retains readings within a sliding time window and
// supports the two query modes the paper evaluates (Fig. 5):
//
//  * relative mode — "the last X nanoseconds of data", resolved against the
//    most recent reading with O(1) index arithmetic over the ring buffer,
//    exploiting the (near-)uniform sampling interval;
//  * absolute mode — "[t0, t1] by wall-clock timestamp", resolved with a
//    binary search over the ring, O(log N).

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/time_utils.h"
#include "sensors/metadata.h"
#include "sensors/reading.h"

namespace wm::sensors {

class SensorCache {
  public:
    /// `window_ns` is the retention window; readings older than
    /// (newest - window) are evicted on insertion. `nominal_interval_ns`
    /// seeds the O(1) relative-view arithmetic and is refined online from
    /// observed inter-arrival times.
    explicit SensorCache(common::TimestampNs window_ns = 180 * common::kNsPerSec,
                         common::TimestampNs nominal_interval_ns = common::kNsPerSec);

    /// Inserts a reading. Out-of-order readings (older than the newest) are
    /// accepted only if they still fall inside the window; they are placed
    /// to keep the buffer time-ordered. Returns false if dropped.
    bool store(const Reading& reading);

    /// Most recent reading, if any.
    std::optional<Reading> latest() const;

    /// Relative view: all readings with timestamp >= newest - offset_ns.
    /// O(1) positioning via interval arithmetic, then a bounded local fix-up.
    ReadingVector viewRelative(common::TimestampNs offset_ns) const;

    /// Absolute view: all readings with t0 <= timestamp <= t1. O(log N).
    ReadingVector viewAbsolute(common::TimestampNs t0, common::TimestampNs t1) const;

    /// Average of readings newer than (newest - offset_ns); nullopt if empty.
    std::optional<double> averageRelative(common::TimestampNs offset_ns) const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    common::TimestampNs windowNs() const { return window_ns_; }

    /// Current estimate of the sampling interval (refined from data).
    common::TimestampNs estimatedIntervalNs() const;

  private:
    // Index helpers; callers hold the lock (shared suffices for reads).
    std::size_t physicalIndex(std::size_t logical) const WM_REQUIRES_SHARED(mutex_) {
        return (head_ + logical) % buffer_.size();
    }
    const Reading& at(std::size_t logical) const WM_REQUIRES_SHARED(mutex_) {
        return buffer_[physicalIndex(logical)];
    }
    Reading& at(std::size_t logical) WM_REQUIRES(mutex_) {
        return buffer_[physicalIndex(logical)];
    }
    void evictExpiredLocked() WM_REQUIRES(mutex_);
    void ensureCapacityLocked() WM_REQUIRES(mutex_);
    /// First logical index with timestamp >= t (binary search), or count_.
    std::size_t lowerBoundLocked(common::TimestampNs t) const WM_REQUIRES_SHARED(mutex_);
    ReadingVector copyRangeLocked(std::size_t first, std::size_t last) const
        WM_REQUIRES_SHARED(mutex_);

    mutable common::SharedMutex mutex_{"SensorCache", common::LockRank::kSensorCache};
    // Ring buffer: logical order = insertion/time order.
    std::vector<Reading> buffer_ WM_GUARDED_BY(mutex_);
    std::size_t head_ WM_GUARDED_BY(mutex_) = 0;  // physical index of the oldest element
    std::size_t count_ WM_GUARDED_BY(mutex_) = 0;
    common::TimestampNs window_ns_;  // immutable after construction
    common::TimestampNs interval_estimate_ns_ WM_GUARDED_BY(mutex_);
};

/// Registry mapping sensor topics to their caches; shared between the
/// sampling side (Pusher plugins) and the query side (Query Engine).
class CacheStore {
  public:
    explicit CacheStore(common::TimestampNs default_window_ns = 180 * common::kNsPerSec)
        : default_window_ns_(default_window_ns) {}

    /// Returns the cache for `topic`, creating it on first use.
    SensorCache& getOrCreate(const SensorMetadata& metadata);
    SensorCache& getOrCreate(const std::string& topic);

    /// Returns nullptr when the topic has no cache yet.
    const SensorCache* find(const std::string& topic) const;
    SensorCache* find(const std::string& topic);

    /// Metadata recorded at creation time (empty topic when unknown).
    SensorMetadata metadataFor(const std::string& topic) const;

    /// Publish flag without copying the full metadata (hot path of the
    /// Pusher's publication loop). Unknown topics default to publishable.
    bool publishAllowed(const std::string& topic) const;

    std::vector<std::string> topics() const;
    std::size_t sensorCount() const;
    common::TimestampNs defaultWindowNs() const { return default_window_ns_; }

  private:
    struct Entry {
        SensorMetadata metadata;
        std::unique_ptr<SensorCache> cache;
    };

    mutable common::SharedMutex mutex_{"CacheStore", common::LockRank::kCacheStore};
    // The SensorCache objects are heap-allocated and never destroyed while
    // the store lives, so references returned by getOrCreate()/find() stay
    // valid outside the store lock.
    std::unordered_map<std::string, Entry> entries_ WM_GUARDED_BY(mutex_);
    common::TimestampNs default_window_ns_;  // immutable after construction
};

}  // namespace wm::sensors
