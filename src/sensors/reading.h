#pragma once

// The atomic monitoring datum of the whole stack: DCDB identifies every
// sensor reading by a numerical value and a timestamp.

#include <cstdint>
#include <vector>

#include "common/time_utils.h"

namespace wm::sensors {

struct Reading {
    common::TimestampNs timestamp = 0;
    double value = 0.0;

    friend bool operator==(const Reading&, const Reading&) = default;
};

using ReadingVector = std::vector<Reading>;

}  // namespace wm::sensors
