#include "sensors/sensor_cache.h"

#include <algorithm>

namespace wm::sensors {

SensorCache::SensorCache(common::TimestampNs window_ns,
                         common::TimestampNs nominal_interval_ns)
    : window_ns_(window_ns > 0 ? window_ns : common::kNsPerSec),
      interval_estimate_ns_(nominal_interval_ns > 0 ? nominal_interval_ns
                                                    : common::kNsPerSec) {
    // Start with capacity for one window at the nominal rate (plus slack);
    // the buffer grows geometrically if the real rate is higher.
    const std::size_t estimate =
        static_cast<std::size_t>(window_ns_ / interval_estimate_ns_) + 8;
    buffer_.resize(estimate);
}

bool SensorCache::store(const Reading& reading) {
    common::WriteLock lock(mutex_);
    if (count_ > 0) {
        const Reading& newest = at(count_ - 1);
        if (reading.timestamp < newest.timestamp - window_ns_) return false;
        if (reading.timestamp >= newest.timestamp) {
            // Common fast path: in-order arrival. Refine the interval
            // estimate with an exponential moving average.
            const common::TimestampNs delta = reading.timestamp - newest.timestamp;
            if (delta > 0) {
                interval_estimate_ns_ = (interval_estimate_ns_ * 7 + delta) / 8;
                if (interval_estimate_ns_ <= 0) interval_estimate_ns_ = 1;
            }
            ensureCapacityLocked();
            at(count_) = reading;
            ++count_;
        } else {
            // Out-of-order: insert while keeping time order (rare path).
            ensureCapacityLocked();
            std::size_t pos = lowerBoundLocked(reading.timestamp);
            for (std::size_t i = count_; i > pos; --i) at(i) = at(i - 1);
            at(pos) = reading;
            ++count_;
        }
    } else {
        ensureCapacityLocked();
        at(0) = reading;
        count_ = 1;
    }
    evictExpiredLocked();
    return true;
}

std::optional<Reading> SensorCache::latest() const {
    common::ReadLock lock(mutex_);
    if (count_ == 0) return std::nullopt;
    return at(count_ - 1);
}

ReadingVector SensorCache::viewRelative(common::TimestampNs offset_ns) const {
    common::ReadLock lock(mutex_);
    if (count_ == 0) return {};
    return copyRangeLocked(relativeFirstLocked(offset_ns), count_);
}

ReadingVector SensorCache::viewAbsolute(common::TimestampNs t0,
                                        common::TimestampNs t1) const {
    common::ReadLock lock(mutex_);
    if (count_ == 0 || t1 < t0) return {};
    const std::size_t first = lowerBoundLocked(t0);
    std::size_t last = lowerBoundLocked(t1 + 1);
    return copyRangeLocked(first, last);
}

std::optional<RangeStats> SensorCache::statsRelative(common::TimestampNs offset_ns) const {
    common::ReadLock lock(mutex_);
    if (count_ == 0) return std::nullopt;
    RangeStats stats;
    visitRangeLocked(relativeFirstLocked(offset_ns), count_,
                     [&stats](const Reading& r) { stats.accumulate(r); });
    return stats;
}

std::optional<RangeStats> SensorCache::statsAbsolute(common::TimestampNs t0,
                                                     common::TimestampNs t1) const {
    common::ReadLock lock(mutex_);
    if (count_ == 0 || t1 < t0) return std::nullopt;
    RangeStats stats;
    visitRangeLocked(lowerBoundLocked(t0), lowerBoundLocked(t1 + 1),
                     [&stats](const Reading& r) { stats.accumulate(r); });
    if (stats.count == 0) return std::nullopt;
    return stats;
}

std::optional<double> SensorCache::averageRelative(common::TimestampNs offset_ns) const {
    // Fused path: one lock, one pass, no materialised vector.
    const std::optional<RangeStats> stats = statsRelative(offset_ns);
    if (!stats) return std::nullopt;
    return stats->average();
}

std::size_t SensorCache::size() const {
    common::ReadLock lock(mutex_);
    return count_;
}

common::TimestampNs SensorCache::estimatedIntervalNs() const {
    common::ReadLock lock(mutex_);
    return interval_estimate_ns_;
}

std::size_t SensorCache::memoryBytes() const {
    common::ReadLock lock(mutex_);
    return sizeof(SensorCache) + buffer_.capacity() * sizeof(Reading);
}

void SensorCache::evictExpiredLocked() {
    if (count_ == 0) return;
    const common::TimestampNs cutoff = at(count_ - 1).timestamp - window_ns_;
    while (count_ > 1 && at(0).timestamp < cutoff) {
        head_ = (head_ + 1) % buffer_.size();
        --count_;
    }
}

void SensorCache::ensureCapacityLocked() {
    if (count_ < buffer_.size()) return;
    std::vector<Reading> grown(buffer_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) grown[i] = at(i);
    buffer_ = std::move(grown);
    head_ = 0;
}

std::size_t SensorCache::lowerBoundLocked(common::TimestampNs t) const {
    std::size_t lo = 0;
    std::size_t hi = count_;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (at(mid).timestamp < t) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

std::size_t SensorCache::relativeFirstLocked(common::TimestampNs offset_ns) const {
    if (offset_ns <= 0) return count_ - 1;  // just the newest reading
    const common::TimestampNs newest = at(count_ - 1).timestamp;
    const common::TimestampNs cutoff = newest - offset_ns;
    // O(1) positioning: estimate how many readings fit in the offset, then
    // fix up locally (a few steps at most when sampling is near-uniform).
    std::size_t span = static_cast<std::size_t>(offset_ns / interval_estimate_ns_) + 1;
    span = std::min(span, count_);
    std::size_t first = count_ - span;
    while (first > 0 && at(first - 1).timestamp >= cutoff) --first;
    while (first < count_ && at(first).timestamp < cutoff) ++first;
    return first;
}

ReadingVector SensorCache::copyRangeLocked(std::size_t first, std::size_t last) const {
    ReadingVector out;
    if (first >= last) return out;
    // The logical range spans at most two contiguous chunks of the ring;
    // bulk-copy them instead of per-element modulo indexing.
    const std::size_t count = last - first;
    const std::size_t start = physicalIndex(first);
    const std::size_t first_chunk = std::min(count, buffer_.size() - start);
    out.reserve(count);
    out.insert(out.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(start),
               buffer_.begin() + static_cast<std::ptrdiff_t>(start + first_chunk));
    out.insert(out.end(), buffer_.begin(),
               buffer_.begin() + static_cast<std::ptrdiff_t>(count - first_chunk));
    return out;
}

CacheStore::~CacheStore() {
    for (auto& slot : cache_chunks_) {
        delete[] slot.load(std::memory_order_acquire);
    }
}

SensorCache& CacheStore::getOrCreate(const SensorMetadata& metadata) {
    // Interning takes the TopicTable lock only on first sight of the topic
    // and never holds the store lock while doing so.
    return getOrCreateInterned(table_->intern(metadata.topic), metadata);
}

SensorCache& CacheStore::getOrCreate(const std::string& topic) {
    SensorMetadata metadata;
    metadata.topic = topic;
    return getOrCreate(metadata);
}

SensorCache& CacheStore::getOrCreateInterned(TopicId id, const SensorMetadata& metadata) {
    if (SensorCache* cache = find(id)) return *cache;  // lock-free fast path
    common::WriteLock lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
        Entry entry;
        entry.metadata = metadata;
        entry.cache = std::make_unique<SensorCache>(default_window_ns_, metadata.interval_ns);
        SensorCache* cache = entry.cache.get();
        it = entries_.emplace(id, std::move(entry)).first;
        table_->setPublishAllowed(id, metadata.topic.empty() || metadata.publish);
        publishCachePointerLocked(id, cache);
    }
    return *it->second.cache;
}

void CacheStore::publishCachePointerLocked(TopicId id, SensorCache* cache) {
    const std::size_t chunk_index = id >> kChunkBits;
    std::atomic<SensorCache*>* chunk =
        cache_chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
        chunk = new std::atomic<SensorCache*>[kChunkSize]();  // all-null slots
        cache_chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[id & (kChunkSize - 1)].store(cache, std::memory_order_release);
    TopicId limit = id_limit_.load(std::memory_order_relaxed);
    while (limit <= id &&
           !id_limit_.compare_exchange_weak(limit, id + 1, std::memory_order_release,
                                            std::memory_order_relaxed)) {
    }
}

const SensorCache* CacheStore::find(const std::string& topic) const {
    return find(table_->find(topic));
}

SensorCache* CacheStore::find(const std::string& topic) {
    return find(table_->find(topic));
}

SensorMetadata CacheStore::metadataFor(const std::string& topic) const {
    const TopicId id = table_->find(topic);
    if (id == kInvalidTopicId) return SensorMetadata{};
    common::ReadLock lock(mutex_);
    auto it = entries_.find(id);
    return it == entries_.end() ? SensorMetadata{} : it->second.metadata;
}

std::vector<std::string> CacheStore::topics() const {
    common::ReadLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) out.push_back(entry.metadata.topic);
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t CacheStore::sensorCount() const {
    common::ReadLock lock(mutex_);
    return entries_.size();
}

std::size_t CacheStore::memoryBytes() const {
    // Snapshot the cache pointers under the store lock, then sum outside it
    // so the store lock is not held across every per-cache lock; the caches
    // are never destroyed while the store lives.
    std::vector<const SensorCache*> caches;
    {
        common::ReadLock lock(mutex_);
        caches.reserve(entries_.size());
        for (const auto& [id, entry] : entries_) caches.push_back(entry.cache.get());
    }
    std::size_t total = caches.size() * kEntryOverheadEstimateBytes;
    for (const SensorCache* cache : caches) total += cache->memoryBytes();
    return total;
}

}  // namespace wm::sensors
