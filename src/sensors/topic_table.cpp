#include "sensors/topic_table.h"

namespace wm::sensors {

TopicTable& TopicTable::instance() {
    static TopicTable table;
    return table;
}

TopicTable::~TopicTable() {
    const std::size_t count = size_.load(std::memory_order_acquire);
    for (std::size_t chunk = 0; chunk * kChunkSize < count; ++chunk) {
        delete[] chunks_[chunk].load(std::memory_order_acquire);
    }
}

TopicId TopicTable::intern(std::string_view topic) {
    {
        common::ReadLock lock(mutex_);
        auto it = ids_.find(topic);
        if (it != ids_.end()) return it->second;
    }
    common::WriteLock lock(mutex_);
    auto it = ids_.find(topic);
    if (it != ids_.end()) return it->second;
    const std::size_t index = size_.load(std::memory_order_relaxed);
    if (index >= kMaxChunks * kChunkSize) return kInvalidTopicId;  // table full
    const std::size_t chunk_index = index >> kChunkBits;
    Entry* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
        chunk = new Entry[kChunkSize];
        chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    Entry& slot = chunk[index & (kChunkSize - 1)];
    slot.name.assign(topic);
    const auto id = static_cast<TopicId>(index);
    // The map key views the entry's own string: stable storage, no copy.
    ids_.emplace(std::string_view{slot.name}, id);
    size_.store(index + 1, std::memory_order_release);
    return id;
}

TopicId TopicTable::find(std::string_view topic) const {
    common::ReadLock lock(mutex_);
    auto it = ids_.find(topic);
    return it == ids_.end() ? kInvalidTopicId : it->second;
}

}  // namespace wm::sensors
