#pragma once

// Static description of a sensor: its topic (which doubles as its unique
// name and its position in the sensor tree), unit, sampling interval and
// publication settings. Mirrors DCDB's SensorMetadata.

#include <string>

#include "common/string_utils.h"
#include "common/time_utils.h"

namespace wm::sensors {

struct SensorMetadata {
    /// Canonical slash-separated topic, e.g. "/rack0/chassis1/server2/power".
    std::string topic;
    /// Physical unit for display purposes ("W", "C", "ops", ...).
    std::string unit;
    /// Nominal sampling interval; 0 when the sensor is event-driven.
    common::TimestampNs interval_ns = common::kNsPerSec;
    /// Multiplicative scaling factor applied on ingestion.
    double scale = 1.0;
    /// Whether readings are forwarded over MQTT to the Collect Agent.
    bool publish = true;
    /// Whether the sensor is monotonically increasing (e.g. a counter);
    /// consumers may take deltas instead of raw values.
    bool monotonic = false;
    /// Time-to-live in the storage backend; 0 keeps data indefinitely.
    common::TimestampNs ttl_ns = 0;

    /// Sensor name = last topic segment.
    std::string name() const { return common::pathLeaf(topic); }
};

}  // namespace wm::sensors
