#pragma once

// Process-wide topic interning (hot-path data plane, docs/PERFORMANCE.md).
//
// Every sensor topic string is mapped once to a dense TopicId handle; all
// per-reading paths afterwards carry the handle instead of re-hashing the
// string. The table is append-only — topics are never removed — which makes
// the id -> entry direction lock-free: entries live in fixed-size chunks
// whose pointers are published with release stores, and readers only index
// into chunks at ids below the published size. The string -> id direction
// (interning) takes a shared/exclusive lock, but it runs once per topic per
// process, at configuration or first-contact time, never per reading.
//
// Per-topic hot flags that the data plane reads on every sample (today: the
// MQTT publish flag of the Pusher's publication loop) are folded into the
// interned entry as atomics, so the loop reads them through the handle with
// no lock and no hash.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"

namespace wm::sensors {

/// Dense handle for an interned topic. Ids are assigned contiguously from 0
/// in interning order and are stable for the lifetime of the process.
using TopicId = std::uint32_t;

inline constexpr TopicId kInvalidTopicId = std::numeric_limits<TopicId>::max();

class TopicTable {
  public:
    TopicTable() = default;
    TopicTable(const TopicTable&) = delete;
    TopicTable& operator=(const TopicTable&) = delete;
    ~TopicTable();

    /// Process-wide instance. Hosts and caches intern against this table so
    /// ids agree across Pusher, Collect Agent and Query Engine; tests may
    /// construct private tables instead.
    static TopicTable& instance();

    /// Returns the id of `topic`, interning it on first sight.
    TopicId intern(std::string_view topic);

    /// Returns the id of `topic`, or kInvalidTopicId when never interned.
    TopicId find(std::string_view topic) const;

    /// Topic string of an interned id. The reference is stable forever
    /// (append-only storage). Precondition: id came from this table.
    const std::string& name(TopicId id) const {
        return entry(id).name;
    }

    /// Publish flag of the topic (MQTT forwarding); lock-free read, used by
    /// the Pusher's publication loop on every sample. Defaults to true.
    bool publishAllowed(TopicId id) const {
        return id < size() ? entry(id).publish.load(std::memory_order_relaxed) : true;
    }

    /// Updates the publish flag (sensor metadata registration).
    void setPublishAllowed(TopicId id, bool allowed) {
        if (id < size()) entry(id).publish.store(allowed, std::memory_order_relaxed);
    }

    /// Number of interned topics; ids [0, size) are valid.
    std::size_t size() const { return size_.load(std::memory_order_acquire); }

  private:
    struct Entry {
        std::string name;
        std::atomic<bool> publish{true};
    };

    // Chunked, append-only entry storage: 1024 entries per chunk, chunk
    // pointers published with release stores. Readers never observe a
    // partially-built entry because size_ is bumped (release) only after
    // the entry is fully constructed.
    static constexpr std::size_t kChunkBits = 10;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
    static constexpr std::size_t kMaxChunks = 1 << 14;  // 16M topics

    const Entry& entry(TopicId id) const {
        const Entry* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
        return chunk[id & (kChunkSize - 1)];
    }
    Entry& entry(TopicId id) {
        Entry* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
        return chunk[id & (kChunkSize - 1)];
    }

    mutable common::SharedMutex mutex_{"TopicTable", common::LockRank::kTopicTable};
    std::unordered_map<std::string_view, TopicId> ids_ WM_GUARDED_BY(mutex_);
    std::vector<std::atomic<Entry*>> chunks_{kMaxChunks};
    std::atomic<std::size_t> size_{0};
};

}  // namespace wm::sensors
