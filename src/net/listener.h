#pragma once

// net::Listener — the server half of the wire transport. Accepts
// wm_pusherd connections, decodes frames, and feeds every PUBLISH message
// into an mqtt::Broker (in wintermuted: the AsyncBroker fronting the
// sharded CollectAgent plane), answering with cumulative per-topic PUBACKs
// and PINGRESP heartbeats.
//
// Protections (docs/RESILIENCE.md, "Wire transport"):
//  * per-connection read timeouts: a peer silent for longer than
//    3 x heartbeat_ns is declared dead and evicted;
//  * max_frame_bytes: an oversized frame drops the connection before any
//    allocation happens;
//  * max_inflight: a PUBLISH batch carrying more messages than the server
//    is willing to hold unacked is a protocol violation — evicted;
//  * slow-client eviction: a peer that cannot drain its acks within
//    write_timeout_ms is evicted rather than wedging the worker;
//  * any CRC mismatch or undecodable payload drops the connection and
//    counts the error (framing is lost; at-least-once replay on the
//    client side re-delivers).
//
// Fault points: "net.accept" (refuse/delay an accepted connection),
// "net.frame_read" (kFail corrupts the received frame -> CRC reject,
// kDrop loses it, kDelay stalls), "net.frame_write" (kFail fails the
// ack write -> eviction, kDrop suppresses it), "net.partition" (while
// firing, the socket behaves blackholed: nothing is read or written).

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "common/time_utils.h"
#include "mqtt/broker.h"

namespace wm::net {

struct ListenerConfig {
    /// 0 = ephemeral (port() after start()).
    std::uint16_t port = 0;
    /// Frames larger than this are rejected before allocation.
    std::size_t max_frame_bytes = 1 << 20;
    /// Expected client heartbeat interval; a connection with no traffic
    /// for 3x this is evicted as a dead peer.
    common::TimestampNs heartbeat_ns = 500 * common::kNsPerMs;
    /// Max messages in one PUBLISH batch (the server's unacked window).
    std::size_t max_inflight = 4096;
    /// Budget for draining one ack/pong write to a slow client.
    int write_timeout_ms = 2000;
    /// Concurrent connections; further accepts are refused.
    std::size_t max_connections = 64;
};

/// Monotonically increasing transport counters, surfaced via /status.
struct ListenerCounters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t crc_rejects = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t oversized_rejects = 0;
    std::uint64_t publishes_forwarded = 0;
    /// Connections dropped because a PUBLISH arrived with a gap in the
    /// dense per-connection frame counter — a frame was lost on a live
    /// connection (see PublishFrame::frame_seq). Dropped unacked, so the
    /// client replays on reconnect.
    std::uint64_t frame_gaps = 0;
    std::uint64_t heartbeat_timeouts = 0;
    std::uint64_t evicted_slow = 0;
    std::uint64_t evicted_inflight = 0;
    std::uint64_t accept_faults = 0;
};

/// Per-connection protocol state (defined in listener.cpp; owned by the
/// serving thread, so it needs no lock).
struct ConnState;

class Listener {
  public:
    /// `broker` receives every decoded PUBLISH message; must outlive the
    /// listener.
    Listener(ListenerConfig config, mqtt::Broker& broker);
    ~Listener();

    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    bool start();
    void stop();
    bool running() const { return running_.load(); }

    /// Bound port (after start()).
    std::uint16_t port() const { return port_; }

    ListenerCounters counters() const;

  private:
    void acceptLoop();
    void serveConnection(int fd);
    /// Handles one decoded frame; returns false when the connection must
    /// close (protocol violation, forced eviction, graceful disconnect).
    bool handleFrame(int fd, std::string_view payload, ConnState& state);
    bool sendFrame(int fd, const std::string& payload);

    ListenerConfig config_;
    mqtt::Broker& broker_;
    std::atomic<int> listen_fd_{-1};
    std::atomic<bool> running_{false};
    std::uint16_t port_ = 0;
    common::Thread acceptor_;
    mutable common::Mutex workers_mutex_{"net::Listener.workers",
                                         common::LockRank::kNetListener};
    std::vector<common::Thread> workers_ WM_GUARDED_BY(workers_mutex_);

    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> connections_active_{0};
    std::atomic<std::uint64_t> frames_in_{0};
    std::atomic<std::uint64_t> frames_out_{0};
    std::atomic<std::uint64_t> crc_rejects_{0};
    std::atomic<std::uint64_t> decode_errors_{0};
    std::atomic<std::uint64_t> oversized_rejects_{0};
    std::atomic<std::uint64_t> publishes_forwarded_{0};
    std::atomic<std::uint64_t> frame_gaps_{0};
    std::atomic<std::uint64_t> heartbeat_timeouts_{0};
    std::atomic<std::uint64_t> evicted_slow_{0};
    std::atomic<std::uint64_t> evicted_inflight_{0};
    std::atomic<std::uint64_t> accept_faults_{0};
};

}  // namespace wm::net
