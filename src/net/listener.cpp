#include "net/listener.h"

#include <sys/socket.h>

#include <chrono>
#include <map>
#include <string>

#include "common/fault.h"
#include "common/logging.h"
#include "mqtt/message.h"
#include "net/frame.h"
#include "net/socket.h"

namespace wm::net {

namespace {

/// Topic-id table cap: ids are client-assigned small integers; anything
/// beyond this is a protocol violation, not a reason to allocate.
constexpr std::uint32_t kMaxTopicId = 1 << 20;

}  // namespace

struct ConnState {
    bool connected = false;
    std::string client;
    std::uint64_t epoch = 0;
    /// id -> topic, filled by PUBLISH registrations.
    std::map<std::uint32_t, std::string> topics;
    /// id -> highest sequence accepted (cumulative ack watermarks).
    std::map<std::uint32_t, std::uint64_t> watermarks;
    /// Expected PublishFrame::frame_seq of the next PUBLISH; a gap means a
    /// frame was lost on a live connection (fatal, dropped unacked).
    std::uint64_t next_frame_seq = 1;
};

Listener::Listener(ListenerConfig config, mqtt::Broker& broker)
    : config_(config), broker_(broker) {}

Listener::~Listener() { stop(); }

bool Listener::start() {
    if (running_.load()) return false;
    std::uint16_t bound = 0;
    const int fd = tcpListen(config_.port, &bound);
    if (fd < 0) return false;
    port_ = bound;
    listen_fd_.store(fd);
    running_.store(true);
    acceptor_ = common::Thread([this] { acceptLoop(); }, "net::Listener.acceptor");
    WM_LOG(kInfo, "net") << "transport listening on 127.0.0.1:" << port_;
    return true;
}

void Listener::stop() {
    if (!running_.exchange(false)) return;
    closeSocket(listen_fd_.exchange(-1));
    if (acceptor_.joinable()) acceptor_.join();
    common::MutexLock lock(workers_mutex_);
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
}

ListenerCounters Listener::counters() const {
    ListenerCounters out;
    out.connections_accepted = connections_accepted_.load();
    out.connections_active = connections_active_.load();
    out.frames_in = frames_in_.load();
    out.frames_out = frames_out_.load();
    out.crc_rejects = crc_rejects_.load();
    out.decode_errors = decode_errors_.load();
    out.oversized_rejects = oversized_rejects_.load();
    out.publishes_forwarded = publishes_forwarded_.load();
    out.frame_gaps = frame_gaps_.load();
    out.heartbeat_timeouts = heartbeat_timeouts_.load();
    out.evicted_slow = evicted_slow_.load();
    out.evicted_inflight = evicted_inflight_.load();
    out.accept_faults = accept_faults_.load();
    return out;
}

void Listener::acceptLoop() {
    while (running_.load()) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) return;
        sockaddr peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(listen_fd, &peer, &len);
        if (fd < 0) {
            if (!running_.load()) return;
            continue;
        }
        // Fault point "net.accept": a refusing or overloaded acceptor.
        if (const auto fault = common::fault::check("net.accept")) {
            if (fault.action == common::fault::Action::kDelay) {
                common::fault::applyDelay(fault.delay_ns);
            } else {
                accept_faults_.fetch_add(1, std::memory_order_relaxed);
                closeSocket(fd);
                continue;
            }
        }
        if (connections_active_.load() >= config_.max_connections) {
            closeSocket(fd);
            continue;
        }
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        common::MutexLock lock(workers_mutex_);
        if (workers_.size() > 64) {
            for (auto& worker : workers_) {
                if (worker.joinable()) worker.join();
            }
            workers_.clear();
        }
        workers_.emplace_back([this, fd] { serveConnection(fd); },
                              "net::Listener.conn");
    }
}

void Listener::serveConnection(int fd) {
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    std::string buffer;
    ConnState state;
    common::TimestampNs last_activity = common::nowNs();
    const common::TimestampNs dead_after = 3 * config_.heartbeat_ns;
    int poll_ms = static_cast<int>(config_.heartbeat_ns / common::kNsPerMs);
    if (poll_ms < 10) poll_ms = 10;
    if (poll_ms > 1000) poll_ms = 1000;

    bool open = true;
    while (open && running_.load()) {
        // Fault point "net.partition": the peer is unreachable — nothing
        // arrives, nothing leaves. A long enough partition trips the same
        // dead-peer eviction a silent client would.
        if (const auto fault = common::fault::check("net.partition")) {
            if (fault.action == common::fault::Action::kDelay) {
                common::fault::applyDelay(fault.delay_ns);
            }
            common::Thread::sleepFor(std::chrono::milliseconds(10));
            if (common::nowNs() - last_activity > dead_after) {
                heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            continue;
        }
        const int rv = recvSome(fd, &buffer, poll_ms);
        if (rv < 0) break;  // EOF or socket error
        if (rv == 0) {
            if (common::nowNs() - last_activity > dead_after) {
                heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            continue;
        }
        last_activity = common::nowNs();
        while (open) {
            std::string_view payload;
            std::size_t consumed = 0;
            const FrameStatus status =
                frameDecode(buffer, config_.max_frame_bytes, &payload, &consumed);
            if (status == FrameStatus::kNeedMore) break;
            if (status == FrameStatus::kOversized) {
                oversized_rejects_.fetch_add(1, std::memory_order_relaxed);
                open = false;
                break;
            }
            if (status == FrameStatus::kCrcMismatch) {
                crc_rejects_.fetch_add(1, std::memory_order_relaxed);
                open = false;
                break;
            }
            if (status == FrameStatus::kMalformed) {
                decode_errors_.fetch_add(1, std::memory_order_relaxed);
                open = false;
                break;
            }
            frames_in_.fetch_add(1, std::memory_order_relaxed);
            // Fault point "net.frame_read": kFail models corruption below
            // the checksum (treated exactly like a CRC reject: framing can
            // no longer be trusted, the connection drops and the client's
            // replay ring re-delivers); kDrop loses the frame in transit.
            if (const auto fault = common::fault::check("net.frame_read")) {
                if (fault.action == common::fault::Action::kDelay) {
                    common::fault::applyDelay(fault.delay_ns);
                } else if (fault.action == common::fault::Action::kDrop) {
                    buffer.erase(0, consumed);
                    continue;
                } else {
                    crc_rejects_.fetch_add(1, std::memory_order_relaxed);
                    open = false;
                    break;
                }
            }
            const bool keep = handleFrame(fd, payload, state);
            buffer.erase(0, consumed);
            if (!keep) open = false;
        }
    }
    closeSocket(fd);
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
    if (!state.client.empty()) {
        WM_LOG(kInfo, "net") << "connection closed: " << state.client;
    }
}

bool Listener::handleFrame(int fd, std::string_view payload, ConnState& state) {
    Frame frame;
    if (!decodePayload(payload, &frame)) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    switch (frame.type) {
        case FrameType::kConnect: {
            ConnackFrame ack;
            ack.version = kProtocolVersion;
            if (frame.connect.version != kProtocolVersion) {
                ack.accepted = false;
                ack.reason = "protocol version mismatch";
                sendFrame(fd, encodeConnack(ack));
                return false;
            }
            state.connected = true;
            state.client = frame.connect.client;
            state.epoch = frame.connect.epoch;
            ack.accepted = true;
            WM_LOG(kInfo, "net") << "client connected: " << state.client
                                 << " (epoch " << state.epoch << ")";
            return sendFrame(fd, encodeConnack(ack));
        }
        case FrameType::kPublish: {
            if (!state.connected) return false;
            if (frame.publish.frame_seq != state.next_frame_seq) {
                // A frame vanished on a live connection (lossy link). Topic
                // sequences cannot reveal this — the pusher's bounded buffer
                // legitimately drops stamped readings, so topic-seq gaps are
                // normal. The dense frame counter is unambiguous: drop the
                // connection WITHOUT acking; the client replays on
                // reconnect, restoring exactly-once.
                frame_gaps_.fetch_add(1, std::memory_order_relaxed);
                WM_LOG(kWarning, "net")
                    << "frame gap from " << state.client << ": expected "
                    << state.next_frame_seq << ", got "
                    << frame.publish.frame_seq << "; dropping connection";
                return false;
            }
            ++state.next_frame_seq;
            if (frame.publish.messages.size() > config_.max_inflight) {
                evicted_inflight_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
            for (auto& reg : frame.publish.registrations) {
                if (reg.id == 0 || reg.id > kMaxTopicId) {
                    decode_errors_.fetch_add(1, std::memory_order_relaxed);
                    return false;
                }
                state.topics[reg.id] = std::move(reg.topic);
            }
            PubackFrame acks;
            for (const auto& message : frame.publish.messages) {
                const auto topic_it = state.topics.find(message.topic_id);
                if (topic_it == state.topics.end()) {
                    decode_errors_.fetch_add(1, std::memory_order_relaxed);
                    return false;
                }
                mqtt::Message out{topic_it->second, message.readings,
                                  message.sequence};
                if (broker_.publish(out) < 0) {
                    // The broker refused (invalid topic or injected ingest
                    // fault). Nothing past this point was accepted: drop
                    // the connection WITHOUT acking, so the client's
                    // replay-on-reconnect re-delivers everything unacked.
                    return false;
                }
                publishes_forwarded_.fetch_add(1, std::memory_order_relaxed);
                std::uint64_t& mark = state.watermarks[message.topic_id];
                if (message.sequence > mark) mark = message.sequence;
            }
            for (const auto& message : frame.publish.messages) {
                // One cumulative ack per topic touched by this batch.
                bool seen = false;
                for (const auto& ack : acks.acks) {
                    if (ack.topic_id == message.topic_id) {
                        seen = true;
                        break;
                    }
                }
                if (!seen) {
                    acks.acks.push_back(
                        {message.topic_id, state.watermarks[message.topic_id]});
                }
            }
            return sendFrame(fd, encodePuback(acks));
        }
        case FrameType::kPingreq:
            return sendFrame(fd, encodePingresp());
        case FrameType::kDisconnect:
            WM_LOG(kInfo, "net") << "client disconnecting: " << state.client
                                 << " (" << frame.disconnect.reason << ")";
            return false;
        default:
            // CONNACK/PUBACK/PINGRESP are server-to-client only.
            decode_errors_.fetch_add(1, std::memory_order_relaxed);
            return false;
    }
}

bool Listener::sendFrame(int fd, const std::string& payload) {
    // A partitioned wire swallows outbound traffic silently; the client's
    // heartbeat timeout notices, not this send.
    if (const auto fault = common::fault::check("net.partition")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else {
            return true;
        }
    }
    if (const auto fault = common::fault::check("net.frame_write")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else if (fault.action == common::fault::Action::kDrop) {
            return true;  // lost in transit
        } else {
            evicted_slow_.fetch_add(1, std::memory_order_relaxed);
            return false;  // failed write: evict
        }
    }
    if (!sendAll(fd, frameEncode(payload), config_.write_timeout_ms)) {
        evicted_slow_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

}  // namespace wm::net
