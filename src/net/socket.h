#pragma once

// Minimal blocking-socket helpers shared by net::Listener and
// net::Connection. Loopback/IPv4 only (the transport links processes of
// one mini-cluster, matching the rest/http_server.cpp idiom); every
// operation is poll-bounded so a dead peer can never wedge a thread
// forever.

#include <cstdint>
#include <string>
#include <string_view>

namespace wm::net {

/// Connects to host:port with a bounded wait. Returns the fd, or -1.
int tcpConnect(const std::string& host, std::uint16_t port, int timeout_ms);

/// Creates a listening socket bound to 127.0.0.1:port (0 = ephemeral).
/// Returns the fd (with *bound_port filled in) or -1.
int tcpListen(std::uint16_t port, std::uint16_t* bound_port);

/// Sends all of `data`, waiting at most `timeout_ms` for each chunk to
/// become writable. Returns false on error or timeout (a slow or dead
/// peer: callers evict).
bool sendAll(int fd, std::string_view data, int timeout_ms);

/// Waits up to `timeout_ms` for readable data and appends whatever is
/// available to `buffer`. Returns: >0 bytes appended, 0 on timeout (no
/// data), -1 on EOF or error.
int recvSome(int fd, std::string* buffer, int timeout_ms);

/// shutdown(SHUT_RDWR) + close, ignoring errors; safe on -1.
void closeSocket(int fd);

}  // namespace wm::net
