#pragma once

// net::Connection — the client half of the wire transport, used by
// wm_pusherd to carry Pusher publishes to a remote wintermuted.
//
// A manager thread owns the socket lifecycle: connect (with
// common::Backoff capped exponential delays), CONNECT/CONNACK handshake,
// then a read loop consuming PUBACK watermarks and PINGRESP heartbeats
// until the connection dies — at which point it loops back to
// reconnecting. Dead peers are detected by heartbeat: if no frame arrives
// within 3x heartbeat_ns the socket is torn down.
//
// Delivery-order gate (docs/RESILIENCE.md, "Wire transport"): after every
// (re)connect the on_connected hook runs BEFORE regular publishes are
// accepted again. wm_pusherd uses the hook to republish the Pusher replay
// ring, and only publishes issued from the hook's own thread pass the
// gate while it runs. This guarantees ring replays (old sequences,
// possibly lost server-side) always reach the wire before freshly
// buffered readings (newer sequences) — with the collect agent's
// cumulative per-topic dedup, flushing new sequences first would turn a
// lost-but-replayable reading into a permanent gap. The wm-sched model
// test (tests/model/test_model_net.cpp) proves both directions: gated
// delivery is exactly-once under every schedule, and the ungated
// interleaving loses a reading.
//
// publish() returns false (so the Pusher buffers and paces retries) when
// the wire is down, the gate is closed, or max_inflight unacked messages
// are outstanding (backpressure).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/thread.h"
#include "common/time_utils.h"
#include "mqtt/broker.h"
#include "mqtt/message.h"

namespace wm::net {

struct ConnectionConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Client identifier sent in CONNECT (the pusherd name).
    std::string client_name = "pusherd";
    /// The Pusher's sequence epoch, forwarded in CONNECT.
    std::uint64_t epoch = 0;
    std::size_t max_frame_bytes = 1 << 20;
    /// PINGREQ cadence; no frame for 3x this declares the peer dead.
    common::TimestampNs heartbeat_ns = 500 * common::kNsPerMs;
    /// Unacked published messages tolerated before publish() refuses
    /// (backpressure into the Pusher's bounded buffer).
    std::size_t max_inflight = 256;
    /// Reconnect pacing; max_attempts <= 0 retries forever.
    common::RetryPolicy reconnect{0, 100 * common::kNsPerMs, 2.0,
                                  2 * common::kNsPerSec, 0.1};
    std::uint64_t retry_seed = 0xC0FFEEULL;
    int connect_timeout_ms = 1000;
    int write_timeout_ms = 2000;
};

struct ConnectionCounters {
    std::uint64_t connects = 0;    ///< successful handshakes
    std::uint64_t reconnects = 0;  ///< successful handshakes after the first
    std::uint64_t connect_failures = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t crc_rejects = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t heartbeat_timeouts = 0;
    std::uint64_t publishes_sent = 0;
    std::uint64_t publishes_refused = 0;  ///< gate closed / down / inflight-full
    std::uint64_t messages_acked = 0;
    std::uint64_t partition_drops = 0;  ///< frames blackholed by net.partition
};

class Connection {
  public:
    /// `on_connected` runs on the manager thread after every successful
    /// handshake, before the publish gate opens (see header comment).
    Connection(ConnectionConfig config, std::function<void()> on_connected);
    ~Connection();

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Spawns the manager thread; it keeps (re)connecting until stop().
    void start();
    /// Graceful shutdown: DISCONNECT if connected, then join.
    void stop();

    /// Sends one message as a single-entry PUBLISH batch. False when the
    /// wire is down, the replay gate is closed, or inflight is full —
    /// callers (the Pusher) buffer and retry with backoff.
    bool publish(const mqtt::Message& message);

    bool connected() const { return connected_.load(); }
    ConnectionCounters counters() const;
    /// Highest acked sequence per topic (cumulative, across reconnects).
    std::map<std::string, std::uint64_t> ackedWatermarks() const;
    std::size_t inflight() const;

  private:
    void managerLoop();
    /// One connection lifetime: handshake, hook, read loop. Returns when
    /// the connection died (or stop() was requested).
    void runConnection(int fd);
    bool sendFrameLocked(const std::string& payload) WM_REQUIRES(mutex_);
    void handleServerFrame(std::string_view payload, bool* alive);

    ConnectionConfig config_;
    std::function<void()> on_connected_;
    std::atomic<bool> running_{false};
    std::atomic<bool> connected_{false};
    /// Replay gate: regular publishes pass only when open; the manager
    /// thread (running the on_connected hook) bypasses it.
    std::atomic<bool> accepting_{false};
    std::atomic<int> fd_{-1};
    common::Thread manager_;
    common::ThreadId manager_id_{};

    mutable common::Mutex mutex_{"net::Connection",
                                 common::LockRank::kNetConnection};
    /// topic -> interned id on the current connection (reset on reconnect).
    std::map<std::string, std::uint32_t> topic_ids_ WM_GUARDED_BY(mutex_);
    std::vector<std::string> id_topics_ WM_GUARDED_BY(mutex_);
    std::uint32_t next_topic_id_ WM_GUARDED_BY(mutex_) = 1;
    /// Dense per-connection PUBLISH counter (PublishFrame::frame_seq);
    /// reset to 0 on every reconnect, pre-incremented per send.
    std::uint64_t frame_seq_ WM_GUARDED_BY(mutex_) = 0;
    /// Send-ordered (topic id, sequence) pairs awaiting cumulative acks.
    std::deque<std::pair<std::uint32_t, std::uint64_t>> unacked_
        WM_GUARDED_BY(mutex_);
    /// topic id -> highest acked sequence on the current connection.
    std::map<std::uint32_t, std::uint64_t> id_acked_ WM_GUARDED_BY(mutex_);
    /// topic -> highest acked sequence, preserved across reconnects.
    std::map<std::string, std::uint64_t> acked_ WM_GUARDED_BY(mutex_);

    std::atomic<std::uint64_t> connects_{0};
    std::atomic<std::uint64_t> connect_failures_{0};
    std::atomic<std::uint64_t> frames_out_{0};
    std::atomic<std::uint64_t> frames_in_{0};
    std::atomic<std::uint64_t> crc_rejects_{0};
    std::atomic<std::uint64_t> decode_errors_{0};
    std::atomic<std::uint64_t> heartbeat_timeouts_{0};
    std::atomic<std::uint64_t> publishes_sent_{0};
    std::atomic<std::uint64_t> publishes_refused_{0};
    std::atomic<std::uint64_t> messages_acked_{0};
    std::atomic<std::uint64_t> partition_drops_{0};
};

/// Broker facade over a Connection: lets the unmodified Pusher publish
/// into the wire. publish() returns 1 when the frame went out (the remote
/// collect-agent plane counts real deliveries) and -1 on refusal, which
/// triggers the Pusher's buffering + paced-retry machinery.
class RemoteBroker final : public mqtt::Broker {
  public:
    /// `on_publish(message)` observes every publish attempt BEFORE the wire
    /// write (wm_pusherd's ground-truth publish log: intent-logged so a
    /// SIGKILL between send and log cannot leave a stored reading without a
    /// log line); may be null.
    explicit RemoteBroker(Connection& connection,
                          std::function<void(const mqtt::Message&)> on_publish = {});

    int publish(const mqtt::Message& message) override;

  private:
    Connection& connection_;
    std::function<void(const mqtt::Message&)> on_publish_;
};

}  // namespace wm::net
