#include "net/frame.h"

#include <cstring>

#include "persist/checksum.h"
#include "persist/serializer.h"

namespace wm::net {

namespace {

/// Smallest possible encoding of one element of a counted sequence; used
/// to reject hostile counts before reserving memory. A registration is at
/// least id(4) + empty string length(4); a message at least id(4) +
/// sequence(8) + reading count(4); a reading is exactly ts(8) + value(8);
/// an ack exactly id(4) + sequence(8).
constexpr std::size_t kMinRegistrationBytes = 8;
constexpr std::size_t kMinMessageBytes = 16;
constexpr std::size_t kReadingBytes = 16;
constexpr std::size_t kAckBytes = 12;

bool plausibleCount(const persist::Decoder& decoder, std::uint32_t count,
                    std::size_t min_element_bytes) {
    return static_cast<std::size_t>(count) <=
           decoder.remaining() / min_element_bytes;
}

void putReadings(persist::Encoder& enc, const sensors::ReadingVector& readings) {
    enc.putU32(static_cast<std::uint32_t>(readings.size()));
    for (const auto& reading : readings) {
        enc.putI64(reading.timestamp);
        enc.putF64(reading.value);
    }
}

bool getReadings(persist::Decoder& dec, sensors::ReadingVector* out) {
    std::uint32_t count = 0;
    if (!dec.getU32(&count) || !plausibleCount(dec, count, kReadingBytes)) {
        return false;
    }
    out->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        sensors::Reading reading{};
        if (!dec.getI64(&reading.timestamp) || !dec.getF64(&reading.value)) {
            return false;
        }
        out->push_back(reading);
    }
    return true;
}

std::string finish(persist::Encoder& enc) { return enc.take(); }

}  // namespace

std::string encodeConnect(const ConnectFrame& frame) {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kConnect));
    enc.putU32(frame.version);
    enc.putString(frame.client);
    enc.putU64(frame.epoch);
    return finish(enc);
}

std::string encodeConnack(const ConnackFrame& frame) {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kConnack));
    enc.putBool(frame.accepted);
    enc.putU32(frame.version);
    enc.putString(frame.reason);
    return finish(enc);
}

std::string encodePublish(const PublishFrame& frame) {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kPublish));
    enc.putU64(frame.frame_seq);
    enc.putU32(static_cast<std::uint32_t>(frame.registrations.size()));
    for (const auto& reg : frame.registrations) {
        enc.putU32(reg.id);
        enc.putString(reg.topic);
    }
    enc.putU32(static_cast<std::uint32_t>(frame.messages.size()));
    for (const auto& message : frame.messages) {
        enc.putU32(message.topic_id);
        enc.putU64(message.sequence);
        putReadings(enc, message.readings);
    }
    return finish(enc);
}

std::string encodePuback(const PubackFrame& frame) {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kPuback));
    enc.putU32(static_cast<std::uint32_t>(frame.acks.size()));
    for (const auto& ack : frame.acks) {
        enc.putU32(ack.topic_id);
        enc.putU64(ack.sequence);
    }
    return finish(enc);
}

std::string encodePingreq() {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kPingreq));
    return finish(enc);
}

std::string encodePingresp() {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kPingresp));
    return finish(enc);
}

std::string encodeDisconnect(const DisconnectFrame& frame) {
    persist::Encoder enc;
    enc.putU8(static_cast<std::uint8_t>(FrameType::kDisconnect));
    enc.putString(frame.reason);
    return finish(enc);
}

bool decodePayload(std::string_view payload, Frame* out) {
    persist::Decoder dec(payload);
    std::uint8_t type_byte = 0;
    if (!dec.getU8(&type_byte)) return false;
    *out = Frame{};
    switch (static_cast<FrameType>(type_byte)) {
        case FrameType::kConnect: {
            out->type = FrameType::kConnect;
            if (!dec.getU32(&out->connect.version) ||
                !dec.getString(&out->connect.client) ||
                !dec.getU64(&out->connect.epoch)) {
                return false;
            }
            break;
        }
        case FrameType::kConnack: {
            out->type = FrameType::kConnack;
            if (!dec.getBool(&out->connack.accepted) ||
                !dec.getU32(&out->connack.version) ||
                !dec.getString(&out->connack.reason)) {
                return false;
            }
            break;
        }
        case FrameType::kPublish: {
            out->type = FrameType::kPublish;
            std::uint32_t reg_count = 0;
            if (!dec.getU64(&out->publish.frame_seq) || !dec.getU32(&reg_count) ||
                !plausibleCount(dec, reg_count, kMinRegistrationBytes)) {
                return false;
            }
            out->publish.registrations.reserve(reg_count);
            for (std::uint32_t i = 0; i < reg_count; ++i) {
                TopicRegistration reg;
                if (!dec.getU32(&reg.id) || !dec.getString(&reg.topic)) {
                    return false;
                }
                out->publish.registrations.push_back(std::move(reg));
            }
            std::uint32_t msg_count = 0;
            if (!dec.getU32(&msg_count) ||
                !plausibleCount(dec, msg_count, kMinMessageBytes)) {
                return false;
            }
            out->publish.messages.reserve(msg_count);
            for (std::uint32_t i = 0; i < msg_count; ++i) {
                WireMessage message;
                if (!dec.getU32(&message.topic_id) ||
                    !dec.getU64(&message.sequence) ||
                    !getReadings(dec, &message.readings)) {
                    return false;
                }
                out->publish.messages.push_back(std::move(message));
            }
            break;
        }
        case FrameType::kPuback: {
            out->type = FrameType::kPuback;
            std::uint32_t ack_count = 0;
            if (!dec.getU32(&ack_count) ||
                !plausibleCount(dec, ack_count, kAckBytes)) {
                return false;
            }
            out->puback.acks.reserve(ack_count);
            for (std::uint32_t i = 0; i < ack_count; ++i) {
                TopicAck ack;
                if (!dec.getU32(&ack.topic_id) || !dec.getU64(&ack.sequence)) {
                    return false;
                }
                out->puback.acks.push_back(ack);
            }
            break;
        }
        case FrameType::kPingreq:
            out->type = FrameType::kPingreq;
            break;
        case FrameType::kPingresp:
            out->type = FrameType::kPingresp;
            break;
        case FrameType::kDisconnect: {
            out->type = FrameType::kDisconnect;
            if (!dec.getString(&out->disconnect.reason)) return false;
            break;
        }
        default:
            return false;
    }
    // A valid frame consumes its payload exactly: trailing bytes mean the
    // peer speaks a different dialect, and decoding must not guess.
    return dec.ok() && dec.atEnd();
}

std::string frameEncode(std::string_view payload) {
    persist::Encoder enc;
    enc.putU32(static_cast<std::uint32_t>(payload.size()));
    enc.putU32(persist::crc32(payload));
    std::string out = enc.take();
    out.append(payload.data(), payload.size());
    return out;
}

FrameStatus frameDecode(std::string_view buffer, std::size_t max_frame_bytes,
                        std::string_view* payload, std::size_t* consumed) {
    if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
    persist::Decoder dec(buffer.substr(0, kFrameHeaderBytes));
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    dec.getU32(&length);
    dec.getU32(&crc);
    if (length == 0) return FrameStatus::kMalformed;
    if (max_frame_bytes > 0 &&
        static_cast<std::size_t>(length) > max_frame_bytes) {
        return FrameStatus::kOversized;
    }
    if (buffer.size() < kFrameHeaderBytes + length) return FrameStatus::kNeedMore;
    const std::string_view body = buffer.substr(kFrameHeaderBytes, length);
    if (persist::crc32(body) != crc) return FrameStatus::kCrcMismatch;
    *payload = body;
    *consumed = kFrameHeaderBytes + length;
    return FrameStatus::kOk;
}

}  // namespace wm::net
