#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wm::net {

int tcpConnect(const std::string& host, std::uint16_t port, int timeout_ms) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    // Non-blocking connect so the attempt is poll-bounded.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rv = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rv < 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        struct pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeout_ms) <= 0) {
            ::close(fd);
            return -1;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
            ::close(fd);
            return -1;
        }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking; all I/O is poll-gated
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int tcpListen(std::uint16_t port, std::uint16_t* bound_port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
    return fd;
}

bool sendAll(int fd, std::string_view data, int timeout_ms) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        struct pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

int recvSome(int fd, std::string* buffer, int timeout_ms) {
    struct pollfd pfd{fd, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, timeout_ms);
    if (rv == 0) return 0;
    if (rv < 0) return -1;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    buffer->append(chunk, static_cast<std::size_t>(n));
    return static_cast<int>(n);
}

void closeSocket(int fd) {
    if (fd < 0) return;
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

}  // namespace wm::net
