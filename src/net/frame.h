#pragma once

// Wire frames for the wm transport: a length-framed binary MQTT-ish
// protocol carrying sensor readings from wm_pusherd processes to a
// wintermuted collect-agent plane over TCP (docs/RESILIENCE.md, "Wire
// transport").
//
// Outer framing reuses the WAL record layout byte-for-byte
// (src/persist/wal.h):
//
//     [u32 payload length][u32 crc32(payload)][payload bytes]
//
// and the payload is encoded with the same persist::Encoder/Decoder used
// for WAL records and snapshots: fixed-width little-endian integers,
// IEEE-754 doubles, length-prefixed strings — no host-endianness leakage,
// fully bounds-checked decoding. The first payload byte is the FrameType;
// the rest is type-specific.
//
// The decoder half of this header is pure (buffers in, structs out) so it
// can be fuzzed without sockets: any truncated, bit-flipped or oversized
// input must come back as a clean reject, never a crash or an over-read.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sensors/reading.h"

namespace wm::net {

/// Protocol version carried in CONNECT/CONNACK; bumped on any frame-layout
/// change so mismatched peers refuse each other instead of misparsing.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Bytes of outer framing preceding every payload: u32 length + u32 crc.
inline constexpr std::size_t kFrameHeaderBytes = 8;

enum class FrameType : std::uint8_t {
    kConnect = 1,     ///< client -> server: version, client name, pusher epoch
    kConnack = 2,     ///< server -> client: accept/refuse + server version
    kPublish = 3,     ///< client -> server: interned-topic message batch
    kPuback = 4,      ///< server -> client: cumulative per-topic sequence acks
    kPingreq = 5,     ///< client -> server: heartbeat probe
    kPingresp = 6,    ///< server -> client: heartbeat answer
    kDisconnect = 7,  ///< either way: graceful close with a reason
};

struct ConnectFrame {
    std::uint32_t version = kProtocolVersion;
    /// Client identifier for logs (the pusherd name).
    std::string client;
    /// The Pusher's sequence epoch (Pusher::sequenceEpoch()): lets the
    /// server distinguish a restarted pusher (higher epoch) from a
    /// reconnecting one in logs; dedup itself needs only the absolute
    /// sequence numbers stamped into messages.
    std::uint64_t epoch = 0;
};

struct ConnackFrame {
    bool accepted = false;
    std::uint32_t version = kProtocolVersion;
    std::string reason;  ///< empty when accepted
};

/// First use of a topic on a connection registers it under a small id;
/// subsequent messages carry only the id (interned-topic batches).
struct TopicRegistration {
    std::uint32_t id = 0;
    std::string topic;
};

struct WireMessage {
    std::uint32_t topic_id = 0;
    /// Absolute per-topic sequence (epoch + counter) stamped by the Pusher;
    /// the collect agent dedups on it (at-least-once wire, exactly-once
    /// storage).
    std::uint64_t sequence = 0;
    sensors::ReadingVector readings;
};

struct PublishFrame {
    /// Dense per-connection frame counter, starting at 1, incremented by
    /// the client for every PUBLISH it sends. Topic sequences are sparse
    /// (a pusher's bounded buffer drops stamped readings under pressure),
    /// so the server cannot use them to detect a frame silently lost
    /// mid-connection — but a gap in this counter is unambiguous: the
    /// server drops the connection WITHOUT acking, and the client's
    /// replay-on-reconnect redelivers the lost messages. Without this, a
    /// dropped frame would be "covered" by the next cumulative ack and its
    /// readings lost forever.
    std::uint64_t frame_seq = 0;
    std::vector<TopicRegistration> registrations;
    std::vector<WireMessage> messages;
};

/// Cumulative ack: the highest sequence the server has accepted for this
/// topic on this connection. Acking sequence S acks everything <= S.
struct TopicAck {
    std::uint32_t topic_id = 0;
    std::uint64_t sequence = 0;
};

struct PubackFrame {
    std::vector<TopicAck> acks;
};

struct DisconnectFrame {
    std::string reason;
};

/// A decoded frame: `type` selects which member is meaningful.
struct Frame {
    FrameType type = FrameType::kPingreq;
    ConnectFrame connect;
    ConnackFrame connack;
    PublishFrame publish;
    PubackFrame puback;
    DisconnectFrame disconnect;
};

// --- Payload encoding (type byte + body) ---------------------------------

std::string encodeConnect(const ConnectFrame& frame);
std::string encodeConnack(const ConnackFrame& frame);
std::string encodePublish(const PublishFrame& frame);
std::string encodePuback(const PubackFrame& frame);
std::string encodePingreq();
std::string encodePingresp();
std::string encodeDisconnect(const DisconnectFrame& frame);

/// Decodes a payload (as produced by the encode* functions) into `out`.
/// Returns false on any malformation: unknown type, short buffer, trailing
/// garbage, or an element count that could not possibly fit the remaining
/// bytes (so a hostile count can never drive a huge allocation).
bool decodePayload(std::string_view payload, Frame* out);

// --- Outer framing -------------------------------------------------------

/// Wraps a payload in the `[len][crc][payload]` outer framing.
std::string frameEncode(std::string_view payload);

enum class FrameStatus {
    kOk,           ///< a complete, checksummed payload was extracted
    kNeedMore,     ///< buffer holds only a prefix of the frame; read more
    kCrcMismatch,  ///< framing intact but the payload failed its checksum
    kOversized,    ///< declared length exceeds max_frame_bytes
    kMalformed,    ///< impossible header (zero length)
};

/// Extracts the first frame from `buffer`. On kOk, `*payload` views the
/// payload bytes inside `buffer` and `*consumed` is the total frame size
/// (header + payload) to erase. On kCrcMismatch/kOversized/kMalformed the
/// connection is unrecoverable (framing lost): drop it and count the error.
FrameStatus frameDecode(std::string_view buffer, std::size_t max_frame_bytes,
                        std::string_view* payload, std::size_t* consumed);

}  // namespace wm::net
