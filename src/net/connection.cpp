#include "net/connection.h"

#include <chrono>

#include "common/fault.h"
#include "common/logging.h"
#include "net/frame.h"
#include "net/socket.h"

namespace wm::net {

namespace {

/// Sleeps `delay_ns` in small slices so stop() stays responsive.
void slicedSleep(common::TimestampNs delay_ns, const std::atomic<bool>& keep) {
    const common::TimestampNs deadline = common::nowNs() + delay_ns;
    while (keep.load() && common::nowNs() < deadline) {
        common::Thread::sleepFor(std::chrono::milliseconds(20));
    }
}

}  // namespace

Connection::Connection(ConnectionConfig config,
                       std::function<void()> on_connected)
    : config_(std::move(config)), on_connected_(std::move(on_connected)) {}

Connection::~Connection() { stop(); }

void Connection::start() {
    if (running_.exchange(true)) return;
    manager_ = common::Thread([this] { managerLoop(); }, "net::Connection.manager");
}

void Connection::stop() {
    if (!running_.exchange(false)) return;
    if (connected_.load()) {
        common::MutexLock lock(mutex_);
        sendFrameLocked(encodeDisconnect({"shutdown"}));
    }
    closeSocket(fd_.exchange(-1));  // unblocks the manager's read loop
    if (manager_.joinable()) manager_.join();
    connected_.store(false);
    accepting_.store(false);
}

bool Connection::publish(const mqtt::Message& message) {
    if (!running_.load() || !connected_.load()) {
        publishes_refused_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    // The replay gate: until the on_connected hook (ring replay) finishes,
    // only publishes issued from the manager thread itself pass.
    const bool hook_context =
        !accepting_.load() && common::Thread::currentId() == manager_id_;
    if (!accepting_.load() && !hook_context) {
        publishes_refused_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    common::MutexLock lock(mutex_);
    // Inflight backpressure does not apply to the hook: the ring replay
    // must reach the wire in full and in order before the gate opens. A
    // ring entry refused for a transient reason while a later same-topic
    // entry goes through would be covered by the later entry's cumulative
    // ack and dedup-dropped on every future redelivery — a permanent loss.
    // Waiting for ack room is not an option either: the manager thread IS
    // the read thread, so no PUBACK can drain while the hook runs. TCP
    // flow control is the only cap a replay burst needs; after the hook, a
    // refusal here means the wire itself died, which is safe (nothing
    // newer can be delivered on this connection afterwards).
    if (!hook_context && unacked_.size() >= config_.max_inflight) {
        publishes_refused_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    PublishFrame frame;
    std::uint32_t topic_id = 0;
    const auto it = topic_ids_.find(message.topic);
    if (it != topic_ids_.end()) {
        topic_id = it->second;
    } else {
        topic_id = next_topic_id_++;
        topic_ids_.emplace(message.topic, topic_id);
        if (id_topics_.size() <= topic_id) id_topics_.resize(topic_id + 1);
        id_topics_[topic_id] = message.topic;
        frame.registrations.push_back({topic_id, message.topic});
    }
    frame.frame_seq = ++frame_seq_;
    frame.messages.push_back({topic_id, message.sequence, message.readings});
    if (!sendFrameLocked(encodePublish(frame))) {
        // The socket is broken: sever it so the manager's read loop
        // notices immediately and starts reconnecting.
        publishes_refused_.fetch_add(1, std::memory_order_relaxed);
        closeSocket(fd_.exchange(-1));
        connected_.store(false);
        return false;
    }
    unacked_.emplace_back(topic_id, message.sequence);
    publishes_sent_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool Connection::sendFrameLocked(const std::string& payload) {
    const int fd = fd_.load();
    if (fd < 0) return false;
    // A partitioned wire swallows outbound frames without an error — TCP
    // buffers them locally, the peer never sees them. The missing acks and
    // pongs then trip the heartbeat timeout, which is the point.
    if (const auto fault = common::fault::check("net.partition")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else {
            partition_drops_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    if (const auto fault = common::fault::check("net.frame_write")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else if (fault.action == common::fault::Action::kDrop) {
            return true;  // lost in transit
        } else {
            return false;  // failed write: connection is dead
        }
    }
    if (!sendAll(fd, frameEncode(payload), config_.write_timeout_ms)) {
        return false;
    }
    frames_out_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void Connection::managerLoop() {
    manager_id_ = common::Thread::currentId();
    common::Rng rng(config_.retry_seed);
    common::Backoff backoff(config_.reconnect, &rng);
    while (running_.load()) {
        const int fd = tcpConnect(config_.host, config_.port,
                                  config_.connect_timeout_ms);
        if (fd < 0) {
            connect_failures_.fetch_add(1, std::memory_order_relaxed);
            slicedSleep(backoff.nextDelayNs(), running_);
            continue;
        }
        const std::uint64_t before = connects_.load();
        runConnection(fd);
        if (connects_.load() > before) {
            backoff.reset();  // the handshake succeeded; next outage starts over
        }
        if (!running_.load()) break;
        slicedSleep(backoff.nextDelayNs(), running_);
    }
}

void Connection::runConnection(int fd) {
    fd_.store(fd);
    {
        common::MutexLock lock(mutex_);
        // Fresh connection, fresh interning; unacked messages from the
        // previous connection live on in the Pusher's replay ring and are
        // re-delivered by the on_connected hook.
        topic_ids_.clear();
        id_topics_.clear();
        id_acked_.clear();
        unacked_.clear();
        next_topic_id_ = 1;
        frame_seq_ = 0;
        ConnectFrame connect;
        connect.version = kProtocolVersion;
        connect.client = config_.client_name;
        connect.epoch = config_.epoch;
        if (!sendFrameLocked(encodeConnect(connect))) {
            connect_failures_.fetch_add(1, std::memory_order_relaxed);
            closeSocket(fd_.exchange(-1));
            return;
        }
    }

    // Await CONNACK within the connect budget.
    std::string buffer;
    bool accepted = false;
    const common::TimestampNs ack_deadline =
        common::nowNs() +
        static_cast<common::TimestampNs>(config_.connect_timeout_ms) *
            common::kNsPerMs;
    while (running_.load() && common::nowNs() < ack_deadline && !accepted) {
        const int rv = recvSome(fd, &buffer, 50);
        if (rv < 0) break;
        std::string_view payload;
        std::size_t consumed = 0;
        const FrameStatus status =
            frameDecode(buffer, config_.max_frame_bytes, &payload, &consumed);
        if (status == FrameStatus::kNeedMore) continue;
        if (status != FrameStatus::kOk) break;
        Frame frame;
        if (!decodePayload(payload, &frame) ||
            frame.type != FrameType::kConnack || !frame.connack.accepted) {
            break;
        }
        buffer.erase(0, consumed);
        accepted = true;
    }
    if (!accepted) {
        connect_failures_.fetch_add(1, std::memory_order_relaxed);
        closeSocket(fd_.exchange(-1));
        return;
    }
    connects_.fetch_add(1, std::memory_order_relaxed);
    connected_.store(true);
    accepting_.store(false);
    WM_LOG(kInfo, "net") << config_.client_name << ": connected to "
                         << config_.host << ":" << config_.port;
    // Replay-before-resume: the hook republishes the Pusher's ring (old
    // sequences) while the gate still refuses everyone else; see header.
    if (on_connected_) on_connected_();
    accepting_.store(true);

    common::TimestampNs last_rx = common::nowNs();
    common::TimestampNs next_ping = last_rx + config_.heartbeat_ns;
    const common::TimestampNs dead_after = 3 * config_.heartbeat_ns;
    int poll_ms = static_cast<int>(config_.heartbeat_ns / (4 * common::kNsPerMs));
    if (poll_ms < 10) poll_ms = 10;
    if (poll_ms > 500) poll_ms = 500;

    bool alive = true;
    while (alive && running_.load()) {
        const common::TimestampNs now = common::nowNs();
        if (now >= next_ping) {
            common::MutexLock lock(mutex_);
            if (!sendFrameLocked(encodePingreq())) break;
            next_ping = now + config_.heartbeat_ns;
        }
        if (const auto fault = common::fault::check("net.partition")) {
            // Inbound blackhole: whatever the kernel buffered stays there.
            if (fault.action == common::fault::Action::kDelay) {
                common::fault::applyDelay(fault.delay_ns);
            }
            common::Thread::sleepFor(std::chrono::milliseconds(10));
            if (common::nowNs() - last_rx > dead_after) {
                heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            continue;
        }
        const int current = fd_.load();
        if (current < 0) break;  // severed by publish() or stop()
        const int rv = recvSome(current, &buffer, poll_ms);
        if (rv < 0) break;
        if (rv == 0) {
            if (common::nowNs() - last_rx > dead_after) {
                heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
                break;
            }
            continue;
        }
        last_rx = common::nowNs();
        while (alive) {
            std::string_view payload;
            std::size_t consumed = 0;
            const FrameStatus status = frameDecode(
                buffer, config_.max_frame_bytes, &payload, &consumed);
            if (status == FrameStatus::kNeedMore) break;
            if (status == FrameStatus::kCrcMismatch) {
                crc_rejects_.fetch_add(1, std::memory_order_relaxed);
                alive = false;
                break;
            }
            if (status != FrameStatus::kOk) {
                decode_errors_.fetch_add(1, std::memory_order_relaxed);
                alive = false;
                break;
            }
            frames_in_.fetch_add(1, std::memory_order_relaxed);
            handleServerFrame(payload, &alive);
            buffer.erase(0, consumed);
        }
    }
    connected_.store(false);
    accepting_.store(false);
    closeSocket(fd_.exchange(-1));
    WM_LOG(kInfo, "net") << config_.client_name << ": connection lost";
}

void Connection::handleServerFrame(std::string_view payload, bool* alive) {
    Frame frame;
    if (!decodePayload(payload, &frame)) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        *alive = false;
        return;
    }
    switch (frame.type) {
        case FrameType::kPuback: {
            common::MutexLock lock(mutex_);
            for (const auto& ack : frame.puback.acks) {
                if (ack.topic_id >= id_topics_.size() ||
                    id_topics_[ack.topic_id].empty()) {
                    continue;  // ack for a topic this connection never sent
                }
                std::uint64_t& per_id = id_acked_[ack.topic_id];
                if (ack.sequence > per_id) per_id = ack.sequence;
                std::uint64_t& per_topic = acked_[id_topics_[ack.topic_id]];
                if (ack.sequence > per_topic) per_topic = ack.sequence;
            }
            // Cumulative acks release the send-ordered unacked window from
            // the front (acks arrive in send order, so the front clears
            // first in the common case).
            while (!unacked_.empty()) {
                const auto [topic_id, sequence] = unacked_.front();
                const auto it = id_acked_.find(topic_id);
                if (it == id_acked_.end() || it->second < sequence) break;
                unacked_.pop_front();
                messages_acked_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
        case FrameType::kPingresp:
        case FrameType::kConnack:
            break;  // heartbeat answer / duplicate handshake ack
        case FrameType::kDisconnect:
            *alive = false;
            break;
        default:
            decode_errors_.fetch_add(1, std::memory_order_relaxed);
            *alive = false;
            break;
    }
}

ConnectionCounters Connection::counters() const {
    ConnectionCounters out;
    out.connects = connects_.load();
    out.reconnects = out.connects > 0 ? out.connects - 1 : 0;
    out.connect_failures = connect_failures_.load();
    out.frames_out = frames_out_.load();
    out.frames_in = frames_in_.load();
    out.crc_rejects = crc_rejects_.load();
    out.decode_errors = decode_errors_.load();
    out.heartbeat_timeouts = heartbeat_timeouts_.load();
    out.publishes_sent = publishes_sent_.load();
    out.publishes_refused = publishes_refused_.load();
    out.messages_acked = messages_acked_.load();
    out.partition_drops = partition_drops_.load();
    return out;
}

std::map<std::string, std::uint64_t> Connection::ackedWatermarks() const {
    common::MutexLock lock(mutex_);
    return acked_;
}

std::size_t Connection::inflight() const {
    common::MutexLock lock(mutex_);
    return unacked_.size();
}

RemoteBroker::RemoteBroker(Connection& connection,
                           std::function<void(const mqtt::Message&)> on_publish)
    : connection_(connection), on_publish_(std::move(on_publish)) {}

int RemoteBroker::publish(const mqtt::Message& message) {
    // Intent-log BEFORE the wire write: if the process is SIGKILLed between
    // send and log, the ground-truth log must still cover everything the
    // server could have stored. A logged-but-refused publish is harmless —
    // the Pusher retries it (another log line) and the chaos driver
    // deduplicates by (topic, sequence).
    if (on_publish_) on_publish_(message);
    if (!connection_.publish(message)) return -1;
    return 1;
}

}  // namespace wm::net
