#include "mqtt/broker.h"

#include <algorithm>
#include <memory>

#include "common/fault.h"
#include "common/logging.h"

namespace wm::mqtt {

using common::MutexLock;
using common::ReadLock;
using common::WriteLock;

SubscriptionId Broker::subscribe(const std::string& filter, MessageHandler handler) {
    if (!isValidFilter(filter)) return 0;
    auto subscription = std::make_shared<Subscription>();
    subscription->id = next_id_.fetch_add(1);
    subscription->filter = filter;
    subscription->handler =
        std::make_shared<const MessageHandler>(std::move(handler));
    const SubscriptionId id = subscription->id;
    WriteLock lock(mutex_);
    by_id_.emplace(id, subscription);
    index_.insert(std::move(subscription));
    return id;
}

bool Broker::unsubscribe(SubscriptionId id) {
    WriteLock lock(mutex_);
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    index_.erase(id, it->second->filter);
    by_id_.erase(it);
    return true;
}

int Broker::publish(const Message& message) {
    if (!isValidTopic(message.topic)) return -1;
    int result = 0;
    if (publishFaulted(result)) return result;
    return deliver(message);
}

bool Broker::publishFaulted(int& result) {
    const auto fault = common::fault::check("broker.publish");
    if (!fault) return false;
    switch (fault.action) {
        case common::fault::Action::kFail:
            result = -1;  // connection refused: the caller may buffer + retry
            return true;
        case common::fault::Action::kDrop:
            dropped_.fetch_add(1, std::memory_order_relaxed);
            result = 0;  // accepted, silently lost
            return true;
        case common::fault::Action::kDelay:
            common::fault::applyDelay(fault.delay_ns);
            return false;
    }
    return false;
}

std::size_t Broker::subscriptionCount() const {
    ReadLock lock(mutex_);
    return by_id_.size();
}

int Broker::deliver(const Message& message) {
    published_.fetch_add(1, std::memory_order_relaxed);
    if (const auto fault = common::fault::check("broker.deliver")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else {  // kFail and kDrop both lose the message at delivery
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return 0;
        }
    }
    // Snapshot matching subscriptions under the shared lock — a trie walk
    // plus shared_ptr copies, no std::function copies — then call handlers
    // outside it so they may themselves publish or (un)subscribe without
    // deadlock.
    struct Target {
        SubscriptionId id;
        std::shared_ptr<const MessageHandler> handler;
        std::size_t prior_failures;
    };
    std::vector<Target> targets;
    {
        ReadLock lock(mutex_);
        std::vector<SubscriptionPtr> matched;
        index_.match(message.topic, matched);
        targets.reserve(matched.size());
        for (const auto& sub : matched) {
            targets.push_back({sub->id, sub->handler, sub->consecutive_failures});
        }
    }
    int reached = 0;
    std::vector<SubscriptionId> failed;
    std::vector<SubscriptionId> recovered;
    for (const auto& target : targets) {
        try {
            (*target.handler)(message);
            ++reached;
            if (target.prior_failures > 0) recovered.push_back(target.id);
        } catch (...) {
            delivery_failures_.fetch_add(1, std::memory_order_relaxed);
            failed.push_back(target.id);
        }
    }
    // The hot path (every handler healthy) never takes the write lock.
    if (!failed.empty() || !recovered.empty()) {
        recordDeliveryOutcomes(failed, recovered);
    }
    return reached;
}

void Broker::recordDeliveryOutcomes(const std::vector<SubscriptionId>& failed,
                                    const std::vector<SubscriptionId>& recovered) {
    const std::size_t budget = failure_budget_.load(std::memory_order_relaxed);
    std::vector<std::pair<SubscriptionId, std::string>> evicted;
    {
        WriteLock lock(mutex_);
        for (SubscriptionId id : recovered) {
            auto it = by_id_.find(id);
            if (it != by_id_.end()) it->second->consecutive_failures = 0;
        }
        for (SubscriptionId id : failed) {
            auto it = by_id_.find(id);
            if (it == by_id_.end()) continue;
            Subscription& sub = *it->second;
            ++sub.consecutive_failures;
            if (budget != 0 && sub.consecutive_failures >= budget) {
                evicted.emplace_back(id, sub.filter);
                index_.erase(id, sub.filter);
                by_id_.erase(it);
            }
        }
    }
    for (const auto& [id, filter] : evicted) {
        evicted_.fetch_add(1, std::memory_order_relaxed);
        WM_LOG(kWarning, "mqtt") << "evicting dead subscriber " << id << " ('"
                                 << filter << "') after " << failure_budget_.load()
                                 << " consecutive delivery failures";
    }
}

AsyncBroker::AsyncBroker(std::size_t max_queue) : max_queue_(max_queue) {
    dispatcher_ = common::Thread([this] { dispatchLoop(); }, "AsyncBroker.dispatcher");
}

AsyncBroker::~AsyncBroker() {
    {
        MutexLock lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
}

int AsyncBroker::publish(const Message& message) {
    // The single isValidTopic check a message pays for: deliver() trusts
    // what the dispatcher dequeues.
    if (!isValidTopic(message.topic)) return -1;
    int fault_result = 0;
    if (publishFaulted(fault_result)) return fault_result;
    int depth = -1;
    {
        MutexLock lock(queue_mutex_);
        while (!stopping_ && queue_.size() >= max_queue_) queue_cv_.wait(queue_mutex_);
        if (stopping_) return -1;
        queue_.push(message);
        depth = static_cast<int>(queue_.size());
    }
    queue_cv_.notify_all();
    return depth;
}

void AsyncBroker::flush() {
    MutexLock lock(queue_mutex_);
    while (!queue_.empty() || dispatching_) drained_cv_.wait(queue_mutex_);
}

std::size_t AsyncBroker::queueDepth() const {
    MutexLock lock(queue_mutex_);
    return queue_.size();
}

void AsyncBroker::dispatchLoop() {
    for (;;) {
        Message message;
        {
            MutexLock lock(queue_mutex_);
            while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mutex_);
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            message = std::move(queue_.front());
            queue_.pop();
            dispatching_ = true;
        }
        queue_cv_.notify_all();  // wake publishers blocked on back-pressure
        deliver(message);
        {
            MutexLock lock(queue_mutex_);
            dispatching_ = false;
            if (queue_.empty()) drained_cv_.notify_all();
        }
    }
}

}  // namespace wm::mqtt
