#include "mqtt/broker.h"

#include <algorithm>
#include <mutex>

namespace wm::mqtt {

SubscriptionId Broker::subscribe(const std::string& filter, MessageHandler handler) {
    if (!isValidFilter(filter)) return 0;
    std::unique_lock lock(mutex_);
    const SubscriptionId id = next_id_.fetch_add(1);
    subscriptions_.push_back({id, filter, std::move(handler)});
    return id;
}

bool Broker::unsubscribe(SubscriptionId id) {
    std::unique_lock lock(mutex_);
    auto it = std::find_if(subscriptions_.begin(), subscriptions_.end(),
                           [id](const Subscription& s) { return s.id == id; });
    if (it == subscriptions_.end()) return false;
    subscriptions_.erase(it);
    return true;
}

int Broker::publish(const Message& message) {
    if (!isValidTopic(message.topic)) return -1;
    return deliver(message);
}

std::size_t Broker::subscriptionCount() const {
    std::shared_lock lock(mutex_);
    return subscriptions_.size();
}

int Broker::deliver(const Message& message) {
    published_.fetch_add(1, std::memory_order_relaxed);
    // Snapshot matching handlers under the shared lock, call them outside it
    // so handlers may themselves publish or (un)subscribe without deadlock.
    std::vector<MessageHandler> handlers;
    {
        std::shared_lock lock(mutex_);
        for (const auto& sub : subscriptions_) {
            if (topicMatches(sub.filter, message.topic)) handlers.push_back(sub.handler);
        }
    }
    for (const auto& handler : handlers) handler(message);
    return static_cast<int>(handlers.size());
}

AsyncBroker::AsyncBroker(std::size_t max_queue) : max_queue_(max_queue) {
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

AsyncBroker::~AsyncBroker() {
    {
        std::lock_guard lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
}

int AsyncBroker::publish(const Message& message) {
    if (!isValidTopic(message.topic)) return -1;
    std::unique_lock lock(queue_mutex_);
    queue_cv_.wait(lock, [this] { return stopping_ || queue_.size() < max_queue_; });
    if (stopping_) return -1;
    queue_.push(message);
    const int depth = static_cast<int>(queue_.size());
    lock.unlock();
    queue_cv_.notify_all();
    return depth;
}

void AsyncBroker::flush() {
    std::unique_lock lock(queue_mutex_);
    drained_cv_.wait(lock, [this] { return queue_.empty() && !dispatching_; });
}

std::size_t AsyncBroker::queueDepth() const {
    std::lock_guard lock(queue_mutex_);
    return queue_.size();
}

void AsyncBroker::dispatchLoop() {
    for (;;) {
        Message message;
        {
            std::unique_lock lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            message = std::move(queue_.front());
            queue_.pop();
            dispatching_ = true;
        }
        queue_cv_.notify_all();  // wake publishers blocked on back-pressure
        deliver(message);
        {
            std::lock_guard lock(queue_mutex_);
            dispatching_ = false;
            if (queue_.empty()) drained_cv_.notify_all();
        }
    }
}

}  // namespace wm::mqtt
