#include "mqtt/broker.h"

#include <algorithm>

namespace wm::mqtt {

using common::MutexLock;
using common::ReadLock;
using common::WriteLock;

SubscriptionId Broker::subscribe(const std::string& filter, MessageHandler handler) {
    if (!isValidFilter(filter)) return 0;
    WriteLock lock(mutex_);
    const SubscriptionId id = next_id_.fetch_add(1);
    subscriptions_.push_back({id, filter, std::move(handler)});
    return id;
}

bool Broker::unsubscribe(SubscriptionId id) {
    WriteLock lock(mutex_);
    auto it = std::find_if(subscriptions_.begin(), subscriptions_.end(),
                           [id](const Subscription& s) { return s.id == id; });
    if (it == subscriptions_.end()) return false;
    subscriptions_.erase(it);
    return true;
}

int Broker::publish(const Message& message) {
    if (!isValidTopic(message.topic)) return -1;
    return deliver(message);
}

std::size_t Broker::subscriptionCount() const {
    ReadLock lock(mutex_);
    return subscriptions_.size();
}

int Broker::deliver(const Message& message) {
    published_.fetch_add(1, std::memory_order_relaxed);
    // Snapshot matching handlers under the shared lock, call them outside it
    // so handlers may themselves publish or (un)subscribe without deadlock.
    std::vector<MessageHandler> handlers;
    {
        ReadLock lock(mutex_);
        for (const auto& sub : subscriptions_) {
            if (topicMatches(sub.filter, message.topic)) handlers.push_back(sub.handler);
        }
    }
    for (const auto& handler : handlers) handler(message);
    return static_cast<int>(handlers.size());
}

AsyncBroker::AsyncBroker(std::size_t max_queue) : max_queue_(max_queue) {
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

AsyncBroker::~AsyncBroker() {
    {
        MutexLock lock(queue_mutex_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();
}

int AsyncBroker::publish(const Message& message) {
    if (!isValidTopic(message.topic)) return -1;
    int depth = -1;
    {
        MutexLock lock(queue_mutex_);
        while (!stopping_ && queue_.size() >= max_queue_) queue_cv_.wait(queue_mutex_);
        if (stopping_) return -1;
        queue_.push(message);
        depth = static_cast<int>(queue_.size());
    }
    queue_cv_.notify_all();
    return depth;
}

void AsyncBroker::flush() {
    MutexLock lock(queue_mutex_);
    while (!queue_.empty() || dispatching_) drained_cv_.wait(queue_mutex_);
}

std::size_t AsyncBroker::queueDepth() const {
    MutexLock lock(queue_mutex_);
    return queue_.size();
}

void AsyncBroker::dispatchLoop() {
    for (;;) {
        Message message;
        {
            MutexLock lock(queue_mutex_);
            while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mutex_);
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            message = std::move(queue_.front());
            queue_.pop();
            dispatching_ = true;
        }
        queue_cv_.notify_all();  // wake publishers blocked on back-pressure
        deliver(message);
        {
            MutexLock lock(queue_mutex_);
            dispatching_ = false;
            if (queue_.empty()) drained_cv_.notify_all();
        }
    }
}

}  // namespace wm::mqtt
