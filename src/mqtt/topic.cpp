#include "mqtt/topic.h"

#include "common/string_utils.h"

namespace wm::mqtt {

bool isValidTopic(std::string_view topic) {
    if (topic.empty()) return false;
    for (char c : topic) {
        if (c == '+' || c == '#') return false;
    }
    // Reject empty middle segments ("//") but allow a single leading slash.
    const auto segments = common::split(topic, '/', /*keep_empty=*/true);
    for (std::size_t i = 1; i < segments.size(); ++i) {
        if (segments[i].empty()) return false;
    }
    return segments.size() > 1 || !segments[0].empty();
}

bool isValidFilter(std::string_view filter) {
    if (filter.empty()) return false;
    const auto segments = common::split(filter, '/', /*keep_empty=*/true);
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const std::string& seg = segments[i];
        if (i > 0 && seg.empty()) return false;
        if (seg == "#" && i + 1 != segments.size()) return false;
        if (seg.size() > 1 && (seg.find('+') != std::string::npos ||
                               seg.find('#') != std::string::npos)) {
            return false;
        }
    }
    return true;
}

namespace {

bool segmentsOverlap(const std::vector<std::string>& a, const std::vector<std::string>& b,
                     std::size_t ai, std::size_t bi) {
    while (true) {
        const bool a_done = ai >= a.size();
        const bool b_done = bi >= b.size();
        if (a_done && b_done) return true;
        // '#' matches the remainder of the other filter, including the empty
        // remainder — any topic the other side matches is also matched here.
        if (!a_done && a[ai] == "#") return true;
        if (!b_done && b[bi] == "#") return true;
        if (a_done || b_done) return false;
        // '+' on either side matches whatever single segment the other side
        // requires; two literals must agree.
        if (a[ai] != "+" && b[bi] != "+" && a[ai] != b[bi]) return false;
        ++ai;
        ++bi;
    }
}

}  // namespace

bool filtersOverlap(std::string_view a, std::string_view b) {
    const auto aparts = common::split(a, '/', /*keep_empty=*/true);
    const auto bparts = common::split(b, '/', /*keep_empty=*/true);
    return segmentsOverlap(aparts, bparts, 0, 0);
}

bool topicMatches(std::string_view filter, std::string_view topic) {
    const auto fparts = common::split(filter, '/', /*keep_empty=*/true);
    const auto tparts = common::split(topic, '/', /*keep_empty=*/true);
    std::size_t fi = 0;
    std::size_t ti = 0;
    while (fi < fparts.size()) {
        const std::string& fseg = fparts[fi];
        if (fseg == "#") return true;  // matches the remainder, even if empty
        if (ti >= tparts.size()) return false;
        if (fseg != "+" && fseg != tparts[ti]) return false;
        ++fi;
        ++ti;
    }
    return ti == tparts.size();
}

}  // namespace wm::mqtt
