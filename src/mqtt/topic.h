#pragma once

// MQTT topic semantics: hierarchical slash-separated topics with the standard
// wildcards for subscriptions — '+' matches exactly one level, '#' matches
// any number of trailing levels. DCDB sensor topics comply with this scheme,
// so sensor names double as MQTT topics.

#include <string>
#include <string_view>

namespace wm::mqtt {

/// True if `topic` is valid for publishing: non-empty segments, no wildcards.
bool isValidTopic(std::string_view topic);

/// True if `filter` is a valid subscription filter: '+' only as a whole
/// segment, '#' only as the last segment.
bool isValidFilter(std::string_view filter);

/// MQTT matching: does `filter` (possibly with wildcards) match `topic`?
bool topicMatches(std::string_view filter, std::string_view topic);

/// Overlap predicate: is there at least one concrete topic matched by both
/// `a` and `b`? Either argument may contain wildcards; two wildcard-free
/// topics overlap iff they are equal. This is the double-publish detector
/// used by the static duplicate-output check: two operators whose output
/// topics overlap can deliver to the same subscription.
bool filtersOverlap(std::string_view a, std::string_view b);

}  // namespace wm::mqtt
