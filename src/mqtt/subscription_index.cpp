#include "mqtt/subscription_index.h"

#include <algorithm>

#include "common/string_utils.h"

namespace wm::mqtt {

namespace {

/// Splits with the same conventions as the `topicMatches` oracle: empty
/// segments are kept, so "/a" -> {"", "a"} and the leading slash is a
/// (matchable) empty root segment.
std::vector<std::string> segmentsOf(std::string_view path) {
    return common::split(path, '/', /*keep_empty=*/true);
}

}  // namespace

struct SubscriptionIndex::Node {
    /// Literal segment children (the empty string is a legal key: it is the
    /// root segment of every leading-slash topic).
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
    /// '+' child: matches exactly one segment of any content.
    std::unique_ptr<Node> plus;
    /// Filters ending exactly at this node.
    std::vector<SubscriptionPtr> here;
    /// Filters whose next (and last) segment is '#': match any remainder of
    /// a topic that reached this node, including the empty remainder.
    std::vector<SubscriptionPtr> hash;

    bool empty() const {
        return children.empty() && plus == nullptr && here.empty() && hash.empty();
    }
};

SubscriptionIndex::SubscriptionIndex() : root_(std::make_unique<Node>()) {}
SubscriptionIndex::~SubscriptionIndex() = default;

void SubscriptionIndex::insert(SubscriptionPtr subscription) {
    const std::vector<std::string> segments = segmentsOf(subscription->filter);
    Node* node = root_.get();
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const std::string& segment = segments[i];
        if (segment == "#") {  // valid filters only carry '#' terminally
            node->hash.push_back(std::move(subscription));
            ++size_;
            return;
        }
        if (segment == "+") {
            if (node->plus == nullptr) node->plus = std::make_unique<Node>();
            node = node->plus.get();
        } else {
            auto& child = node->children[segment];
            if (child == nullptr) child = std::make_unique<Node>();
            node = child.get();
        }
    }
    node->here.push_back(std::move(subscription));
    ++size_;
}

namespace {

bool eraseFrom(std::vector<SubscriptionPtr>& list, SubscriptionId id,
               SubscriptionPtr& removed) {
    auto it = std::find_if(list.begin(), list.end(),
                           [id](const SubscriptionPtr& s) { return s->id == id; });
    if (it == list.end()) return false;
    removed = std::move(*it);
    list.erase(it);
    return true;
}

}  // namespace

SubscriptionPtr SubscriptionIndex::erase(SubscriptionId id, std::string_view filter) {
    const std::vector<std::string> segments = segmentsOf(filter);
    // Record the path so emptied branches can be pruned bottom-up.
    std::vector<std::pair<Node*, const std::string*>> path;  // parent + edge taken
    Node* node = root_.get();
    SubscriptionPtr removed;
    std::size_t depth = 0;
    for (; depth < segments.size(); ++depth) {
        const std::string& segment = segments[depth];
        if (segment == "#") break;
        path.emplace_back(node, &segment);
        if (segment == "+") {
            node = node->plus.get();
        } else {
            auto it = node->children.find(segment);
            node = it == node->children.end() ? nullptr : it->second.get();
        }
        if (node == nullptr) return nullptr;
    }
    const bool terminal_hash = depth < segments.size();
    if (!eraseFrom(terminal_hash ? node->hash : node->here, id, removed)) return nullptr;
    --size_;
    // Prune: walk back up, detaching nodes that became empty.
    while (!path.empty() && node->empty() && node != root_.get()) {
        auto [parent, edge] = path.back();
        path.pop_back();
        if (*edge == "+") {
            parent->plus.reset();
        } else {
            parent->children.erase(*edge);
        }
        node = parent;
    }
    return removed;
}

void SubscriptionIndex::match(std::string_view topic,
                              std::vector<SubscriptionPtr>& out) const {
    const std::vector<std::string> segments = segmentsOf(topic);
    // Iterative frontier walk: at most 2^levels in theory, but '+' branches
    // are rare in practice so the frontier stays tiny; reused storage would
    // need per-call state, and delivery already allocates the target vector.
    std::vector<const Node*> frontier{root_.get()};
    std::vector<const Node*> next;
    for (const std::string& segment : segments) {
        next.clear();
        for (const Node* node : frontier) {
            // '#' at this level matches the (non-empty) remainder.
            out.insert(out.end(), node->hash.begin(), node->hash.end());
            if (node->plus != nullptr) next.push_back(node->plus.get());
            auto it = node->children.find(segment);
            if (it != node->children.end()) next.push_back(it->second.get());
        }
        frontier.swap(next);
        if (frontier.empty()) return;
    }
    for (const Node* node : frontier) {
        // Exact-length matches plus '#' matching the empty remainder.
        out.insert(out.end(), node->here.begin(), node->here.end());
        out.insert(out.end(), node->hash.begin(), node->hash.end());
    }
}

bool SubscriptionIndex::matchesAny(std::string_view topic) const {
    const std::vector<std::string> segments = segmentsOf(topic);
    std::vector<const Node*> frontier{root_.get()};
    std::vector<const Node*> next;
    for (const std::string& segment : segments) {
        next.clear();
        for (const Node* node : frontier) {
            if (!node->hash.empty()) return true;
            if (node->plus != nullptr) next.push_back(node->plus.get());
            auto it = node->children.find(segment);
            if (it != node->children.end()) next.push_back(it->second.get());
        }
        frontier.swap(next);
        if (frontier.empty()) return false;
    }
    for (const Node* node : frontier) {
        if (!node->here.empty() || !node->hash.empty()) return true;
    }
    return false;
}

}  // namespace wm::mqtt
