#pragma once

// Topic-segment trie over subscription filters (hot-path data plane,
// docs/PERFORMANCE.md). Replaces the broker's linear `topicMatches` scan:
// a publish walks the trie once, O(topic depth) with a bounded '+' branch
// per level, independent of the number of subscriptions. Handlers are held
// by shared_ptr so a delivery snapshot copies pointers, never std::function
// state.
//
// Semantics are pinned to the `topicMatches` oracle in mqtt/topic.h by a
// randomized differential property test (tests/test_subscription_index.cpp):
//  * '+' matches exactly one segment — including the empty root segment a
//    leading '/' produces;
//  * a trailing '#' matches the remainder of the topic, including the empty
//    remainder ("/a/#" matches "/a" itself).
//
// The index is not internally synchronised; the broker guards it with its
// subscription lock (shared for match, exclusive for insert/erase).

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mqtt/message.h"

namespace wm::mqtt {

/// One live subscription. `consecutive_failures` is broker bookkeeping for
/// dead-subscriber eviction, guarded by the broker's subscription lock.
struct Subscription {
    SubscriptionId id = 0;
    std::string filter;
    std::shared_ptr<const MessageHandler> handler;
    std::size_t consecutive_failures = 0;
};

using SubscriptionPtr = std::shared_ptr<Subscription>;

class SubscriptionIndex {
  public:
    SubscriptionIndex();
    ~SubscriptionIndex();

    SubscriptionIndex(const SubscriptionIndex&) = delete;
    SubscriptionIndex& operator=(const SubscriptionIndex&) = delete;

    /// Registers a subscription under its (pre-validated) filter.
    void insert(SubscriptionPtr subscription);

    /// Removes the subscription with `id` registered under `filter`; prunes
    /// emptied trie branches. Returns the removed subscription (nullptr if
    /// absent).
    SubscriptionPtr erase(SubscriptionId id, std::string_view filter);

    /// Appends every subscription whose filter matches `topic` to `out`.
    /// The appended shared_ptrs keep handlers alive outside the lock.
    void match(std::string_view topic, std::vector<SubscriptionPtr>& out) const;

    /// True when at least one registered filter matches `topic` (used by
    /// the wm-check dry-run analyzer; no subscription copies).
    bool matchesAny(std::string_view topic) const;

    std::size_t size() const { return size_; }

  private:
    struct Node;

    std::unique_ptr<Node> root_;
    std::size_t size_ = 0;
};

}  // namespace wm::mqtt
