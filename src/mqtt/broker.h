#pragma once

// In-process message broker standing in for DCDB's external MQTT server
// (see DESIGN.md, substitutions). Pushers publish sensor readings to topics;
// Collect Agents subscribe with wildcard filters. Two delivery modes are
// provided:
//
//  * Broker           — synchronous: publish() invokes matching callbacks
//                       inline; deterministic, used by tests and simulation.
//  * AsyncBroker      — queued: publish() enqueues and a dispatcher thread
//                       delivers, decoupling producers from consumers exactly
//                       like a networked MQTT broker does.
//
// Delivery is trie-indexed (mqtt/subscription_index.h): a publish resolves
// its matching subscriptions in O(topic depth) instead of scanning every
// filter, and the delivery snapshot copies shared_ptr handles, never
// std::function state (docs/PERFORMANCE.md).

#include <atomic>
#include <cstdint>
#include <queue>
#include <string>
#include "common/thread.h"
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "mqtt/message.h"
#include "mqtt/subscription_index.h"
#include "mqtt/topic.h"
#include "sensors/reading.h"

namespace wm::mqtt {

/// Synchronous broker. Thread-safe; handlers run on the publishing thread.
///
/// Resilience semantics (docs/RESILIENCE.md):
///  * fault point "broker.publish" — kFail refuses the publish (returns -1,
///    a down connection: callers may buffer and retry), kDrop accepts but
///    silently loses the message (lossy network).
///  * fault point "broker.deliver" — kFail/kDrop lose the message at
///    delivery time; counted in droppedCount().
///  * a handler that throws counts one delivery failure against its
///    subscription; after `failure budget` consecutive failures the
///    subscriber is evicted (a dead MQTT client being disconnected).
class Broker {
  public:
    virtual ~Broker() = default;

    /// Subscribes `handler` to all topics matching `filter`.
    /// Returns 0 if the filter is invalid.
    SubscriptionId subscribe(const std::string& filter, MessageHandler handler);

    /// Removes a subscription; returns true if it existed.
    bool unsubscribe(SubscriptionId id);

    /// Delivers `message` to matching subscribers. Returns the number of
    /// subscribers reached, or -1 for an invalid topic or a refused
    /// (injected-fault) publish.
    virtual int publish(const Message& message);

    /// Consecutive delivery failures (handler exceptions) tolerated per
    /// subscriber before eviction; 0 (the default) disables eviction.
    void setSubscriberFailureBudget(std::size_t budget) {
        failure_budget_.store(budget, std::memory_order_relaxed);
    }

    std::size_t subscriptionCount() const;
    std::uint64_t publishedCount() const { return published_.load(); }
    /// Messages lost to injected broker faults (publish- or deliver-side).
    std::uint64_t droppedCount() const { return dropped_.load(); }
    /// Individual handler invocations that threw.
    std::uint64_t deliveryFailures() const { return delivery_failures_.load(); }
    /// Subscriptions evicted after exhausting the failure budget.
    std::uint64_t evictedSubscribers() const { return evicted_.load(); }

  protected:
    /// Delivers to matching subscribers. The topic was validated by the
    /// public publish() entry point — it is NOT re-checked here, so a message
    /// pays for isValidTopic exactly once (AsyncBroker included).
    int deliver(const Message& message);

    /// Applies the "broker.publish" fault point. Returns true when the
    /// publish must be cut short, with `result` set to the return value.
    bool publishFaulted(int& result);

  private:
    void recordDeliveryOutcomes(const std::vector<SubscriptionId>& failed,
                                const std::vector<SubscriptionId>& recovered);

    mutable common::SharedMutex mutex_{"Broker", common::LockRank::kBroker};
    /// Filter trie; resolves a topic to its subscriptions in O(depth).
    SubscriptionIndex index_ WM_GUARDED_BY(mutex_);
    /// Id -> subscription, for unsubscribe/eviction (needs the filter to
    /// locate the trie entry).
    std::unordered_map<SubscriptionId, SubscriptionPtr> by_id_ WM_GUARDED_BY(mutex_);
    std::atomic<SubscriptionId> next_id_{1};
    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::size_t> failure_budget_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> delivery_failures_{0};
    std::atomic<std::uint64_t> evicted_{0};
};

/// Asynchronous broker: a bounded queue plus one dispatcher thread.
class AsyncBroker final : public Broker {
  public:
    /// Default bound of the ingest queue; the wm-check capacity model
    /// (src/analysis/capacity.cpp) checks per-tick bursts against it.
    static constexpr std::size_t kDefaultMaxQueue = 65536;

    explicit AsyncBroker(std::size_t max_queue = kDefaultMaxQueue);
    ~AsyncBroker() override;

    /// Enqueues the message for asynchronous delivery. Returns the current
    /// queue depth, or -1 for an invalid topic; blocks when the queue is full
    /// (back-pressure, like a TCP-backed MQTT client would). The topic is
    /// validated here, once; the dequeued delivery trusts it.
    int publish(const Message& message) override;

    /// Blocks until the queue has drained and the dispatcher is idle.
    void flush();

    std::size_t queueDepth() const;

  private:
    void dispatchLoop();

    mutable common::Mutex queue_mutex_{"AsyncBroker.queue", common::LockRank::kBrokerQueue};
    common::ConditionVariable queue_cv_;
    common::ConditionVariable drained_cv_;
    std::queue<Message> queue_ WM_GUARDED_BY(queue_mutex_);
    std::size_t max_queue_;  // immutable after construction
    bool stopping_ WM_GUARDED_BY(queue_mutex_) = false;
    bool dispatching_ WM_GUARDED_BY(queue_mutex_) = false;
    common::Thread dispatcher_;
};

}  // namespace wm::mqtt
