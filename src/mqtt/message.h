#pragma once

// The MQTT message and subscriber-callback vocabulary shared by the broker
// and the subscription index.

#include <cstdint>
#include <functional>
#include <string>

#include "sensors/reading.h"

namespace wm::mqtt {

/// A published message: a sensor topic plus a batch of readings.
struct Message {
    std::string topic;
    sensors::ReadingVector readings;
};

using SubscriptionId = std::uint64_t;
using MessageHandler = std::function<void(const Message&)>;

}  // namespace wm::mqtt
