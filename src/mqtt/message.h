#pragma once

// The MQTT message and subscriber-callback vocabulary shared by the broker
// and the subscription index.

#include <cstdint>
#include <functional>
#include <string>

#include "sensors/reading.h"

namespace wm::mqtt {

/// A published message: a sensor topic plus a batch of readings.
struct Message {
    std::string topic;
    sensors::ReadingVector readings;
    /// Per-topic publish sequence number stamped by the producer; consumers
    /// drop messages at or below the highest sequence already seen, making
    /// at-least-once replay after a restart free of duplicates. 0 means
    /// unsequenced (legacy producers, tests): never deduplicated.
    std::uint64_t sequence = 0;
};

using SubscriptionId = std::uint64_t;
using MessageHandler = std::function<void(const Message&)>;

}  // namespace wm::mqtt
