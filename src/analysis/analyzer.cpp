#include "analysis/analyzer.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/capacity.h"
#include "analysis/dataflow.h"
#include "common/fault.h"
#include "common/string_utils.h"
#include "common/time_utils.h"
#include "core/operator.h"
#include "core/sensor_tree.h"
#include "core/unit_system.h"
#include "mqtt/subscription_index.h"
#include "mqtt/topic.h"
#include "plugins/registry.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/scenariosim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/sim_node.h"
#include "scenario/script.h"
#include "simulator/topology.h"

namespace wm::analysis {

namespace {

using common::ConfigNode;
using common::kNsPerSec;

const std::set<std::string>& knownTopLevelBlocks() {
    static const std::set<std::string> known = {
        "cluster", "pusher",      "facility",    "plugin",    "resilience",
        "faults",  "collectagent", "persistence", "supervisor", "scenario",
        "capacity", "transport",   "remote"};
    return known;
}

/// Fault points instrumented in the data path (grep fault::check to extend).
const std::set<std::string>& knownFaultPoints() {
    static const std::set<std::string> known = {
        "broker.deliver", "broker.publish",    "collectagent.ingest",
        "pusher.sample",  "rest.request",      "storage.insert",
        "persist.wal_append", "persist.snapshot_write",
        "net.accept", "net.frame_read", "net.frame_write", "net.partition"};
    return known;
}

/// True when the config opens the wire transport for remote pushers — a
/// server in that shape legitimately runs with zero local nodes.
bool transportListening(const ConfigNode& root) {
    const ConfigNode* block = root.child("transport");
    return block != nullptr && block->getBool("listen", false);
}

std::string formatDuration(common::TimestampNs ns) {
    std::ostringstream out;
    if (ns % kNsPerSec == 0) {
        out << ns / kNsPerSec << "s";
    } else {
        out << ns << "ns";
    }
    return out.str();
}

/// The cluster the daemon would build: topology, sampling cadence, and the
/// raw sensor inventory of every pusher — all from static group metadata;
/// no sampling thread, no MQTT connection.
struct ClusterModel {
    simulator::Topology topology;
    common::TimestampNs sampling_ns = kNsPerSec;
    common::TimestampNs cache_window_ns = 180 * kNsPerSec;
    /// One entry per pusher: its name (node path or "/facility") and raw
    /// sensors, mirroring buildCluster() in wintermuted.cpp.
    std::vector<std::pair<std::string, std::vector<sensors::SensorMetadata>>> pushers;
};

ClusterModel buildClusterModel(const ConfigNode& root, DiagnosticSink& sink) {
    ClusterModel model;
    const ConfigNode* cluster = root.child("cluster");
    if (cluster != nullptr) {
        const struct {
            const char* key;
            std::int64_t fallback;
            std::size_t* target;
        } kDimensions[] = {
            {"racks", 2, &model.topology.racks},
            {"chassisPerRack", 2, &model.topology.chassis_per_rack},
            {"nodesPerChassis", 2, &model.topology.nodes_per_chassis},
            {"cpusPerNode", 8, &model.topology.cpus_per_node},
        };
        bool valid = true;
        const bool ingest_only = transportListening(root);
        for (const auto& dimension : kDimensions) {
            const std::int64_t value = cluster->getInt(dimension.key, dimension.fallback);
            if (value == 0 && ingest_only) {
                // An ingest-only server (transport { listen true }) may run a
                // zero-node cluster: remote wm_pusherd processes feed it.
                *dimension.target = 0;
            } else if (value <= 0) {
                const ConfigNode* child = cluster->child(dimension.key);
                sink.error("WM0107",
                           std::string("'") + dimension.key +
                               "' must be positive; the cluster has no nodes",
                           child != nullptr ? child->line() : cluster->line(),
                           child != nullptr ? child->column() : cluster->column());
                valid = false;
            } else {
                *dimension.target = static_cast<std::size_t>(value);
            }
        }
        model.topology.max_nodes =
            static_cast<std::size_t>(std::max<std::int64_t>(cluster->getInt("maxNodes", 0), 0));
        if (!valid) model.topology.max_nodes = 0;
        if (!valid) return model;
    }

    const ConfigNode* pusher_cfg = root.child("pusher");
    if (pusher_cfg != nullptr) {
        model.sampling_ns = pusher_cfg->getDurationNs("samplingInterval", kNsPerSec);
        model.cache_window_ns = pusher_cfg->getDurationNs("cacheWindow", 180 * kNsPerSec);
        if (model.sampling_ns <= 0) {
            const ConfigNode* child = pusher_cfg->child("samplingInterval");
            sink.error("WM0303", "'samplingInterval' must be a positive duration",
                       child != nullptr ? child->line() : pusher_cfg->line(),
                       child != nullptr ? child->column() : pusher_cfg->column());
            model.sampling_ns = kNsPerSec;
        }
        if (model.cache_window_ns <= 0) {
            const ConfigNode* child = pusher_cfg->child("cacheWindow");
            sink.error("WM0303", "'cacheWindow' must be a positive duration",
                       child != nullptr ? child->line() : pusher_cfg->line(),
                       child != nullptr ? child->column() : pusher_cfg->column());
            model.cache_window_ns = 180 * kNsPerSec;
        } else if (model.cache_window_ns < model.sampling_ns) {
            const ConfigNode* child = pusher_cfg->child("cacheWindow");
            sink.warning("WM0301",
                         "'cacheWindow' (" + formatDuration(model.cache_window_ns) +
                             ") is shorter than 'samplingInterval' (" +
                             formatDuration(model.sampling_ns) +
                             "); caches hold at most one reading",
                         child != nullptr ? child->line() : pusher_cfg->line(),
                         child != nullptr ? child->column() : pusher_cfg->column());
        }
    }

    // Raw sensor inventory, from the same group metadata the pushers would
    // publish. One shared simulated node suffices: sensors() only reads the
    // core count.
    const auto node =
        std::make_shared<pusher::SimulatedNode>(model.topology.cpus_per_node, 1);
    // Scenario runs (wm_eval) add the ground-truth label stream per node;
    // only then, so the sensor space of plain deployments is unchanged.
    const bool has_scenario = root.child("scenario") != nullptr;
    for (std::size_t n = 0; n < model.topology.nodeCount(); ++n) {
        const std::string node_path = model.topology.nodePath(n);
        std::vector<sensors::SensorMetadata> sensors;
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        perf.interval_ns = model.sampling_ns;
        const pusher::PerfsimGroup perf_group(perf, node);
        for (auto& metadata : perf_group.sensors()) sensors.push_back(std::move(metadata));
        pusher::SysfssimGroupConfig sys;
        sys.node_path = node_path;
        sys.interval_ns = model.sampling_ns;
        const pusher::SysfssimGroup sys_group(sys, node);
        for (auto& metadata : sys_group.sensors()) sensors.push_back(std::move(metadata));
        pusher::ProcfssimGroupConfig proc;
        proc.node_path = node_path;
        proc.interval_ns = model.sampling_ns;
        const pusher::ProcfssimGroup proc_group(proc, node);
        for (auto& metadata : proc_group.sensors()) sensors.push_back(std::move(metadata));
        if (has_scenario) {
            pusher::ScenariosimGroupConfig scn;
            scn.node_path = node_path;
            scn.interval_ns = model.sampling_ns;
            const pusher::ScenariosimGroup scn_group(
                scn, [](common::TimestampNs) { return 0.0; });
            for (auto& metadata : scn_group.sensors()) {
                sensors.push_back(std::move(metadata));
            }
        }
        model.pushers.emplace_back(node_path, std::move(sensors));
    }
    if (model.pushers.empty() && !transportListening(root)) {
        sink.error("WM0107", "cluster topology yields zero nodes",
                   cluster != nullptr ? cluster->line() : 0,
                   cluster != nullptr ? cluster->column() : 0);
    }

    const ConfigNode* facility = root.child("facility");
    if (facility == nullptr || facility->getBool("enabled", true)) {
        pusher::FacilitysimGroupConfig facility_config;
        facility_config.interval_ns = model.sampling_ns;
        const pusher::FacilitysimGroup facility_group(
            facility_config, std::make_shared<pusher::SimulatedFacility>());
        model.pushers.emplace_back("/facility", facility_group.sensors());
    }
    return model;
}

/// One analyzed operator block (pusher-host blocks merged over all pushers).
struct OperatorRecord {
    std::string id;       // "plugin/name@host"
    std::string subject;  // "plugin/name"
    std::size_t line = 0;
    std::size_t column = 0;
    bool sink_plugin = false;
    bool job_scoped = false;
    bool publish = true;
    std::vector<std::string> input_topics;
    std::vector<std::string> output_topics;
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
};

struct AnalyzerState {
    ClusterModel model;
    /// Pusher-local sensor trees, grown operator by operator exactly as the
    /// runtime Query Engines would be.
    std::vector<std::pair<std::string, core::SensorTree>> pusher_trees;
    /// The Collect Agent's global tree (everything published over MQTT).
    core::SensorTree agent_tree;
    /// Every produced topic -> producer, for double-publish detection.
    std::map<std::string, std::string> topic_owners;
    /// host + "|" + operator name, for duplicate detection.
    std::set<std::string> names_on_host;
    std::vector<OperatorRecord> records;
    /// Rates/cardinalities fed to the capacity pass; `capacity.pushers` is
    /// index-aligned with `pusher_trees`.
    CapacityInputs capacity;
};

void seedRawSensors(AnalyzerState& state) {
    state.capacity.sampling_ns = state.model.sampling_ns;
    state.capacity.cache_window_ns = state.model.cache_window_ns;
    state.capacity.node_count = state.model.topology.nodeCount();
    const double raw_rate =
        state.model.sampling_ns > 0
            ? static_cast<double>(kNsPerSec) / static_cast<double>(state.model.sampling_ns)
            : 0.0;
    for (const auto& [pusher_name, sensors] : state.model.pushers) {
        core::SensorTree tree;
        CapacityInputs::PusherInfo pusher_info;
        pusher_info.name = pusher_name;
        for (const auto& metadata : sensors) {
            tree.addSensor(metadata.topic);
            ++pusher_info.sensors;
            if (metadata.publish) {
                state.agent_tree.addSensor(metadata.topic);
                ++pusher_info.published;
                state.capacity.published_topics.push_back(
                    {metadata.topic, raw_rate, false});
            }
            state.topic_owners.emplace(metadata.topic, "raw sensor");
        }
        state.pusher_trees.emplace_back(pusher_name, std::move(tree));
        state.capacity.pushers.push_back(std::move(pusher_info));
    }
}

/// Registers a produced topic and reports WM0201/WM0202. Topics carrying
/// MQTT wildcards are invalid as outputs; they are additionally matched
/// against the registry with the overlap predicate so a wildcard cannot
/// hide a double publish.
void registerOutputTopic(const std::string& topic, const OperatorRecord& record,
                         AnalyzerState& state, DiagnosticSink& sink) {
    if (!mqtt::isValidTopic(topic)) {
        sink.error("WM0201",
                   "resolved output topic '" + topic + "' is not a valid MQTT topic",
                   record.line, record.column, record.subject);
        if (mqtt::isValidFilter(topic)) {
            for (const auto& [existing, owner] : state.topic_owners) {
                if (mqtt::filtersOverlap(topic, existing)) {
                    sink.error("WM0202",
                               "wildcard output '" + topic + "' overlaps topic '" +
                                   existing + "' produced by " + owner,
                               record.line, record.column, record.subject);
                    break;
                }
            }
        }
        return;
    }
    const auto [it, inserted] = state.topic_owners.emplace(topic, record.subject);
    if (!inserted && it->second != record.subject) {
        sink.error("WM0202",
                   "output topic '" + topic + "' is already produced by " + it->second +
                       " (double publish)",
                   record.line, record.column, record.subject);
    }
}

void analyzeOperator(const std::string& plugin_name, const plugins::PluginStaticInfo* info,
                     const ConfigNode& op_node, const std::string& host,
                     AnalyzerState& state, DiagnosticSink& sink,
                     AnalysisSummary& summary) {
    ++summary.operators_analyzed;
    OperatorRecord record;
    record.subject = plugins::operatorSubject(op_node, plugin_name);
    record.id = record.subject + "@" + host;
    record.line = op_node.line();
    record.column = op_node.column();
    if (info != nullptr) {
        record.sink_plugin = info->sink;
        record.job_scoped = info->job_scoped;
        if (info->validate) info->validate(op_node, sink);
    }

    const core::OperatorConfig config = info != nullptr && info->effective_config
                                            ? info->effective_config(op_node)
                                            : core::parseOperatorConfig(op_node, plugin_name);
    record.publish = config.publish_outputs;
    record.input_names = plugins::patternLeafNames(config.input_patterns);
    record.output_names = plugins::patternLeafNames(config.output_patterns);

    if (!state.names_on_host.insert(host + "|" + config.name).second) {
        sink.error("WM0105",
                   "duplicate operator name '" + config.name + "' on host '" + host + "'",
                   record.line, record.column, record.subject);
    }

    // Interval/window feasibility. OnDemand operators have no tick interval.
    if (config.mode == core::OperatorMode::kOnline && config.interval_ns <= 0) {
        sink.error("WM0303", "'interval' must be a positive duration", record.line,
                   record.column, record.subject);
    }
    if (!config.input_patterns.empty() && config.window_ns > 0 &&
        config.window_ns < state.model.sampling_ns) {
        sink.warning("WM0301",
                     "'window' (" + formatDuration(config.window_ns) +
                         ") is shorter than the input sampling interval (" +
                         formatDuration(state.model.sampling_ns) +
                         "); queries see at most one reading",
                     record.line, record.column, record.subject);
    }
    if (config.window_ns > state.model.cache_window_ns) {
        const std::string message =
            "'window' (" + formatDuration(config.window_ns) +
            ") exceeds the cache retention 'cacheWindow' (" +
            formatDuration(state.model.cache_window_ns) + ")";
        if (host == "pusher") {
            // Pusher-hosted operators have no storage fallback.
            sink.error("WM0302", message + "; the data can never be served", record.line,
                       record.column, record.subject);
        } else {
            sink.warning("WM0302", message + "; queries fall back to storage",
                         record.line, record.column, record.subject);
        }
    }

    if (config.output_patterns.empty() && !record.sink_plugin) {
        sink.error("WM0104", "operator has no output patterns", record.line,
                   record.column, record.subject);
        state.records.push_back(std::move(record));
        return;
    }

    // Pattern syntax (WM0102), reported per malformed expression.
    bool malformed = false;
    for (const auto* patterns : {&config.input_patterns, &config.output_patterns}) {
        for (const auto& pattern : *patterns) {
            if (!core::parsePattern(pattern)) {
                sink.error("WM0102", "malformed pattern expression '" + pattern + "'",
                           record.line, record.column, record.subject);
                malformed = true;
            }
        }
    }
    if (malformed) {
        state.records.push_back(std::move(record));
        return;
    }
    const auto unit_template =
        core::makeUnitTemplate(config.input_patterns, config.output_patterns);
    if (!unit_template) {
        sink.error("WM0102", "malformed pattern expression", record.line, record.column,
                   record.subject);
        state.records.push_back(std::move(record));
        return;
    }

    // Unit resolution, staged exactly like the runtime: pusher-host blocks
    // resolve on every pusher's tree (outputs feed that tree, and the global
    // tree when published); Collect Agent blocks resolve on the global tree.
    std::set<std::string> inputs;
    std::set<std::string> outputs;
    std::size_t units = 0;
    const bool op_online = config.mode == core::OperatorMode::kOnline;
    const double op_rate = op_online && config.interval_ns > 0
                               ? static_cast<double>(kNsPerSec) /
                                     static_cast<double>(config.interval_ns)
                               : 0.0;
    if (!record.job_scoped) {
        if (host == "pusher") {
            for (std::size_t p = 0; p < state.pusher_trees.size(); ++p) {
                core::SensorTree& tree = state.pusher_trees[p].second;
                const core::UnitResolver resolver(tree);
                const std::vector<core::Unit> resolved =
                    resolver.resolveUnits(*unit_template);
                units += resolved.size();
                std::set<std::string> local_outputs;
                for (const auto& unit : resolved) {
                    inputs.insert(unit.inputs.begin(), unit.inputs.end());
                    local_outputs.insert(unit.outputs.begin(), unit.outputs.end());
                }
                for (const auto& topic : local_outputs) {
                    tree.addSensor(topic);
                    if (config.publish_outputs) state.agent_tree.addSensor(topic);
                }
                if (!record.sink_plugin) {
                    CapacityInputs::PusherInfo& pusher_info = state.capacity.pushers[p];
                    pusher_info.op_outputs += local_outputs.size();
                    if (config.publish_outputs) {
                        pusher_info.published_op_outputs += local_outputs.size();
                        for (const auto& topic : local_outputs) {
                            state.capacity.published_topics.push_back(
                                {topic, op_rate, true});
                        }
                    }
                }
                outputs.insert(local_outputs.begin(), local_outputs.end());
            }
        } else {
            const core::UnitResolver resolver(state.agent_tree);
            const std::vector<core::Unit> resolved = resolver.resolveUnits(*unit_template);
            units += resolved.size();
            for (const auto& unit : resolved) {
                inputs.insert(unit.inputs.begin(), unit.inputs.end());
                outputs.insert(unit.outputs.begin(), unit.outputs.end());
            }
            for (const auto& topic : outputs) state.agent_tree.addSensor(topic);
        }
        if (units == 0) {
            sink.error("WM0103",
                       "no units resolve: the patterns match nothing in the sensor tree",
                       record.line, record.column, record.subject);
        }
    }
    summary.units_resolved += units;

    record.input_topics.assign(inputs.begin(), inputs.end());
    record.output_topics.assign(outputs.begin(), outputs.end());
    record.output_topics.insert(record.output_topics.end(),
                                config.global_output_topics.begin(),
                                config.global_output_topics.end());
    if (!record.sink_plugin) {
        for (const auto& topic : outputs) registerOutputTopic(topic, record, state, sink);
        for (const auto& topic : config.global_output_topics) {
            registerOutputTopic(topic, record, state, sink);
        }
    }

    CapacityInputs::OperatorInput op_input;
    op_input.id = record.id;
    op_input.subject = record.subject;
    op_input.plugin = plugin_name;
    op_input.host = host;
    op_input.line = record.line;
    op_input.column = record.column;
    op_input.online = op_online;
    op_input.publish = config.publish_outputs;
    op_input.sink_plugin = record.sink_plugin;
    op_input.job_scoped = record.job_scoped;
    op_input.interval_ns = config.interval_ns;
    op_input.window_ns = config.window_ns;
    op_input.units = units;
    op_input.input_count = inputs.size();
    op_input.output_count = outputs.size() + config.global_output_topics.size();
    if (info != nullptr && info->cost) {
        const plugins::PluginCostModel cost = info->cost(op_node, units, inputs.size());
        op_input.state_bytes = cost.state_bytes;
        op_input.ns_per_reading = cost.ns_per_reading;
    }
    state.capacity.op_inputs.push_back(std::move(op_input));
    state.records.push_back(std::move(record));
}

void analyzePlugins(const ConfigNode& root, AnalyzerState& state, DiagnosticSink& sink,
                    AnalysisSummary& summary) {
    const auto& static_info = plugins::builtinPluginStaticInfo();
    for (const auto* plugin : root.childrenOf("plugin")) {
        const std::string name = plugin->value();
        if (plugins::builtinConfigurators().count(name) == 0) {
            sink.error("WM0101", "unknown plugin '" + name + "'", plugin->line(),
                       plugin->column());
            continue;
        }
        std::string host = plugin->getString("host", "collectagent");
        if (host != "pusher" && host != "collectagent") {
            const ConfigNode* child = plugin->child("host");
            sink.error("WM0106",
                       "invalid host '" + host +
                           "' (expected 'pusher' or 'collectagent'); the runtime "
                           "silently treats it as 'collectagent'",
                       child != nullptr ? child->line() : plugin->line(),
                       child != nullptr ? child->column() : plugin->column(),
                       "plugin " + name);
            host = "collectagent";
        }
        const auto info_it = static_info.find(name);
        const plugins::PluginStaticInfo* info =
            info_it != static_info.end() ? &info_it->second : nullptr;
        for (const auto& child : plugin->children()) {
            if (child.key() != "operator") continue;
            analyzeOperator(name, info, child, host, state, sink, summary);
        }
    }
}

/// WM0204: operators whose outputs leave the process nowhere — not published
/// over MQTT and not consumed by any other operator.
void checkDeadOutputs(const AnalyzerState& state, DiagnosticSink& sink) {
    for (const auto& record : state.records) {
        if (record.publish || record.sink_plugin || record.job_scoped) continue;
        // Nothing resolved (already WM0103) — no point piling on.
        if (record.output_topics.empty()) continue;
        bool consumed = false;
        for (const auto& other : state.records) {
            if (other.id == record.id) continue;
            for (const auto& topic : record.output_topics) {
                consumed = consumed ||
                           std::find(other.input_topics.begin(), other.input_topics.end(),
                                     topic) != other.input_topics.end();
            }
            for (const auto& name : record.output_names) {
                consumed = consumed ||
                           std::find(other.input_names.begin(), other.input_names.end(),
                                     name) != other.input_names.end();
            }
            if (consumed) break;
        }
        if (!consumed) {
            sink.warning("WM0204",
                         "outputs are neither published (publish false) nor consumed "
                         "by another operator; the results are unreachable",
                         record.line, record.column, record.subject);
        }
    }
}

void checkCycles(const AnalyzerState& state, DiagnosticSink& sink) {
    DataflowGraph graph;
    for (const auto& record : state.records) {
        graph.addNode({record.id, record.input_topics, record.output_topics,
                       record.input_names, record.output_names});
    }
    for (const auto& cycle : graph.cycles()) {
        std::ostringstream message;
        message << "operator dependency cycle: ";
        for (const auto& id : cycle) message << id << " -> ";
        message << cycle.front();
        sink.error("WM0203", message.str());
    }
}

/// WM0205/WM0206: the Collect Agent's subscription filter
/// (`collectagent { filter "..." }`, default "#") must be a valid MQTT
/// filter and should match at least one topic actually published over MQTT
/// — published raw sensors plus operator outputs with publish enabled. A
/// filter matching nothing means the agent stores nothing; that is almost
/// always a typo in the filter's topic prefix.
void checkCollectAgent(const ConfigNode& root, const AnalyzerState& state,
                       DiagnosticSink& sink) {
    const ConfigNode* block = root.child("collectagent");
    if (block == nullptr) return;
    const ConfigNode* filter_node = block->child("filter");
    if (filter_node == nullptr) return;  // default "#" matches everything
    const std::string filter = filter_node->value();
    if (!mqtt::isValidFilter(filter)) {
        sink.error("WM0205",
                   "'" + filter + "' is not a valid MQTT subscription filter",
                   filter_node->line(), filter_node->column(), "collectagent");
        return;
    }
    // One-filter trie: matchesAny resolves each candidate in O(depth), the
    // same index the broker itself would consult for this subscription.
    mqtt::SubscriptionIndex index;
    auto subscription = std::make_shared<mqtt::Subscription>();
    subscription->id = 1;
    subscription->filter = filter;
    index.insert(std::move(subscription));
    // An ingest-only server's topics arrive over the wire transport from
    // remote wm_pusherd processes — invisible to the static model, so a
    // "filter matches nothing" verdict would be unfounded.
    if (transportListening(root)) return;
    std::size_t published = 0;
    for (const auto& [pusher_name, sensors] : state.model.pushers) {
        for (const auto& metadata : sensors) {
            if (!metadata.publish) continue;
            ++published;
            if (index.matchesAny(metadata.topic)) return;
        }
    }
    for (const auto& record : state.records) {
        if (!record.publish) continue;
        for (const auto& topic : record.output_topics) {
            ++published;
            if (index.matchesAny(topic)) return;
        }
    }
    sink.warning("WM0206",
                 "filter '" + filter + "' matches none of the " +
                     std::to_string(published) +
                     " topics published over MQTT; the Collect Agent will "
                     "receive nothing",
                 filter_node->line(), filter_node->column(), "collectagent");
}

void checkFaults(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("faults");
    if (block == nullptr) return;
    for (const auto* point : block->childrenOf("point")) {
        const std::string spec = point->getString("spec");
        if (!common::fault::parseFaultSpec(spec)) {
            sink.error("WM0501",
                       "invalid fault spec '" + spec + "' for point '" + point->value() +
                           "'",
                       point->line(), point->column());
        }
        if (knownFaultPoints().count(point->value()) == 0) {
            sink.warning("WM0502",
                         "unknown fault point '" + point->value() +
                             "'; no code path evaluates it",
                         point->line(), point->column());
        }
    }
}

void checkResilience(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("resilience");
    if (block == nullptr) return;
    static const std::set<std::string> known = {
        "publishBufferMax",  "retryInitialBackoff",     "retryMaxBackoff",
        "retryMultiplier",   "retryJitter",             "subscriberFailureBudget",
        "quarantineMax"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM0503", "unknown resilience knob '" + child.key() + "'",
                       child.line(), child.column());
        }
    }
    for (const char* key : {"publishBufferMax", "subscriberFailureBudget", "quarantineMax"}) {
        const ConfigNode* child = block->child(key);
        if (child != nullptr && block->getInt(key, 0) < 0) {
            sink.error("WM0503", std::string("'") + key + "' must be non-negative",
                       child->line(), child->column());
        }
    }
    for (const char* key : {"retryInitialBackoff", "retryMaxBackoff"}) {
        const ConfigNode* child = block->child(key);
        if (child != nullptr && block->getDurationNs(key, 1) <= 0) {
            sink.error("WM0503", std::string("'") + key + "' must be a positive duration",
                       child->line(), child->column());
        }
    }
    if (const ConfigNode* multiplier = block->child("retryMultiplier")) {
        if (block->getDouble("retryMultiplier", 2.0) < 1.0) {
            sink.error("WM0503", "'retryMultiplier' must be >= 1", multiplier->line(),
                       multiplier->column());
        }
    }
    if (const ConfigNode* jitter = block->child("retryJitter")) {
        const double value = block->getDouble("retryJitter", 0.1);
        if (value < 0.0 || value > 1.0) {
            sink.error("WM0503", "'retryJitter' must be within [0, 1]", jitter->line(),
                       jitter->column());
        }
    }
    const std::int64_t initial = block->getDurationNs("retryInitialBackoff", 0);
    const std::int64_t max = block->getDurationNs("retryMaxBackoff", 0);
    if (initial > 0 && max > 0 && initial > max) {
        sink.error("WM0503", "'retryInitialBackoff' exceeds 'retryMaxBackoff'",
                   block->line(), block->column());
    }
}

/// True when `directory` either is a writable directory or could be created
/// by the daemon (its nearest existing ancestor is a writable directory).
bool persistenceDirWritable(const std::string& directory) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path probe = fs::absolute(fs::path(directory), ec);
    if (ec) return false;
    while (!fs::exists(probe, ec)) {
        const fs::path parent = probe.parent_path();
        if (parent.empty() || parent == probe) return false;
        probe = parent;
    }
    if (!fs::is_directory(probe, ec)) return false;
    return ::access(probe.c_str(), W_OK) == 0;
}

/// Mirrors StorageBackend's path resolution: file names are relative to the
/// persistence directory unless absolute.
std::string resolveInDirectory(const std::string& directory, const std::string& file) {
    if (!file.empty() && file.front() == '/') return file;
    return directory + "/" + file;
}

void checkPersistence(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("persistence");
    if (block == nullptr) return;
    static const std::set<std::string> known = {
        "directory",     "walFile",           "snapshotFile",     "quarantineWal",
        "snapshotEvery", "checkpointInterval", "quarantineJournal"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM0703", "unknown persistence knob '" + child.key() + "'",
                       child.line(), child.column());
        }
    }
    const std::string directory = block->getString("directory");
    if (directory.empty()) {
        sink.error("WM0701",
                   "persistence block without a 'directory'; durability would be "
                   "disabled at runtime",
                   block->line(), block->column());
    } else if (!persistenceDirWritable(directory)) {
        const ConfigNode* key = block->child("directory");
        sink.error("WM0701",
                   "snapshot directory '" + directory +
                       "' is not writable and cannot be created",
                   key->line(), key->column());
    }
    if (const ConfigNode* every = block->child("snapshotEvery")) {
        if (block->getInt("snapshotEvery", 0) < 0) {
            sink.error("WM0703", "'snapshotEvery' must be non-negative", every->line(),
                       every->column());
        }
    }
    if (const ConfigNode* interval = block->child("checkpointInterval")) {
        if (block->getDurationNs("checkpointInterval", 1) <= 0) {
            sink.error("WM0703", "'checkpointInterval' must be a positive duration",
                       interval->line(), interval->column());
        }
    }
    // One journal per component: two writers appending to the same WAL (or
    // a snapshot clobbering a WAL) corrupt each other's framing.
    if (directory.empty()) return;
    const struct {
        const char* key;
        const char* fallback;
        const char* what;
    } files[] = {{"walFile", "storage.wal", "storage WAL"},
                 {"snapshotFile", "storage.snap", "storage snapshot"},
                 {"quarantineWal", "quarantine.wal", "quarantine journal"}};
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = a + 1; b < 3; ++b) {
            const std::string path_a = resolveInDirectory(
                directory, block->getString(files[a].key, files[a].fallback));
            const std::string path_b = resolveInDirectory(
                directory, block->getString(files[b].key, files[b].fallback));
            if (path_a == path_b) {
                sink.error("WM0702",
                           std::string(files[a].what) + " and " + files[b].what +
                               " share one path '" + path_a + "'",
                           block->line(), block->column());
            }
        }
    }
}

void checkSupervisor(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("supervisor");
    if (block == nullptr) return;
    static const std::set<std::string> known = {"checkInterval", "maxRestarts",
                                                "restartInitialBackoff",
                                                "restartMaxBackoff", "seed"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM0704", "unknown supervisor knob '" + child.key() + "'",
                       child.line(), child.column());
        }
    }
    if (const ConfigNode* interval = block->child("checkInterval")) {
        if (block->getDurationNs("checkInterval", 1) <= 0) {
            sink.error("WM0704", "'checkInterval' must be a positive duration",
                       interval->line(), interval->column());
        }
    }
    if (const ConfigNode* restarts = block->child("maxRestarts")) {
        if (block->getInt("maxRestarts", 0) < 0) {
            sink.error("WM0704", "'maxRestarts' must be non-negative", restarts->line(),
                       restarts->column());
        }
    }
    for (const char* key : {"restartInitialBackoff", "restartMaxBackoff"}) {
        const ConfigNode* child = block->child(key);
        if (child != nullptr && block->getDurationNs(key, 1) <= 0) {
            sink.error("WM0704", std::string("'") + key + "' must be a positive duration",
                       child->line(), child->column());
        }
    }
    const std::int64_t initial = block->getDurationNs("restartInitialBackoff", 0);
    const std::int64_t max = block->getDurationNs("restartMaxBackoff", 0);
    if (initial > 0 && max > 0 && initial > max) {
        sink.error("WM0704", "'restartInitialBackoff' exceeds 'restartMaxBackoff'",
                   block->line(), block->column());
    }
}

/// Smallest PUBLISH frame the wire can carry: type + frame_seq + counts +
/// one registration + one single-reading message, with a realistically
/// short topic. Anything below this rejects every publish as oversized.
constexpr std::int64_t kMinUsefulFrameBytes = 128;

void checkTransport(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("transport");
    if (block == nullptr) return;
    static const std::set<std::string> known = {
        "listen",      "port",        "maxFrameBytes",
        "heartbeatMs", "maxInflight", "maxConnections"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM1001", "unknown transport knob '" + child.key() + "'",
                       child.line(), child.column());
        }
    }
    if (const ConfigNode* port = block->child("port")) {
        const std::int64_t value = block->getInt("port", 0);
        if (value < 0 || value > 65535) {
            sink.error("WM1001", "'port' must be within [0, 65535] (0 = ephemeral)",
                       port->line(), port->column());
        }
    }
    if (const ConfigNode* frame = block->child("maxFrameBytes")) {
        const std::int64_t value = block->getInt("maxFrameBytes", 1 << 20);
        if (value <= 0) {
            sink.error("WM1001", "'maxFrameBytes' must be positive", frame->line(),
                       frame->column());
        } else if (value < kMinUsefulFrameBytes) {
            sink.warning("WM1003",
                         "'maxFrameBytes' (" + std::to_string(value) +
                             ") is below the " +
                             std::to_string(kMinUsefulFrameBytes) +
                             "-byte floor of a single-reading PUBLISH frame; "
                             "every publish would be rejected oversized",
                         frame->line(), frame->column());
        }
    }
    if (const ConfigNode* heartbeat = block->child("heartbeatMs")) {
        if (block->getDurationNs("heartbeatMs", 1) <= 0) {
            sink.error("WM1001", "'heartbeatMs' must be a positive duration",
                       heartbeat->line(), heartbeat->column());
        }
    }
    for (const char* key : {"maxInflight", "maxConnections"}) {
        const ConfigNode* child = block->child(key);
        if (child != nullptr && block->getInt(key, 1) <= 0) {
            sink.error("WM1001", std::string("'") + key + "' must be positive",
                       child->line(), child->column());
        }
    }
}

void checkRemote(const ConfigNode& root, DiagnosticSink& sink) {
    const ConfigNode* block = root.child("remote");
    if (block == nullptr) return;
    static const std::set<std::string> known = {
        "host",        "port",        "prefix", "maxFrameBytes",
        "heartbeatMs", "maxInflight", "reconnect"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM1002", "unknown remote knob '" + child.key() + "'",
                       child.line(), child.column());
        }
    }
    if (const ConfigNode* port = block->child("port")) {
        const std::int64_t value = block->getInt("port", 0);
        if (value < 0 || value > 65535) {
            sink.error("WM1002",
                       "'port' must be within [0, 65535] (0 = set by "
                       "--remote-port)",
                       port->line(), port->column());
        }
    }
    if (const ConfigNode* frame = block->child("maxFrameBytes")) {
        if (block->getInt("maxFrameBytes", 1) <= 0) {
            sink.error("WM1002", "'maxFrameBytes' must be positive", frame->line(),
                       frame->column());
        }
    }
    if (const ConfigNode* heartbeat = block->child("heartbeatMs")) {
        if (block->getDurationNs("heartbeatMs", 1) <= 0) {
            sink.error("WM1002", "'heartbeatMs' must be a positive duration",
                       heartbeat->line(), heartbeat->column());
        }
    }
    if (const ConfigNode* inflight = block->child("maxInflight")) {
        if (block->getInt("maxInflight", 1) <= 0) {
            sink.error("WM1002", "'maxInflight' must be positive", inflight->line(),
                       inflight->column());
        }
    }
    if (const ConfigNode* reconnect = block->child("reconnect")) {
        static const std::set<std::string> reconnect_known = {"initialMs", "maxMs",
                                                              "multiplier"};
        for (const auto& child : reconnect->children()) {
            if (reconnect_known.count(child.key()) == 0) {
                sink.error("WM1002",
                           "unknown reconnect knob '" + child.key() + "'",
                           child.line(), child.column());
            }
        }
        for (const char* key : {"initialMs", "maxMs"}) {
            const ConfigNode* child = reconnect->child(key);
            if (child != nullptr && reconnect->getDurationNs(key, 1) <= 0) {
                sink.error("WM1002",
                           std::string("'") + key + "' must be a positive duration",
                           child->line(), child->column());
            }
        }
        const std::int64_t initial = reconnect->getDurationNs("initialMs", 0);
        const std::int64_t max = reconnect->getDurationNs("maxMs", 0);
        if (initial > 0 && max > 0 && initial > max) {
            sink.error("WM1002", "'initialMs' exceeds 'maxMs'", reconnect->line(),
                       reconnect->column());
        }
        if (const ConfigNode* multiplier = reconnect->child("multiplier")) {
            if (reconnect->getDouble("multiplier", 2.0) < 1.0) {
                sink.error("WM1002", "'multiplier' must be >= 1",
                           multiplier->line(), multiplier->column());
            }
        }
    }
    // The topic prefix keeps several pusherd processes from colliding on
    // one server; a non-path or wildcard-bearing prefix breaks every topic
    // this process publishes.
    if (const ConfigNode* prefix_node = block->child("prefix")) {
        const std::string prefix = prefix_node->value();
        if (prefix.empty() || prefix.front() != '/' ||
            prefix.find_first_of("+# ") != std::string::npos) {
            sink.warning("WM1004",
                         "remote prefix '" + prefix +
                             "' should start with '/' and contain no "
                             "wildcards or spaces",
                         prefix_node->line(), prefix_node->column());
        }
    }
}

}  // namespace

AnalysisSummary analyzeConfig(const ConfigNode& root, const std::string& source,
                              DiagnosticSink& sink, CapacityReport* capacity) {
    sink.setFile(source);
    AnalysisSummary summary;

    for (const auto& child : root.children()) {
        if (knownTopLevelBlocks().count(child.key()) == 0) {
            sink.info("WM0601", "unknown top-level block '" + child.key() + "' is ignored",
                      child.line(), child.column());
        }
    }

    AnalyzerState state;
    state.model = buildClusterModel(root, sink);
    seedRawSensors(state);
    summary.pusher_hosts = state.model.pushers.size();
    summary.sensors_in_tree = state.topic_owners.size();

    analyzePlugins(root, state, sink, summary);
    checkDeadOutputs(state, sink);
    checkCycles(state, sink);
    checkCollectAgent(root, state, sink);
    checkFaults(root, sink);
    checkResilience(root, sink);
    checkPersistence(root, sink);
    checkSupervisor(root, sink);
    checkTransport(root, sink);
    checkRemote(root, sink);
    scenario::validateScenarios(root, sink);

    // Capacity/cost pass (Layer 5): predictions from the dry-run resolution
    // above, diagnostics against the `capacity { }` budgets.
    if (const ConfigNode* resilience = root.child("resilience")) {
        const std::int64_t buffer_max = resilience->getInt("publishBufferMax", 4096);
        if (buffer_max > 0) {
            state.capacity.publish_buffer_max = static_cast<std::size_t>(buffer_max);
        }
    }
    CapacityReport report = analyzeCapacity(root, state.capacity, sink);
    if (capacity != nullptr) *capacity = std::move(report);
    return summary;
}

AnalysisSummary analyzeConfigFile(const std::string& path, DiagnosticSink& sink,
                                  CapacityReport* capacity) {
    const common::ConfigParseResult parsed = common::parseConfigFile(path);
    sink.setFile(path);
    if (!parsed.ok) {
        if (parsed.error.find("cannot open") != std::string::npos) {
            sink.error("WM0001", parsed.error);
        } else {
            sink.error("WM0002", parsed.error, parsed.error_line, parsed.error_column);
        }
        return {};
    }
    return analyzeConfig(parsed.root, path, sink, capacity);
}

}  // namespace wm::analysis
