#include "analysis/capacity.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "mqtt/broker.h"
#include "sensors/reading.h"
#include "sensors/sensor_cache.h"
#include "storage/shard_map.h"
#include "storage/sharded_storage_backend.h"

namespace wm::analysis {

namespace {

using common::ConfigNode;
using common::kNsPerMs;
using common::kNsPerSec;
using common::TimestampNs;

/// Per-reading compute cost assumed when a plugin declares none: one cache
/// visit + one accumulate per reading (docs/STATIC_ANALYSIS.md, Layer 5).
constexpr double kDefaultNsPerReading = 100.0;
/// Per-unit bookkeeping (unit vector entry, handles, output slots) assumed
/// when a plugin declares no retained state.
constexpr std::size_t kDefaultStateBytesPerUnit = 64;

double secondsOf(TimestampNs ns) {
    return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}

/// Readings retained by one cache at steady state: window / interval + 1.
std::size_t retainedReadings(TimestampNs window_ns, double msgs_per_sec) {
    if (msgs_per_sec <= 0.0) return 1;
    return static_cast<std::size_t>(secondsOf(window_ns) * msgs_per_sec) + 1;
}

/// Bytes of one SensorCache as the runtime would size it: the ring is
/// constructed for one window at the nominal 1s rate (plus slack) and
/// doubles geometrically until it holds the steady-state retention
/// (sensors/sensor_cache.cpp), plus the CacheStore entry overhead.
std::size_t cacheBytes(TimestampNs window_ns, double msgs_per_sec) {
    std::size_t capacity =
        static_cast<std::size_t>(window_ns / kNsPerSec) + 8;  // as constructed
    const std::size_t retained = retainedReadings(window_ns, msgs_per_sec);
    while (capacity < retained + 1) capacity *= 2;
    return sizeof(sensors::SensorCache) + capacity * sizeof(sensors::Reading) +
           sensors::CacheStore::kEntryOverheadEstimateBytes;
}

/// First path segment of a topic ("/rack0/chassis0/node1/power" -> "rack0").
std::string topPrefix(const std::string& topic) {
    std::size_t begin = 0;
    while (begin < topic.size() && topic[begin] == '/') ++begin;
    const std::size_t end = topic.find('/', begin);
    return topic.substr(begin, end == std::string::npos ? std::string::npos
                                                        : end - begin);
}

/// Deterministic float formatting for the byte-stable report.
std::string fmtDouble(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
}

std::string mb(double bytes) {
    return fmtDouble(bytes / (1024.0 * 1024.0));
}

}  // namespace

CapacityBudgets parseCapacityBudgets(const ConfigNode& root, DiagnosticSink& sink) {
    CapacityBudgets budgets;
    const ConfigNode* block = root.child("capacity");
    if (block == nullptr) return budgets;
    budgets.declared = true;

    static const std::set<std::string> known = {
        "maxRssMb",           "maxMsgsPerSec", "maxOperatorLagMs",
        "maxSubtreeRateShare", "maxRestSeriesReadings", "growthHorizon",
        "plugin"};
    for (const auto& child : block->children()) {
        if (known.count(child.key()) == 0) {
            sink.error("WM0908", "unknown capacity knob '" + child.key() + "'",
                       child.line(), child.column(), "capacity");
        }
    }

    const struct {
        const char* key;
        double* target;
    } kPositiveDoubles[] = {
        {"maxRssMb", &budgets.max_rss_mb},
        {"maxMsgsPerSec", &budgets.max_msgs_per_sec},
        {"maxOperatorLagMs", &budgets.max_operator_lag_ms},
    };
    for (const auto& knob : kPositiveDoubles) {
        const ConfigNode* child = block->child(knob.key);
        if (child == nullptr) continue;
        const double value = block->getDouble(knob.key, 0.0);
        if (value <= 0.0) {
            sink.error("WM0908", std::string("'") + knob.key + "' must be positive",
                       child->line(), child->column(), "capacity");
        } else {
            *knob.target = value;
        }
    }
    if (const ConfigNode* share = block->child("maxSubtreeRateShare")) {
        const double value = block->getDouble("maxSubtreeRateShare", 0.5);
        if (value <= 0.0 || value > 1.0) {
            sink.error("WM0908", "'maxSubtreeRateShare' must be within (0, 1]",
                       share->line(), share->column(), "capacity");
        } else {
            budgets.max_subtree_rate_share = value;
        }
    }
    if (const ConfigNode* readings = block->child("maxRestSeriesReadings")) {
        const std::int64_t value = block->getInt("maxRestSeriesReadings", 0);
        if (value <= 0) {
            sink.error("WM0908", "'maxRestSeriesReadings' must be positive",
                       readings->line(), readings->column(), "capacity");
        } else {
            budgets.max_rest_series_readings = value;
        }
    }
    if (const ConfigNode* horizon = block->child("growthHorizon")) {
        const TimestampNs value = block->getDurationNs("growthHorizon", 0);
        if (value <= 0) {
            sink.error("WM0908", "'growthHorizon' must be a positive duration",
                       horizon->line(), horizon->column(), "capacity");
        } else {
            budgets.growth_horizon_ns = value;
        }
    }
    for (const auto* plugin : block->childrenOf("plugin")) {
        for (const auto& child : plugin->children()) {
            if (child.key() != "maxRssMb") {
                sink.error("WM0908",
                           "unknown capacity knob '" + child.key() +
                               "' in plugin override '" + plugin->value() + "'",
                           child.line(), child.column(), "capacity");
            }
        }
        const double value = plugin->getDouble("maxRssMb", 0.0);
        if (value <= 0.0) {
            sink.error("WM0908",
                       "plugin override '" + plugin->value() +
                           "' must declare a positive maxRssMb",
                       plugin->line(), plugin->column(), "capacity");
        } else {
            budgets.plugin_max_rss_mb.emplace_back(plugin->value(), value);
        }
    }
    std::sort(budgets.plugin_max_rss_mb.begin(), budgets.plugin_max_rss_mb.end());
    return budgets;
}

CapacityReport analyzeCapacity(const ConfigNode& root, const CapacityInputs& inputs,
                               DiagnosticSink& sink) {
    CapacityReport report;
    report.budgets = parseCapacityBudgets(root, sink);
    const ConfigNode* capacity_block = root.child("capacity");
    const std::size_t block_line = capacity_block != nullptr ? capacity_block->line() : 0;
    const std::size_t block_column =
        capacity_block != nullptr ? capacity_block->column() : 0;

    // `collectagent { storageTtl <duration> }` bounds storage retention; the
    // knob feeds the growth model, so its sanity check lives here.
    bool storage_ttl_set = inputs.storage_ttl_set;
    TimestampNs storage_ttl_ns = inputs.storage_ttl_ns;
    if (const ConfigNode* agent = root.child("collectagent")) {
        if (const ConfigNode* ttl = agent->child("storageTtl")) {
            const TimestampNs value = agent->getDurationNs("storageTtl", 0);
            if (value <= 0) {
                sink.error("WM0908", "'storageTtl' must be a positive duration",
                           ttl->line(), ttl->column(), "collectagent");
                storage_ttl_set = false;
            } else {
                storage_ttl_set = true;
                storage_ttl_ns = value;
            }
        }
        // `collectagent { shards N }` partitions the ingest/storage planes;
        // wintermuted clamps silently, the analyzer reports the lie (WM0911).
        if (const ConfigNode* shards = agent->child("shards")) {
            const std::int64_t value = agent->getInt("shards", 1);
            const std::int64_t max_shards = static_cast<std::int64_t>(
                storage::ShardedStorageBackend::kMaxShards);
            if (value < 1 || value > max_shards) {
                sink.error("WM0911",
                           "'shards' must be within [1, " +
                               std::to_string(max_shards) + "], got " +
                               std::to_string(value),
                           shards->line(), shards->column(), "collectagent");
            } else {
                report.shards = static_cast<std::size_t>(value);
            }
        }
    }

    report.sampling_sec = secondsOf(inputs.sampling_ns);
    report.cache_window_sec = secondsOf(inputs.cache_window_ns);
    report.nodes = inputs.node_count;
    report.pushers = inputs.pushers.size();
    report.publish_buffer_max = inputs.publish_buffer_max;
    report.agent_queue_limit = mqtt::AsyncBroker::kDefaultMaxQueue;

    // --- Broker ingest rates, aggregated by top-level subtree. -------------
    std::map<std::string, SubtreeRate> subtrees;
    for (const auto& topic : inputs.published_topics) {
        if (topic.from_operator) {
            report.operator_msgs_per_sec += topic.msgs_per_sec;
        } else {
            report.raw_msgs_per_sec += topic.msgs_per_sec;
        }
        SubtreeRate& subtree = subtrees[topPrefix(topic.topic)];
        subtree.prefix = topPrefix(topic.topic);
        ++subtree.topics;
        subtree.msgs_per_sec += topic.msgs_per_sec;
    }
    report.total_msgs_per_sec = report.raw_msgs_per_sec + report.operator_msgs_per_sec;
    for (auto& [prefix, subtree] : subtrees) {
        subtree.share = report.total_msgs_per_sec > 0.0
                            ? subtree.msgs_per_sec / report.total_msgs_per_sec
                            : 0.0;
        report.subtrees.push_back(subtree);
    }

    // --- Per-shard load under the subtree round-robin ownership rule. ------
    // assignSubtreeShards() is the exact function wintermuted deals Collect
    // Agent subtrees with, so this prediction matches the deployment.
    std::map<std::string, std::size_t> subtree_shard;
    if (report.shards > 1) {
        std::vector<std::string> prefixes;
        prefixes.reserve(report.subtrees.size());
        for (const auto& subtree : report.subtrees) prefixes.push_back(subtree.prefix);
        subtree_shard = storage::assignSubtreeShards(std::move(prefixes), report.shards);
        report.shard_loads.resize(report.shards);
        for (std::size_t i = 0; i < report.shards; ++i) {
            report.shard_loads[i].shard = i;
        }
        for (const auto& subtree : report.subtrees) {
            ShardLoad& load = report.shard_loads[subtree_shard[subtree.prefix]];
            ++load.subtrees;
            load.topics += subtree.topics;
            load.msgs_per_sec += subtree.msgs_per_sec;
        }
        for (auto& load : report.shard_loads) {
            load.share = report.total_msgs_per_sec > 0.0
                             ? load.msgs_per_sec / report.total_msgs_per_sec
                             : 0.0;
        }
        for (const auto& topic : inputs.published_topics) {
            const auto owner = subtree_shard.find(topPrefix(topic.topic));
            if (owner == subtree_shard.end()) continue;
            report.shard_loads[owner->second].cache_bytes +=
                cacheBytes(inputs.cache_window_ns, topic.msgs_per_sec);
        }
    }

    // --- Cache memory, sized from the real structs. ------------------------
    const double raw_rate = inputs.sampling_ns > 0
                                ? 1.0 / secondsOf(inputs.sampling_ns)
                                : 0.0;
    for (const auto& pusher : inputs.pushers) {
        report.raw_sensors += pusher.sensors;
        report.pusher_cache_bytes +=
            (pusher.sensors + pusher.op_outputs) *
            cacheBytes(inputs.cache_window_ns, raw_rate);
    }
    std::size_t agent_caches = 0;
    for (const auto& topic : inputs.published_topics) {
        ++agent_caches;
        report.agent_cache_bytes +=
            cacheBytes(inputs.cache_window_ns, topic.msgs_per_sec);
    }

    // --- Operator costs. ---------------------------------------------------
    std::map<std::string, std::size_t> per_plugin;
    for (const auto& op : inputs.op_inputs) {
        OperatorCapacity cost;
        cost.id = op.id;
        cost.plugin = op.plugin;
        cost.units = op.units;
        const bool ticks = op.online && !op.job_scoped && op.interval_ns > 0;
        cost.invocations_per_sec = ticks ? 1.0 / secondsOf(op.interval_ns) : 0.0;
        const TimestampNs window_ns =
            op.window_ns > 0 ? op.window_ns : op.interval_ns;
        cost.readings_per_pass =
            op.input_count * retainedReadings(window_ns, raw_rate);
        const double ns_per_reading =
            op.ns_per_reading > 0.0 ? op.ns_per_reading : kDefaultNsPerReading;
        cost.est_pass_ms =
            static_cast<double>(cost.readings_per_pass) * ns_per_reading / 1e6;
        cost.state_bytes = op.state_bytes > 0
                               ? op.state_bytes
                               : op.units * kDefaultStateBytesPerUnit;
        if (op.host != "pusher" && !op.sink_plugin) {
            // Collect Agent operators cache their outputs locally (they are
            // not broker traffic, which op.publish governs on pushers).
            agent_caches += op.output_count;
            report.agent_cache_bytes +=
                op.output_count *
                cacheBytes(inputs.cache_window_ns, cost.invocations_per_sec);
        }
        if (ticks && op.host == "pusher" && op.publish) {
            cost.output_msgs_per_sec =
                static_cast<double>(op.output_count) * cost.invocations_per_sec;
        }
        report.operator_state_bytes += cost.state_bytes;
        per_plugin[op.plugin] += cost.state_bytes;
        report.op_costs.push_back(std::move(cost));
    }
    for (const auto& [plugin, bytes] : per_plugin) {
        report.per_plugin.push_back({plugin, bytes});
    }

    // --- Storage growth. ---------------------------------------------------
    report.storage_growth_bytes_per_sec =
        report.total_msgs_per_sec * static_cast<double>(sizeof(sensors::Reading));
    report.storage_bounded = storage_ttl_set;
    if (storage_ttl_set) {
        report.storage_steady_bytes = static_cast<std::size_t>(
            report.storage_growth_bytes_per_sec * secondsOf(storage_ttl_ns));
    }
    report.data_rss_bytes = report.pusher_cache_bytes + report.agent_cache_bytes +
                            report.operator_state_bytes + report.storage_steady_bytes;

    // --- Occupancy bounds (worst case: every interval tick-aligned). -------
    std::size_t agent_burst = 0;
    for (const auto& pusher : inputs.pushers) {
        const std::size_t burst = pusher.published + pusher.published_op_outputs;
        report.max_pusher_burst_per_tick =
            std::max(report.max_pusher_burst_per_tick, burst);
        agent_burst += burst;
    }
    report.agent_queue_burst_per_tick = agent_burst;

    // --- REST worst cases. -------------------------------------------------
    const TimestampNs deepest_range =
        storage_ttl_set ? std::max(storage_ttl_ns, inputs.cache_window_ns)
                        : inputs.cache_window_ns;
    report.rest_series_worst_readings = retainedReadings(deepest_range, raw_rate);
    report.rest_sensor_list_entries = agent_caches;

    // =======================================================================
    // Diagnostics. WM0905/WM0909 are structural and always on; the budget
    // family (WM0901-WM0904, WM0906, WM0907) requires a capacity block.
    // =======================================================================

    // WM0905: degenerate intervals.
    if (inputs.sampling_ns > 0 && inputs.sampling_ns < kNsPerMs) {
        const ConfigNode* pusher_block = root.child("pusher");
        const ConfigNode* key =
            pusher_block != nullptr ? pusher_block->child("samplingInterval") : nullptr;
        sink.warning("WM0905",
                     "sub-millisecond samplingInterval (" +
                         std::to_string(inputs.sampling_ns) +
                         "ns); the simulated sensors cannot produce meaningful "
                         "data faster than 1ms and caches grow " +
                         std::to_string(kNsPerSec / std::max<TimestampNs>(
                                            inputs.sampling_ns, 1)) +
                         "x over the nominal sizing",
                     key != nullptr ? key->line() : 0,
                     key != nullptr ? key->column() : 0, "pusher");
    }
    for (const auto& op : inputs.op_inputs) {
        if (op.online && !op.job_scoped && op.input_count > 0 &&
            op.interval_ns > 0 && op.interval_ns < inputs.sampling_ns) {
            sink.warning("WM0905",
                         "operator interval (" + fmtDouble(secondsOf(op.interval_ns)) +
                             "s) is shorter than the input sampling interval (" +
                             fmtDouble(secondsOf(inputs.sampling_ns)) +
                             "s); every extra pass re-reads the same newest reading",
                         op.line, op.column, op.subject);
        }
    }

    // WM0909: a full tick of publishes cannot fit the resilience buffers.
    if (report.max_pusher_burst_per_tick > report.publish_buffer_max) {
        sink.warning("WM0909",
                     "one sampling tick publishes up to " +
                         std::to_string(report.max_pusher_burst_per_tick) +
                         " readings per pusher but publishBufferMax is " +
                         std::to_string(report.publish_buffer_max) +
                         "; a single broker outage tick overflows the buffer",
                     block_line, block_column, "resilience");
    }
    if (report.agent_queue_burst_per_tick > report.agent_queue_limit) {
        sink.warning("WM0909",
                     "one sampling tick enqueues " +
                         std::to_string(report.agent_queue_burst_per_tick) +
                         " messages at the Collect Agent but the broker queue "
                         "holds " +
                         std::to_string(report.agent_queue_limit) +
                         "; publishers will stall on back-pressure",
                     block_line, block_column, "collectagent");
    }

    if (!report.budgets.declared) return report;

    // WM0901: memory budget overruns (global and per-plugin overrides).
    const double rss_mb = static_cast<double>(report.data_rss_bytes) / (1024.0 * 1024.0);
    if (report.budgets.max_rss_mb > 0.0 && rss_mb > report.budgets.max_rss_mb) {
        sink.error("WM0901",
                   "estimated steady-state data memory " + mb(static_cast<double>(
                       report.data_rss_bytes)) +
                       " MB exceeds the maxRssMb budget of " +
                       fmtDouble(report.budgets.max_rss_mb) + " MB",
                   block_line, block_column, "capacity");
    }
    for (const auto& [plugin, budget_mb] : report.budgets.plugin_max_rss_mb) {
        if (per_plugin.count(plugin) == 0) {
            sink.error("WM0908",
                       "capacity override for plugin '" + plugin +
                           "' which configures no operators",
                       block_line, block_column, "capacity");
            continue;
        }
        const double plugin_mb =
            static_cast<double>(per_plugin[plugin]) / (1024.0 * 1024.0);
        if (plugin_mb > budget_mb) {
            sink.error("WM0901",
                       "plugin '" + plugin + "' estimated state " +
                           mb(static_cast<double>(per_plugin[plugin])) +
                           " MB exceeds its maxRssMb override of " +
                           fmtDouble(budget_mb) + " MB",
                       block_line, block_column, "capacity");
        }
    }

    // WM0902: ingest rate budget.
    if (report.budgets.max_msgs_per_sec > 0.0 &&
        report.total_msgs_per_sec > report.budgets.max_msgs_per_sec) {
        sink.error("WM0902",
                   "estimated broker ingest " + fmtDouble(report.total_msgs_per_sec) +
                       " msgs/s exceeds the maxMsgsPerSec budget of " +
                       fmtDouble(report.budgets.max_msgs_per_sec),
                   block_line, block_column, "capacity");
    }

    // WM0903: operator lag (per-pass cost vs interval and budget).
    for (const auto& cost : report.op_costs) {
        if (cost.invocations_per_sec <= 0.0) continue;
        const double interval_ms = 1000.0 / cost.invocations_per_sec;
        if (cost.est_pass_ms > interval_ms) {
            sink.error("WM0903",
                       cost.id + ": estimated pass cost " +
                           fmtDouble(cost.est_pass_ms) +
                           "ms exceeds its own interval (" + fmtDouble(interval_ms) +
                           "ms); the operator cannot keep up",
                       block_line, block_column, "capacity");
        } else if (report.budgets.max_operator_lag_ms > 0.0 &&
                   cost.est_pass_ms > report.budgets.max_operator_lag_ms) {
            sink.error("WM0903",
                       cost.id + ": estimated pass cost " +
                           fmtDouble(cost.est_pass_ms) +
                           "ms exceeds the maxOperatorLagMs budget of " +
                           fmtDouble(report.budgets.max_operator_lag_ms) + "ms",
                       block_line, block_column, "capacity");
        }
    }

    // WM0904: unbounded growth against a memory budget.
    if (report.budgets.max_rss_mb > 0.0 && !storage_ttl_set &&
        report.storage_growth_bytes_per_sec > 0.0) {
        const double budget_bytes = report.budgets.max_rss_mb * 1024.0 * 1024.0;
        const double headroom =
            std::max(0.0, budget_bytes - static_cast<double>(report.data_rss_bytes));
        const double exhausted_sec = headroom / report.storage_growth_bytes_per_sec;
        sink.warning("WM0904",
                     "storage retention is unbounded (no collectagent storageTtl); "
                     "at " +
                         fmtDouble(report.storage_growth_bytes_per_sec) +
                         " B/s the maxRssMb budget of " +
                         fmtDouble(report.budgets.max_rss_mb) +
                         " MB is exhausted after ~" + fmtDouble(exhausted_sec) +
                         "s",
                     block_line, block_column, "capacity");
    }

    // WM0906: fan-in hot spots (shard-imbalance smell, ROADMAP item 1).
    if (report.subtrees.size() > 1) {
        for (const auto& subtree : report.subtrees) {
            if (subtree.share > report.budgets.max_subtree_rate_share) {
                sink.warning(
                    "WM0906",
                    "subtree '" + subtree.prefix + "' carries " +
                        fmtDouble(subtree.share * 100.0) +
                        "% of the broker ingest rate (threshold " +
                        fmtDouble(report.budgets.max_subtree_rate_share * 100.0) +
                        "%); one future shard would absorb most of the load",
                    block_line, block_column, "capacity");
            }
        }
    }

    // WM0910: shard imbalance. Even when every subtree sits under the
    // fan-in threshold (WM0906 silent), the round-robin deal can stack
    // several hot subtrees onto one shard; the hottest shard's share is
    // held to the same budget a single subtree is.
    for (const auto& load : report.shard_loads) {
        if (load.share > report.budgets.max_subtree_rate_share) {
            sink.warning(
                "WM0910",
                "shard " + std::to_string(load.shard) + " would carry " +
                    fmtDouble(load.share * 100.0) +
                    "% of the broker ingest rate (" +
                    std::to_string(load.subtrees) + " subtrees; threshold " +
                    fmtDouble(report.budgets.max_subtree_rate_share * 100.0) +
                    "%); rebalance subtrees or raise the shard count",
                block_line, block_column, "capacity");
        }
    }

    // WM0907: REST worst-case response cardinality.
    if (report.budgets.max_rest_series_readings > 0 &&
        static_cast<std::int64_t>(report.rest_series_worst_readings) >
            report.budgets.max_rest_series_readings) {
        sink.error("WM0907",
                   "worst-case /sensors/series response holds " +
                       std::to_string(report.rest_series_worst_readings) +
                       " readings, over the maxRestSeriesReadings budget of " +
                       std::to_string(report.budgets.max_rest_series_readings),
                   block_line, block_column, "capacity");
    }
    return report;
}

std::string renderCapacityJson(const CapacityReport& report,
                               const std::string& config_path) {
    std::ostringstream out;
    out << "{\"schema\":\"wintermute-capacity-v1\"";
    out << ",\"config\":\"" << config_path << "\"";
    out << ",\"topology\":{\"nodes\":" << report.nodes
        << ",\"pushers\":" << report.pushers
        << ",\"rawSensors\":" << report.raw_sensors
        << ",\"samplingSec\":" << fmtDouble(report.sampling_sec)
        << ",\"cacheWindowSec\":" << fmtDouble(report.cache_window_sec) << "}";
    out << ",\"rates\":{\"rawMsgsPerSec\":" << fmtDouble(report.raw_msgs_per_sec)
        << ",\"operatorMsgsPerSec\":" << fmtDouble(report.operator_msgs_per_sec)
        << ",\"totalMsgsPerSec\":" << fmtDouble(report.total_msgs_per_sec)
        << ",\"subtrees\":[";
    for (std::size_t i = 0; i < report.subtrees.size(); ++i) {
        const SubtreeRate& subtree = report.subtrees[i];
        if (i > 0) out << ',';
        out << "{\"prefix\":\"" << subtree.prefix << "\",\"topics\":" << subtree.topics
            << ",\"msgsPerSec\":" << fmtDouble(subtree.msgs_per_sec)
            << ",\"share\":" << fmtDouble(subtree.share) << "}";
    }
    out << "]}";
    out << ",\"sharding\":{\"shards\":" << report.shards << ",\"shardLoads\":[";
    for (std::size_t i = 0; i < report.shard_loads.size(); ++i) {
        const ShardLoad& load = report.shard_loads[i];
        if (i > 0) out << ',';
        out << "{\"shard\":" << load.shard << ",\"subtrees\":" << load.subtrees
            << ",\"topics\":" << load.topics
            << ",\"msgsPerSec\":" << fmtDouble(load.msgs_per_sec)
            << ",\"share\":" << fmtDouble(load.share)
            << ",\"cacheBytes\":" << load.cache_bytes << "}";
    }
    out << "]}";
    out << ",\"memory\":{\"pusherCacheBytes\":" << report.pusher_cache_bytes
        << ",\"agentCacheBytes\":" << report.agent_cache_bytes
        << ",\"operatorStateBytes\":" << report.operator_state_bytes
        << ",\"storageBounded\":" << (report.storage_bounded ? "true" : "false")
        << ",\"storageSteadyBytes\":" << report.storage_steady_bytes
        << ",\"storageGrowthBytesPerSec\":"
        << fmtDouble(report.storage_growth_bytes_per_sec)
        << ",\"dataRssBytes\":" << report.data_rss_bytes << ",\"perPlugin\":[";
    for (std::size_t i = 0; i < report.per_plugin.size(); ++i) {
        if (i > 0) out << ',';
        out << "{\"plugin\":\"" << report.per_plugin[i].plugin
            << "\",\"stateBytes\":" << report.per_plugin[i].bytes << "}";
    }
    out << "]}";
    out << ",\"operators\":[";
    for (std::size_t i = 0; i < report.op_costs.size(); ++i) {
        const OperatorCapacity& cost = report.op_costs[i];
        if (i > 0) out << ',';
        out << "{\"id\":\"" << cost.id << "\",\"plugin\":\"" << cost.plugin
            << "\",\"units\":" << cost.units
            << ",\"invocationsPerSec\":" << fmtDouble(cost.invocations_per_sec)
            << ",\"readingsPerPass\":" << cost.readings_per_pass
            << ",\"estPassMs\":" << fmtDouble(cost.est_pass_ms)
            << ",\"outputMsgsPerSec\":" << fmtDouble(cost.output_msgs_per_sec)
            << ",\"stateBytes\":" << cost.state_bytes << "}";
    }
    out << "]";
    out << ",\"occupancy\":{\"publishBufferMax\":" << report.publish_buffer_max
        << ",\"maxPusherBurstPerTick\":" << report.max_pusher_burst_per_tick
        << ",\"agentQueueLimit\":" << report.agent_queue_limit
        << ",\"agentQueueBurstPerTick\":" << report.agent_queue_burst_per_tick << "}";
    out << ",\"rest\":{\"seriesWorstCaseReadings\":" << report.rest_series_worst_readings
        << ",\"sensorListEntries\":" << report.rest_sensor_list_entries << "}";
    out << ",\"budgets\":{\"declared\":" << (report.budgets.declared ? "true" : "false")
        << ",\"maxRssMb\":" << fmtDouble(report.budgets.max_rss_mb)
        << ",\"maxMsgsPerSec\":" << fmtDouble(report.budgets.max_msgs_per_sec)
        << ",\"maxOperatorLagMs\":" << fmtDouble(report.budgets.max_operator_lag_ms)
        << ",\"maxSubtreeRateShare\":"
        << fmtDouble(report.budgets.max_subtree_rate_share)
        << ",\"maxRestSeriesReadings\":" << report.budgets.max_rest_series_readings
        << ",\"growthHorizonSec\":"
        << fmtDouble(static_cast<double>(report.budgets.growth_horizon_ns) /
                     static_cast<double>(kNsPerSec))
        << ",\"perPlugin\":[";
    for (std::size_t i = 0; i < report.budgets.plugin_max_rss_mb.size(); ++i) {
        if (i > 0) out << ',';
        out << "{\"plugin\":\"" << report.budgets.plugin_max_rss_mb[i].first
            << "\",\"maxRssMb\":"
            << fmtDouble(report.budgets.plugin_max_rss_mb[i].second) << "}";
    }
    out << "]}}\n";
    return out.str();
}

}  // namespace wm::analysis
