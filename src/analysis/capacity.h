#pragma once

// wm-cost: static capacity and cost-model pass of the wm-check analyzer
// (docs/STATIC_ANALYSIS.md, "Layer 5: capacity analysis"). From the dry-run
// topology and sensor-tree resolution alone — zero threads, nothing
// instantiated — it predicts what the configured deployment would cost at
// runtime: per-subtree message rates, cache/retention memory sized from the
// actual SensorCache/Reading structs, operator per-pass input cardinality
// and invocation rate, publish-buffer and agent-queue occupancy bounds, and
// the worst-case REST response cardinality. Budgets declared in a
// `capacity { }` block turn predictions into diagnostics (WM0901–WM0909);
// without the block the pass still computes the report and flags degenerate
// intervals (WM0905).
//
// The model is a *tested* predictor, not a guess: test_capacity.cpp runs the
// real in-process pipeline on the shipped mini-cluster config and asserts
// measured ingest rate and cache bytes land within 15% of this prediction.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/config.h"
#include "common/time_utils.h"

namespace wm::analysis {

/// Budgets declared by the `capacity { }` block. A zero value means "not
/// budgeted" (the corresponding diagnostic never fires).
struct CapacityBudgets {
    bool declared = false;
    double max_rss_mb = 0.0;
    double max_msgs_per_sec = 0.0;
    double max_operator_lag_ms = 0.0;
    /// Fan-in threshold: share of the total broker ingest rate one
    /// top-level topic subtree may carry (default 0.5; WM0906).
    double max_subtree_rate_share = 0.5;
    std::int64_t max_rest_series_readings = 0;
    /// Horizon over which unbounded storage growth is projected (WM0904).
    common::TimestampNs growth_horizon_ns = 24 * 3600 * common::kNsPerSec;
    /// Per-plugin memory overrides: `plugin <name> { maxRssMb N }`.
    std::vector<std::pair<std::string, double>> plugin_max_rss_mb;
};

/// Broker ingest rate of one top-level topic subtree ("rack0", "facility").
struct SubtreeRate {
    std::string prefix;
    std::size_t topics = 0;
    double msgs_per_sec = 0.0;
    double share = 0.0;  // of the total broker ingest rate
};

/// Predicted load of one ingest/storage shard under the subtree round-robin
/// ownership rule (`collectagent { shards N }`; storage::assignSubtreeShards
/// is the same function wintermuted deals agents' subtrees with, so this
/// prediction matches the deployment exactly).
struct ShardLoad {
    std::size_t shard = 0;
    std::size_t subtrees = 0;
    std::size_t topics = 0;
    double msgs_per_sec = 0.0;
    double share = 0.0;  // of the total broker ingest rate
    /// Agent-side cache memory for the raw topics this shard owns.
    std::size_t cache_bytes = 0;
};

/// Cost prediction for one analyzed operator block (pusher-host blocks
/// aggregated over all pushers, as in the dry run).
struct OperatorCapacity {
    std::string id;       // "plugin/name@host"
    std::string plugin;
    std::size_t units = 0;
    double invocations_per_sec = 0.0;  // 0 for ondemand/job-scoped blocks
    /// Readings visited per pass: input topics x (window / sampling + 1).
    std::size_t readings_per_pass = 0;
    double est_pass_ms = 0.0;
    double output_msgs_per_sec = 0.0;  // broker traffic (published outputs)
    std::size_t state_bytes = 0;       // retained model/training state
};

/// Memory attributed to one plugin: operator state + output caches.
struct PluginMemory {
    std::string plugin;
    std::size_t bytes = 0;
};

/// The full static prediction, rendered byte-stable as
/// `wintermute-capacity-v1` JSON by renderCapacityJson().
struct CapacityReport {
    // Topology echo.
    std::size_t nodes = 0;
    std::size_t pushers = 0;
    std::size_t raw_sensors = 0;
    double sampling_sec = 1.0;
    double cache_window_sec = 180.0;

    // Broker ingest rates (messages crossing pusher -> agent).
    double raw_msgs_per_sec = 0.0;
    double operator_msgs_per_sec = 0.0;
    double total_msgs_per_sec = 0.0;
    std::vector<SubtreeRate> subtrees;

    // Sharding plan (`collectagent { shards N }`, default 1 = unsharded).
    std::size_t shards = 1;
    std::vector<ShardLoad> shard_loads;  // empty when shards == 1

    // Memory model (bytes; docs/STATIC_ANALYSIS.md documents the formulas).
    std::size_t pusher_cache_bytes = 0;
    std::size_t agent_cache_bytes = 0;
    std::size_t operator_state_bytes = 0;
    bool storage_bounded = false;
    std::size_t storage_steady_bytes = 0;  // rate x ttl when bounded
    double storage_growth_bytes_per_sec = 0.0;
    std::size_t data_rss_bytes = 0;  // caches + operator state + storage
    std::vector<PluginMemory> per_plugin;

    std::vector<OperatorCapacity> op_costs;

    // Occupancy bounds.
    std::size_t publish_buffer_max = 4096;
    std::size_t max_pusher_burst_per_tick = 0;
    std::size_t agent_queue_limit = 65536;
    std::size_t agent_queue_burst_per_tick = 0;

    // REST worst cases.
    std::size_t rest_series_worst_readings = 0;
    std::size_t rest_sensor_list_entries = 0;

    CapacityBudgets budgets;
};

/// What the analyzer's dry run feeds the capacity pass.
struct CapacityInputs {
    common::TimestampNs sampling_ns = common::kNsPerSec;
    common::TimestampNs cache_window_ns = 180 * common::kNsPerSec;
    std::size_t node_count = 0;

    struct PusherInfo {
        std::string name;             // node path or "/facility"
        std::size_t sensors = 0;      // raw sensors cached on this pusher
        std::size_t published = 0;    // raw sensors published over MQTT
        /// Pusher-host operator output topics cached locally / published.
        std::size_t op_outputs = 0;
        std::size_t published_op_outputs = 0;
    };
    std::vector<PusherInfo> pushers;

    /// Every topic published over MQTT (raw sensors + pusher-host operator
    /// outputs with publish enabled) with its message rate.
    struct TopicRate {
        std::string topic;
        double msgs_per_sec = 0.0;
        bool from_operator = false;
    };
    std::vector<TopicRate> published_topics;

    struct OperatorInput {
        std::string id;
        std::string subject;
        std::string plugin;
        std::string host;  // "pusher" or "collectagent"
        std::size_t line = 0;
        std::size_t column = 0;
        bool online = true;
        bool publish = true;
        bool sink_plugin = false;
        bool job_scoped = false;
        common::TimestampNs interval_ns = 0;
        common::TimestampNs window_ns = 0;
        std::size_t units = 0;
        std::size_t input_count = 0;   // resolved input topics
        std::size_t output_count = 0;  // resolved output topics
        std::size_t state_bytes = 0;   // plugin cost hook (0 = default)
        double ns_per_reading = 0.0;   // plugin cost hook (0 = default)
    };
    std::vector<OperatorInput> op_inputs;

    std::size_t publish_buffer_max = 4096;  // resilience knob
    bool storage_ttl_set = false;
    common::TimestampNs storage_ttl_ns = 0;  // collectagent { storageTtl }
};

/// Parses the `capacity { }` block (WM0908 for unknown/invalid knobs).
CapacityBudgets parseCapacityBudgets(const common::ConfigNode& root,
                                     DiagnosticSink& sink);

/// Runs the capacity pass: computes the report and emits WM0901–WM0909
/// against the declared budgets. Always safe to call; without a `capacity`
/// block only the degenerate-interval checks (WM0905) can fire.
CapacityReport analyzeCapacity(const common::ConfigNode& root,
                               const CapacityInputs& inputs, DiagnosticSink& sink);

/// Byte-stable `wintermute-capacity-v1` JSON (sorted keys, fixed float
/// formatting, trailing newline) — the planning artifact uploaded by CI.
std::string renderCapacityJson(const CapacityReport& report,
                               const std::string& config_path);

}  // namespace wm::analysis
