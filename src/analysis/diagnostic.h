#pragma once

// Diagnostics for the wm-check static configuration analyzer.
//
// A Diagnostic is one finding of the dry-run pipeline: a stable WM#### code,
// a severity, a human-readable message, and (when known) the source location
// of the configuration node it refers to. Codes are append-only and
// documented in docs/CONFIGURATION.md; tools/lint.py fails the build when a
// code is emitted but missing from that table.
//
// The DiagnosticSink collects findings from the analyzer core and from the
// per-plugin validate() hooks (plugins/configurator_common.h); renderers
// turn the collected list into the human text format
// (`file:line:col: error[WM0103]: message`) or a machine-readable JSON
// document for CI consumption.

#include <cstddef>
#include <string>
#include <vector>

namespace wm::analysis {

enum class Severity { kError, kWarning, kInfo };

/// "error" / "warning" / "info".
const char* severityName(Severity severity);

/// Position of a finding inside a configuration file. Line/column are
/// 1-based; 0 means unknown (e.g. a file-level finding).
struct SourceLocation {
    std::string file;
    std::size_t line = 0;
    std::size_t column = 0;
};

struct Diagnostic {
    std::string code;     // stable "WM####" identifier
    Severity severity = Severity::kError;
    std::string message;  // one line, no trailing period needed
    SourceLocation location;
    /// What the finding is about — an operator ("plugin/name"), a topic, a
    /// config block. Empty when the message says it all.
    std::string subject;
};

/// Collector for analyzer findings. Also carries the "current file" context
/// so emitters only supply line/column.
class DiagnosticSink {
  public:
    /// Sets the file recorded in subsequently added diagnostics that do not
    /// name one themselves.
    void setFile(std::string file) { file_ = std::move(file); }
    const std::string& file() const { return file_; }

    void add(Diagnostic diagnostic);

    /// Convenience emitters; `line`/`column` may be 0 when unknown.
    void error(const std::string& code, const std::string& message,
               std::size_t line = 0, std::size_t column = 0,
               const std::string& subject = "");
    void warning(const std::string& code, const std::string& message,
                 std::size_t line = 0, std::size_t column = 0,
                 const std::string& subject = "");
    void info(const std::string& code, const std::string& message,
              std::size_t line = 0, std::size_t column = 0,
              const std::string& subject = "");

    const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t infoCount() const { return infos_; }
    bool hasErrors() const { return errors_ > 0; }

    /// True if any collected diagnostic carries `code`.
    bool hasCode(const std::string& code) const;

    /// Sorted unique list of collected codes (golden-test helper).
    std::vector<std::string> codes() const;

  private:
    std::string file_;
    std::vector<Diagnostic> diagnostics_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t infos_ = 0;
};

/// Human-readable rendering, one line per diagnostic plus a summary line:
///   configs/x.cfg:12:5: error[WM0103] aggregator/avg: ...
///   2 errors, 1 warning, 0 infos
std::string renderText(const DiagnosticSink& sink);

/// Machine-readable rendering:
///   {"diagnostics":[{"code":...,"severity":...,"message":...,"file":...,
///     "line":N,"column":N,"subject":...}, ...],
///    "summary":{"errors":N,"warnings":N,"infos":N}}
std::string renderJson(const DiagnosticSink& sink);

}  // namespace wm::analysis
