#include "analysis/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace wm::analysis {

const char* severityName(Severity severity) {
    switch (severity) {
        case Severity::kError: return "error";
        case Severity::kWarning: return "warning";
        case Severity::kInfo: return "info";
    }
    return "error";
}

void DiagnosticSink::add(Diagnostic diagnostic) {
    if (diagnostic.location.file.empty()) diagnostic.location.file = file_;
    switch (diagnostic.severity) {
        case Severity::kError: ++errors_; break;
        case Severity::kWarning: ++warnings_; break;
        case Severity::kInfo: ++infos_; break;
    }
    diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::error(const std::string& code, const std::string& message,
                           std::size_t line, std::size_t column,
                           const std::string& subject) {
    add({code, Severity::kError, message, {"", line, column}, subject});
}

void DiagnosticSink::warning(const std::string& code, const std::string& message,
                             std::size_t line, std::size_t column,
                             const std::string& subject) {
    add({code, Severity::kWarning, message, {"", line, column}, subject});
}

void DiagnosticSink::info(const std::string& code, const std::string& message,
                          std::size_t line, std::size_t column,
                          const std::string& subject) {
    add({code, Severity::kInfo, message, {"", line, column}, subject});
}

bool DiagnosticSink::hasCode(const std::string& code) const {
    return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                       [&code](const Diagnostic& d) { return d.code == code; });
}

std::vector<std::string> DiagnosticSink::codes() const {
    std::set<std::string> unique;
    for (const auto& diagnostic : diagnostics_) unique.insert(diagnostic.code);
    return {unique.begin(), unique.end()};
}

std::string renderText(const DiagnosticSink& sink) {
    std::ostringstream out;
    for (const auto& d : sink.diagnostics()) {
        std::ostringstream prefix;
        if (!d.location.file.empty()) prefix << d.location.file << ':';
        if (d.location.line > 0) {
            prefix << d.location.line << ':';
            if (d.location.column > 0) prefix << d.location.column << ':';
        }
        const std::string prefix_text = prefix.str();
        if (!prefix_text.empty()) out << prefix_text << ' ';
        out << severityName(d.severity) << '[' << d.code << "] ";
        if (!d.subject.empty()) out << d.subject << ": ";
        out << d.message << '\n';
    }
    out << sink.errorCount() << (sink.errorCount() == 1 ? " error, " : " errors, ")
        << sink.warningCount() << (sink.warningCount() == 1 ? " warning, " : " warnings, ")
        << sink.infoCount() << (sink.infoCount() == 1 ? " info" : " infos") << '\n';
    return out.str();
}

namespace {

std::string jsonEscape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string renderJson(const DiagnosticSink& sink) {
    std::ostringstream out;
    out << "{\"diagnostics\":[";
    bool first = true;
    for (const auto& d : sink.diagnostics()) {
        if (!first) out << ',';
        first = false;
        out << "{\"code\":\"" << jsonEscape(d.code) << "\",\"severity\":\""
            << severityName(d.severity) << "\",\"message\":\"" << jsonEscape(d.message)
            << "\",\"file\":\"" << jsonEscape(d.location.file)
            << "\",\"line\":" << d.location.line << ",\"column\":" << d.location.column
            << ",\"subject\":\"" << jsonEscape(d.subject) << "\"}";
    }
    out << "],\"summary\":{\"errors\":" << sink.errorCount()
        << ",\"warnings\":" << sink.warningCount() << ",\"infos\":" << sink.infoCount()
        << "}}";
    return out.str();
}

}  // namespace wm::analysis
