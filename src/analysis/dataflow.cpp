#include "analysis/dataflow.h"

#include <algorithm>
#include <set>

namespace wm::analysis {

std::vector<std::vector<std::size_t>> DataflowGraph::buildEdges() const {
    std::vector<std::set<std::string>> out_topics(nodes_.size());
    std::vector<std::set<std::string>> out_names(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        out_topics[i] = {nodes_[i].output_topics.begin(), nodes_[i].output_topics.end()};
        out_names[i] = {nodes_[i].output_names.begin(), nodes_[i].output_names.end()};
    }
    std::vector<std::vector<std::size_t>> adjacency(nodes_.size());
    for (std::size_t producer = 0; producer < nodes_.size(); ++producer) {
        for (std::size_t consumer = 0; consumer < nodes_.size(); ++consumer) {
            const DataflowNode& node = nodes_[consumer];
            const bool feeds =
                std::any_of(node.input_topics.begin(), node.input_topics.end(),
                            [&](const std::string& topic) {
                                return out_topics[producer].count(topic) > 0;
                            }) ||
                std::any_of(node.input_names.begin(), node.input_names.end(),
                            [&](const std::string& name) {
                                return out_names[producer].count(name) > 0;
                            });
            if (feeds) adjacency[producer].push_back(consumer);
        }
    }
    return adjacency;
}

namespace {

/// Tarjan's strongly-connected-components algorithm (recursive; operator
/// graphs are small).
struct Tarjan {
    const std::vector<std::vector<std::size_t>>& adjacency;
    std::vector<int> index;
    std::vector<int> lowlink;
    std::vector<bool> on_stack;
    std::vector<std::size_t> stack;
    int next_index = 0;
    std::vector<std::vector<std::size_t>> components;

    explicit Tarjan(const std::vector<std::vector<std::size_t>>& adj)
        : adjacency(adj),
          index(adj.size(), -1),
          lowlink(adj.size(), 0),
          on_stack(adj.size(), false) {}

    void run() {
        for (std::size_t v = 0; v < adjacency.size(); ++v) {
            if (index[v] < 0) strongConnect(v);
        }
    }

    void strongConnect(std::size_t v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
        for (std::size_t w : adjacency[v]) {
            if (index[w] < 0) {
                strongConnect(w);
                lowlink[v] = std::min(lowlink[v], lowlink[w]);
            } else if (on_stack[w]) {
                lowlink[v] = std::min(lowlink[v], index[w]);
            }
        }
        if (lowlink[v] == index[v]) {
            std::vector<std::size_t> component;
            std::size_t w;
            do {
                w = stack.back();
                stack.pop_back();
                on_stack[w] = false;
                component.push_back(w);
            } while (w != v);
            std::reverse(component.begin(), component.end());
            components.push_back(std::move(component));
        }
    }
};

}  // namespace

std::vector<std::vector<std::string>> DataflowGraph::cycles() const {
    const std::vector<std::vector<std::size_t>> adjacency = buildEdges();
    Tarjan tarjan(adjacency);
    tarjan.run();
    std::vector<std::vector<std::string>> out;
    for (const auto& component : tarjan.components) {
        const bool self_loop =
            component.size() == 1 &&
            std::find(adjacency[component[0]].begin(), adjacency[component[0]].end(),
                      component[0]) != adjacency[component[0]].end();
        if (component.size() < 2 && !self_loop) continue;
        std::vector<std::string> ids;
        ids.reserve(component.size());
        for (std::size_t v : component) ids.push_back(nodes_[v].id);
        out.push_back(std::move(ids));
    }
    return out;
}

}  // namespace wm::analysis
