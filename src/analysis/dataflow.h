#pragma once

// Operator dependency graph for the wm-check analyzer (WM0203). One node per
// configured operator block; pusher-hosted operators are merged into a single
// node whose topics are the union over all pushers, mirroring the fact that
// the MQTT tree joins them into one namespace.
//
// Edges are the union of two relations:
//  * resolved-topic edges — an input topic of B equals an output topic of A;
//  * name-level edges — an input pattern leaf name of B equals an output
//    pattern leaf name of A. This heuristic is load-bearing: configuration
//    blocks are resolved in one pass, so a strict operator cycle always
//    contains at least one link whose input cannot resolve yet (the upstream
//    output does not exist when the downstream operator is configured) and
//    would be invisible to resolved topics alone.

#include <cstddef>
#include <string>
#include <vector>

namespace wm::analysis {

struct DataflowNode {
    /// Unique id, "plugin/name@host".
    std::string id;
    std::vector<std::string> input_topics;
    std::vector<std::string> output_topics;
    /// Pattern leaf names (see plugins::patternLeafNames).
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
};

class DataflowGraph {
  public:
    void addNode(DataflowNode node) { nodes_.push_back(std::move(node)); }
    const std::vector<DataflowNode>& nodes() const { return nodes_; }

    /// Dependency cycles: strongly connected components with more than one
    /// node, plus single nodes that feed themselves. Each cycle lists its
    /// member ids in discovery order.
    std::vector<std::vector<std::string>> cycles() const;

  private:
    /// Adjacency producer -> consumer, including self-edges.
    std::vector<std::vector<std::size_t>> buildEdges() const;

    std::vector<DataflowNode> nodes_;
};

}  // namespace wm::analysis
