#pragma once

// wm-check: static configuration and dataflow analyzer for the
// operator/unit/topic graph (docs/CONFIGURATION.md, "Static configuration
// checking"). The analyzer performs a dry run of the daemon's configuration
// pipeline — topology, simulated sensor inventory, per-pusher and Collect
// Agent sensor trees, unit resolution for every configured operator —
// WITHOUT starting any thread, opening any socket or file, or arming any
// fault point. It then checks the resulting dataflow graph for the classes
// of misconfiguration that are silent or fatal only at runtime: patterns
// matching nothing, double-published topics, operator dependency cycles,
// infeasible windows, dead outputs, invalid fault/resilience specs.

#include <cstddef>
#include <string>

#include "analysis/diagnostic.h"
#include "common/config.h"

namespace wm::analysis {

/// What the dry run would have instantiated; reported by wm_check --verbose
/// style output and asserted in tests.
struct AnalysisSummary {
    /// Pushers the config would start (per-node pushers + facility pusher).
    std::size_t pusher_hosts = 0;
    /// Raw simulated sensors over all pushers.
    std::size_t sensors_in_tree = 0;
    /// Operator blocks analyzed (excluding template_operator blocks).
    std::size_t operators_analyzed = 0;
    /// Units resolved over all operators and hosts.
    std::size_t units_resolved = 0;
};

struct CapacityReport;

/// Analyzes a parsed configuration. `source` is recorded as the file of all
/// findings (may be empty for in-memory configs). When `capacity` is
/// non-null it receives the capacity/cost prediction (analysis/capacity.h);
/// the capacity diagnostics (WM09xx) are emitted either way.
AnalysisSummary analyzeConfig(const common::ConfigNode& root, const std::string& source,
                              DiagnosticSink& sink, CapacityReport* capacity = nullptr);

/// Parses `path` and analyzes it. Unreadable files yield WM0001, syntax
/// errors WM0002; both leave the summary empty.
AnalysisSummary analyzeConfigFile(const std::string& path, DiagnosticSink& sink,
                                  CapacityReport* capacity = nullptr);

}  // namespace wm::analysis
