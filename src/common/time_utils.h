#pragma once

// Time representation shared by the whole stack. DCDB identifies every sensor
// reading by a nanosecond-resolution integer timestamp; we follow that scheme.
// A process-wide ClockSource indirection lets the simulator and the tests run
// the full stack against virtual time, deterministically and faster than
// real time, while production entities use the system clock.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace wm::common {

/// Nanoseconds since the UNIX epoch (or since simulation start in virtual mode).
using TimestampNs = std::int64_t;

constexpr TimestampNs kNsPerUs = 1000;
constexpr TimestampNs kNsPerMs = 1000 * kNsPerUs;
constexpr TimestampNs kNsPerSec = 1000 * kNsPerMs;
constexpr TimestampNs kNsPerMin = 60 * kNsPerSec;
constexpr TimestampNs kNsPerHour = 60 * kNsPerMin;
constexpr TimestampNs kNsPerDay = 24 * kNsPerHour;

/// Abstract clock used by every time-dependent component.
class ClockSource {
  public:
    virtual ~ClockSource() = default;
    virtual TimestampNs now() const = 0;
};

/// Clock backed by std::chrono::system_clock.
class SystemClock final : public ClockSource {
  public:
    TimestampNs now() const override;
};

/// Manually-advanced clock for simulation and deterministic tests.
class VirtualClock final : public ClockSource {
  public:
    explicit VirtualClock(TimestampNs start = 0) : now_(start) {}
    TimestampNs now() const override { return now_; }
    void advance(TimestampNs delta) { now_ += delta; }
    void set(TimestampNs t) { now_ = t; }

  private:
    TimestampNs now_;
};

/// Returns the process-global clock (SystemClock unless overridden).
ClockSource& globalClock();

/// Overrides the global clock; pass nullptr to restore the system clock.
/// The caller retains ownership of `clock` and must outlive its use.
void setGlobalClock(ClockSource* clock);

/// Shorthand for globalClock().now().
TimestampNs nowNs();

/// Parses human-friendly durations such as "250ms", "1s", "2m", "12h", "14d",
/// "1500" (plain numbers are milliseconds, matching DCDB config conventions).
/// Returns std::nullopt on malformed input or negative values.
std::optional<TimestampNs> parseDuration(const std::string& text);

/// Formats a duration compactly ("1.5s", "250ms", "2h"...). For diagnostics.
std::string formatDuration(TimestampNs ns);

}  // namespace wm::common
