#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

namespace wm::common {

const char* logLevelName(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarning: return "WARNING";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kFatal: return "FATAL";
        case LogLevel::kOff: return "OFF";
    }
    return "UNKNOWN";
}

LogLevel logLevelFromName(const std::string& name) {
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    if (upper == "TRACE") return LogLevel::kTrace;
    if (upper == "DEBUG") return LogLevel::kDebug;
    if (upper == "INFO") return LogLevel::kInfo;
    if (upper == "WARNING" || upper == "WARN") return LogLevel::kWarning;
    if (upper == "ERROR") return LogLevel::kError;
    if (upper == "FATAL") return LogLevel::kFatal;
    if (upper == "OFF") return LogLevel::kOff;
    return LogLevel::kInfo;
}

Logger& Logger::instance() {
    static Logger logger;
    return logger;
}

void Logger::setLevel(LogLevel level) {
    MutexLock lock(mutex_);
    level_ = level;
}

LogLevel Logger::level() const {
    MutexLock lock(mutex_);
    return level_;
}

bool Logger::setLogFile(const std::string& path) {
    MutexLock lock(mutex_);
    if (file_.is_open()) file_.close();
    if (path.empty()) return true;
    file_.open(path, std::ios::app);
    return file_.is_open();
}

void Logger::setStderrEnabled(bool enabled) {
    MutexLock lock(mutex_);
    stderr_enabled_ = enabled;
}

void Logger::log(LogLevel level, const std::string& module, const std::string& message) {
    MutexLock lock(mutex_);
    if (level < level_) return;
    const auto now = std::chrono::system_clock::now();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(now.time_since_epoch()).count();
    char line[256];
    std::snprintf(line, sizeof(line), "[%lld.%06lld] %-7s [%s] ",
                  static_cast<long long>(us / 1000000), static_cast<long long>(us % 1000000),
                  logLevelName(level), module.c_str());
    if (stderr_enabled_) {
        std::fputs(line, stderr);
        std::fputs(message.c_str(), stderr);
        std::fputc('\n', stderr);
    }
    if (file_.is_open()) {
        file_ << line << message << '\n';
        file_.flush();
    }
    ++emitted_;
}

std::uint64_t Logger::emittedCount() const {
    MutexLock lock(mutex_);
    return emitted_;
}

}  // namespace wm::common
