#pragma once

// Small string helpers used across the stack, with a focus on MQTT-style
// topic paths ("/rack4/chassis2/server3/power") which identify every sensor
// in DCDB and drive the Wintermute Unit System's tree representation.

#include <string>
#include <string_view>
#include <vector>

namespace wm::common {

/// Splits `text` on `sep`, dropping empty segments when `keep_empty` is false.
std::vector<std::string> split(std::string_view text, char sep, bool keep_empty = false);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string toLower(std::string_view text);

// --- Topic path helpers -----------------------------------------------------
// A canonical topic starts with '/' and has no trailing slash or empty
// segments, e.g. "/rack0/chassis1/server2/power". The root path is "/".

/// Normalises a path: ensures a single leading '/', collapses duplicate
/// slashes, removes a trailing slash (except for the root path "/").
std::string normalizePath(std::string_view path);

/// Splits a canonical topic into its segments ("/a/b/c" -> {"a","b","c"}).
std::vector<std::string> pathSegments(std::string_view path);

/// Returns the last segment of a topic ("" for the root path).
std::string pathLeaf(std::string_view path);

/// Returns the parent path ("/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/").
std::string pathParent(std::string_view path);

/// Joins two path fragments with normalisation.
std::string pathJoin(std::string_view base, std::string_view leaf);

/// True if `ancestor` is a (non-strict) prefix-path of `path`
/// ("/a/b" is an ancestor of "/a/b/c" and of itself; "/" of everything).
bool isPathAncestor(std::string_view ancestor, std::string_view path);

/// Depth of a canonical path: "/" -> 0, "/a" -> 1, "/a/b" -> 2.
std::size_t pathDepth(std::string_view path);

}  // namespace wm::common
