#pragma once

// Deterministic fault injection for the monitoring data path.
//
// Production ODA systems live or die by how they behave when components
// fail: dropped MQTT connections, slow or refusing storage, crashing
// subscribers (see docs/RESILIENCE.md). This header provides the harness
// that lets tests *express* such failures reproducibly:
//
//  * a FaultInjector holds named fault points ("broker.deliver",
//    "storage.insert", ...) armed with a FaultSpec: an action (fail /
//    delay / drop) plus a trigger (always, probability, once, every-N,
//    time-window);
//  * all randomness comes from a seeded common::Rng and all time from an
//    injectable ClockSource, so two runs with the same seed and virtual
//    clock produce byte-identical fault schedules;
//  * instrumented code calls fault::check("point.name") — a single relaxed
//    atomic load when no injector is installed, so production builds pay
//    nothing, and an unarmed point costs one map lookup.
//
// Fault points follow the `component.operation` naming convention; the
// full registry and the trigger grammar are documented in
// docs/RESILIENCE.md.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/time_utils.h"

namespace wm::common::fault {

/// What the instrumented call site should do when the point fires.
/// The site gives each action its natural meaning: kFail surfaces an error
/// to the caller (connection refused, insert rejected), kDrop silently
/// loses the datum (lossy network), kDelay stalls the operation.
enum class Action { kFail, kDelay, kDrop };

enum class Trigger {
    kAlways,       ///< fires on every evaluation
    kProbability,  ///< fires with FaultSpec::probability per evaluation
    kOnce,         ///< fires on the first evaluation only
    kEveryN,       ///< fires on every Nth evaluation (N, 2N, 3N, ...)
    kWindow,       ///< fires while window_start <= clock.now() < window_end
};

struct FaultSpec {
    Action action = Action::kFail;
    Trigger trigger = Trigger::kAlways;
    double probability = 1.0;            // kProbability
    std::uint64_t every_n = 1;           // kEveryN
    TimestampNs window_start_ns = 0;     // kWindow
    TimestampNs window_end_ns = 0;       // kWindow (exclusive)
    TimestampNs delay_ns = 0;            // payload for Action::kDelay
    std::uint64_t max_fires = 0;         // 0 = unlimited
};

/// Outcome of evaluating a fault point. Contextually convertible to bool:
/// `if (const auto fault = fault::check("x")) ...` reads as "if x fired".
struct Decision {
    bool fire = false;
    Action action = Action::kFail;
    TimestampNs delay_ns = 0;
    explicit operator bool() const { return fire; }
};

/// Per-point hit counters; the determinism contract of the resilience
/// tests is asserted against these.
struct PointStats {
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

/// Parses the textual trigger grammar used by configuration files:
///
///   spec    := action [modifier]...
///   action  := "fail" | "delay" | "drop"
///   modifier:= "once" | "prob=<0..1>" | "every=<N>" | "limit=<N>"
///            | "window=<dur>..<dur>" | "delay=<dur>"
///
/// Durations use parseDuration() ("250ms", "5s", ...). Examples:
/// "drop prob=0.01", "fail every=3", "fail window=2s..5s",
/// "delay delay=250ms limit=10". Returns std::nullopt on malformed input.
std::optional<FaultSpec> parseFaultSpec(const std::string& text);

/// A registry of named fault points. Thread-safe; typically one per test
/// (installed globally via ScopedInjector) or one per daemon, armed from
/// the `faults` configuration block.
class FaultInjector {
  public:
    /// `clock` drives kWindow triggers; nullptr means globalClock().
    explicit FaultInjector(std::uint64_t seed = 0xFA171EC7ULL,
                           const ClockSource* clock = nullptr);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;
    ~FaultInjector();

    /// Arms (or re-arms) a fault point; resets its counters.
    void arm(const std::string& point, FaultSpec spec);

    /// Arms from the textual grammar; returns false on a parse error.
    bool armFromText(const std::string& point, const std::string& spec_text);

    /// Disarms a point, keeping its counters readable.
    void disarm(const std::string& point);

    /// Disarms everything and clears all counters.
    void reset();

    /// Evaluates a fault point. Unarmed points never fire and keep no
    /// per-evaluation state (no allocation, no counter).
    Decision evaluate(const std::string& point);

    PointStats stats(const std::string& point) const;
    std::uint64_t fires(const std::string& point) const { return stats(point).fires; }
    std::size_t armedCount() const;

    /// The globally installed injector, or nullptr (the default).
    static FaultInjector* global() {
        return global_.load(std::memory_order_acquire);
    }

    /// Installs `injector` process-wide (nullptr uninstalls). The caller
    /// keeps ownership; prefer ScopedInjector in tests.
    static void installGlobal(FaultInjector* injector) {
        global_.store(injector, std::memory_order_release);
    }

  private:
    struct Point {
        FaultSpec spec;
        bool armed = false;
        std::uint64_t evaluations = 0;
        std::uint64_t fires = 0;
    };

    mutable Mutex mutex_{"FaultInjector", LockRank::kFaultInjector};
    std::map<std::string, Point> points_ WM_GUARDED_BY(mutex_);
    Rng rng_ WM_GUARDED_BY(mutex_);
    const ClockSource* clock_;  // immutable after construction

    static std::atomic<FaultInjector*> global_;
};

/// Evaluates a fault point against the global injector. This is the only
/// call instrumented code should make: with no injector installed it is a
/// single relaxed load and an immediate return.
inline Decision check(const char* point) {
    FaultInjector* injector = FaultInjector::global();
    if (injector == nullptr) return {};
    return injector->evaluate(point);
}

/// Busy-waits for `delay_ns` of wall-clock time; how call sites honour
/// Action::kDelay on paths without a virtual clock (mirrors
/// StorageBackend::simulateLatency — sleep granularity is too coarse).
void applyDelay(TimestampNs delay_ns);

/// RAII global installation: installs `injector` for the enclosing scope
/// and restores the previous injector (usually none) on exit.
class ScopedInjector {
  public:
    explicit ScopedInjector(FaultInjector& injector)
        : previous_(FaultInjector::global()) {
        FaultInjector::installGlobal(&injector);
    }
    ~ScopedInjector() { FaultInjector::installGlobal(previous_); }

    ScopedInjector(const ScopedInjector&) = delete;
    ScopedInjector& operator=(const ScopedInjector&) = delete;

  private:
    FaultInjector* previous_;
};

}  // namespace wm::common::fault
