#pragma once

// Fixed-size worker pool used by the Operator Manager to run operator
// computations asynchronously (the paper's "parallel" unit-management mode)
// and by the Pusher to decouple sampling from publishing.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wm::common {

class ThreadPool {
  public:
    /// Creates `num_threads` workers (at least 1).
    explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task; returns a future for its result. Throws
    /// std::runtime_error if the pool is shutting down.
    template <typename F>
    auto submit(F&& func) -> std::future<std::invoke_result_t<F>> {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(func));
        auto future = task->get_future();
        {
            std::lock_guard lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /// Fire-and-forget variant without future overhead.
    void post(std::function<void()> func);

    /// Blocks until the queue is empty and all workers are idle.
    void waitIdle();

    std::size_t threadCount() const { return workers_.size(); }
    std::size_t pendingTasks() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::queue<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

}  // namespace wm::common
