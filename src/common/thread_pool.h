#pragma once

// Fixed-size worker pool used by the Operator Manager to run operator
// computations asynchronously (the paper's "parallel" unit-management mode)
// and by the Pusher to decouple sampling from publishing.
//
// Shutdown semantics: the destructor marks the pool as stopping, wakes every
// worker, drains the queue (already-accepted tasks always run), then joins.
// submit()/post() called at or after the start of shutdown throw
// std::runtime_error — acceptance is decided under the pool lock, so a task
// either runs to completion or was never accepted.

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"

namespace wm::common {

class ThreadPool {
  public:
    /// Creates `num_threads` workers (at least 1).
    explicit ThreadPool(std::size_t num_threads = Thread::hardwareConcurrency());
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task; returns a future for its result. Throws
    /// std::runtime_error if the pool is shutting down.
    template <typename F>
    auto submit(F&& func) -> std::future<std::invoke_result_t<F>> {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(func));
        auto future = task->get_future();
        {
            MutexLock lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            tasks_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /// Fire-and-forget variant without future overhead. Throws
    /// std::runtime_error if the pool is shutting down.
    void post(std::function<void()> func);

    /// Blocks until the queue is empty and all workers are idle. Tasks
    /// submitted after waitIdle() returns are not waited for.
    void waitIdle();

    std::size_t threadCount() const { return workers_.size(); }
    std::size_t pendingTasks() const;

  private:
    void workerLoop();

    mutable Mutex mutex_{"ThreadPool", LockRank::kThreadPool};
    ConditionVariable cv_;
    ConditionVariable idle_cv_;
    std::queue<std::function<void()>> tasks_ WM_GUARDED_BY(mutex_);
    std::vector<Thread> workers_;  // written only in the constructor
    std::size_t active_ WM_GUARDED_BY(mutex_) = 0;
    bool stopping_ WM_GUARDED_BY(mutex_) = false;
};

}  // namespace wm::common
