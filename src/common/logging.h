#pragma once

// Thread-safe, leveled logging facility used by every DCDB/Wintermute entity.
// Mirrors the role of DCDB's LogManager: a process-global sink with per-module
// severity tags, writing to stderr and optionally to a file.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "common/mutex.h"

namespace wm::common {

enum class LogLevel : std::uint8_t {
    kTrace = 0,
    kDebug = 1,
    kInfo = 2,
    kWarning = 3,
    kError = 4,
    kFatal = 5,
    kOff = 6,
};

/// Returns the canonical upper-case name of a level ("INFO", "ERROR", ...).
const char* logLevelName(LogLevel level);

/// Parses a level name (case-insensitive); returns kInfo for unknown names.
LogLevel logLevelFromName(const std::string& name);

/// Process-global logging sink. All methods are thread-safe.
class Logger {
  public:
    /// Returns the singleton logger instance.
    static Logger& instance();

    /// Sets the minimum severity that will be emitted.
    void setLevel(LogLevel level);
    LogLevel level() const;

    /// Mirrors output to the given file (in addition to stderr).
    /// Passing an empty path disables file output. Returns false on open error.
    bool setLogFile(const std::string& path);

    /// Enables/disables the stderr sink (useful to silence benchmarks).
    void setStderrEnabled(bool enabled);

    /// Emits one formatted record if `level` passes the threshold.
    void log(LogLevel level, const std::string& module, const std::string& message);

    /// Number of records emitted since construction (for tests).
    std::uint64_t emittedCount() const;

  private:
    Logger() = default;

    // kLogger is the leaf rank: WM_LOG is legal under any other lock.
    mutable Mutex mutex_{"Logger", LockRank::kLogger};
    LogLevel level_ WM_GUARDED_BY(mutex_) = LogLevel::kInfo;
    bool stderr_enabled_ WM_GUARDED_BY(mutex_) = true;
    std::ofstream file_ WM_GUARDED_BY(mutex_);
    std::uint64_t emitted_ WM_GUARDED_BY(mutex_) = 0;
};

/// Stream-style log statement builder:
///   LOG(kInfo, "pusher") << "started " << n << " groups";
class LogStatement {
  public:
    LogStatement(LogLevel level, std::string module)
        : level_(level), module_(std::move(module)) {}
    ~LogStatement() { Logger::instance().log(level_, module_, stream_.str()); }

    LogStatement(const LogStatement&) = delete;
    LogStatement& operator=(const LogStatement&) = delete;

    template <typename T>
    LogStatement& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::string module_;
    std::ostringstream stream_;
};

}  // namespace wm::common

#define WM_LOG(level, module) ::wm::common::LogStatement(::wm::common::LogLevel::level, module)
