#pragma once

// Schedule-point seam between the concurrency primitives in src/common/ and
// the wm::sched deterministic model checker (src/check/). When a model-check
// run is active, every thread participating in the run carries a thread-local
// pointer to the checker's hook table; wm::common::Mutex, SharedMutex,
// ConditionVariable and Thread divert their operations through it so the
// checker can (a) serialise execution under a controlled scheduler and
// (b) virtualise ownership — the real OS primitives are never touched by
// model threads, mutual exclusion being guaranteed by the one-runnable-thread
// discipline instead.
//
// Cost when inactive: one thread-local load and a predictable branch per
// operation (the pointer is null for every thread outside a model run).
// Builds configured with -DWM_SCHED=OFF compile the hooks away entirely —
// current() becomes a constant nullptr and every call site folds to the
// plain primitive.
//
// src/common/ must not depend on src/check/ (wm_sched links against
// wm_common, not the other way around), hence this pure-interface header:
// the checker implements ModelHooks and installs itself via setCurrent()
// from the trampoline of each model thread.

#include <cstdint>
#include <functional>

namespace wm::common::schedhooks {

/// Implemented by wm::sched::Scheduler. Every method is invoked from the
/// *current* model thread at a schedule point; the implementation may block
/// the calling thread (parking it while other model threads are scheduled)
/// and returns once the operation has been performed virtually. The real
/// primitive must NOT be touched afterwards.
class ModelHooks {
  public:
    virtual ~ModelHooks() = default;

    /// Acquire `mutex` (exclusive, or shared for the reader side of a
    /// SharedMutex). Blocks under the model scheduler until the virtual
    /// ownership is granted.
    virtual void mutexLock(const void* mutex, const char* name, bool shared) = 0;
    /// Release the virtual ownership taken by mutexLock.
    virtual void mutexUnlock(const void* mutex, bool shared) = 0;

    /// Condition wait: atomically releases the virtual `mutex`, blocks until
    /// a virtual notify targets this waiter, then reacquires `mutex`.
    virtual void cvWait(const void* cv, const void* mutex, const char* mutex_name) = 0;
    /// Timed variant; virtual time advances to the deadline when the system
    /// would otherwise be idle. Returns true when the wait timed out.
    virtual bool cvWaitFor(const void* cv, const void* mutex, const char* mutex_name,
                           std::int64_t timeout_ns) = 0;
    virtual void cvNotify(const void* cv, bool notify_all) = 0;

    /// Called by wm::common::Thread's constructor on the spawning model
    /// thread: registers a child model thread and rewraps `body` in the
    /// checker's trampoline (registration, parking, exit protocol). Returns
    /// an opaque token for threadJoin().
    virtual std::uint64_t threadSpawn(std::function<void()>& body, const char* name) = 0;
    /// Blocks (under model scheduling) until the child identified by
    /// `token` has finished executing its body.
    virtual void threadJoin(std::uint64_t token) = 0;

    /// Pure schedule point (wm::common::Thread::yield).
    virtual void yield() = 0;
    /// Virtual sleep: the thread becomes runnable once the model clock has
    /// advanced past now + ns.
    virtual void sleepFor(std::int64_t ns) = 0;

    /// Declared shared-memory access (wm::sched::Shared<T>): a schedule
    /// point plus vector-clock data-race detection on the cell.
    virtual void sharedAccess(const void* cell, const char* name, bool write) = 0;
};

#ifdef WM_SCHED_CHECK

namespace detail {
extern thread_local ModelHooks* t_current;
}  // namespace detail

/// The active hook table of the calling thread; nullptr for every thread
/// not participating in a model-check run.
inline ModelHooks* current() noexcept { return detail::t_current; }

/// Installed/cleared by the checker's thread trampolines.
inline void setCurrent(ModelHooks* hooks) noexcept { detail::t_current = hooks; }

#else  // !WM_SCHED_CHECK

inline constexpr ModelHooks* current() noexcept { return nullptr; }
inline void setCurrent(ModelHooks*) noexcept {}

#endif

}  // namespace wm::common::schedhooks
