#pragma once

// Deterministic random number generation for the simulator and the analytics
// substrate. Every stochastic component takes an explicit seed so that
// experiments and tests are exactly reproducible across runs and platforms.
// The core generator is xoshiro256**, seeded through SplitMix64.

#include <cstdint>
#include <cmath>
#include <vector>

namespace wm::common {

/// SplitMix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions. Not thread-safe; create
/// one instance per thread or per simulated entity.
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
        has_gauss_ = false;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type operator()() { return next(); }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t uniformInt(std::uint64_t bound) {
        // Lemire's nearly-divisionless bounded integers.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0ULL - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal deviate (Marsaglia polar method).
    double gaussian() {
        if (has_gauss_) {
            has_gauss_ = false;
            return cached_gauss_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        cached_gauss_ = v * factor;
        has_gauss_ = true;
        return u * factor;
    }

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

    /// Exponential deviate with the given rate (lambda > 0).
    double exponential(double rate) { return -std::log(1.0 - uniform()) / rate; }

    /// True with probability p.
    bool bernoulli(double p) { return uniform() < p; }

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniformInt(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// k distinct indices sampled without replacement from [0, n).
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n, std::size_t k);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t state_[4] = {};
    bool has_gauss_ = false;
    double cached_gauss_ = 0.0;
};

}  // namespace wm::common
