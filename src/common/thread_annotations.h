#pragma once

// Clang thread-safety-analysis attribute macros (no-ops on other compilers).
// Enables `-Wthread-safety` static checking of lock discipline: members are
// tagged WM_GUARDED_BY(mutex), private helpers that expect the caller to
// hold a lock are tagged WM_REQUIRES(mutex), and the wrappers in
// common/mutex.h are annotated as capabilities so violations become compile
// errors under the `thread-safety` CMake preset.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && !defined(WM_NO_THREAD_SAFETY_ATTRIBUTES)
#define WM_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define WM_THREAD_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define WM_CAPABILITY(x) WM_THREAD_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define WM_SCOPED_CAPABILITY WM_THREAD_ATTRIBUTE(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define WM_GUARDED_BY(x) WM_THREAD_ATTRIBUTE(guarded_by(x))

/// Declares that the pointee of a pointer member is protected by the given
/// capability (the pointer itself may be read freely).
#define WM_PT_GUARDED_BY(x) WM_THREAD_ATTRIBUTE(pt_guarded_by(x))

/// Declares that callers must hold the capability exclusively.
#define WM_REQUIRES(...) WM_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that callers must hold the capability at least shared.
#define WM_REQUIRES_SHARED(...) \
    WM_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires the capability exclusively.
#define WM_ACQUIRE(...) WM_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Declares that the function acquires the capability shared.
#define WM_ACQUIRE_SHARED(...) \
    WM_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Declares that the function releases the capability (exclusive or shared).
#define WM_RELEASE(...) WM_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Declares that the function releases a shared hold of the capability.
#define WM_RELEASE_SHARED(...) \
    WM_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Declares that the function may acquire the capability (conditionally),
/// returning `result` on success.
#define WM_TRY_ACQUIRE(...) WM_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability (deadlock prevention).
#define WM_EXCLUDES(...) WM_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability.
#define WM_RETURN_CAPABILITY(x) WM_THREAD_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the analysis entirely. Use sparingly and document
/// why the function is safe (e.g. a documented benign-staleness contract).
#define WM_NO_THREAD_SAFETY_ANALYSIS WM_THREAD_ATTRIBUTE(no_thread_safety_analysis)
