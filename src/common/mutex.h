#pragma once

// Capability-annotated mutex wrappers, the only locking primitives allowed
// outside src/common/ (enforced by tools/lint.py). They combine:
//
//  * clang thread-safety analysis (common/thread_annotations.h) — guarded
//    members and lock requirements are checked at compile time under the
//    `thread-safety` CMake preset;
//  * runtime lock-order checking (common/lock_order.h) — every mutex carries
//    a name and a LockRank, and debug builds abort on rank inversions.
//
// Condition waits go through wm::common::ConditionVariable, which unlocks
// and relocks through the wrapper so the held-lock stack stays balanced.
// Predicate loops are written at the call site (`while (!pred) cv.wait(m);`)
// so the thread-safety analysis sees the guarded reads under the lock.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_order.h"
#include "common/sched_hooks.h"
#include "common/thread_annotations.h"

#if defined(__SANITIZE_THREAD__)
#define WM_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WM_TSAN_ENABLED 1
#endif
#endif
#if defined(WM_TSAN_ENABLED)
#include <sanitizer/tsan_interface.h>
#endif

namespace wm::common {

/// Exclusive mutex with a name and a rank in the global lock order.
class WM_CAPABILITY("mutex") Mutex {
  public:
    explicit Mutex(const char* name = "mutex", LockRank rank = LockRank::kUnranked)
        : name_(name), rank_(rank) {}

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

#if defined(WM_TSAN_ENABLED)
    // libstdc++'s std::mutex destructor is trivial (it never calls
    // pthread_mutex_destroy), so TSan's deadlock detector keeps stale
    // lock-order edges when a later mutex reuses this address and reports
    // false inversions. Tell it explicitly that this mutex is gone.
    ~Mutex() { __tsan_mutex_destroy(&mutex_, 0); }
#endif

    void lock() WM_ACQUIRE() {
        // Model threads acquire virtually: the checker serialises execution,
        // so mutual exclusion holds without touching the real mutex (which
        // would block a suspended owner at the OS level, outside the
        // scheduler's control).
        if (auto* hooks = schedhooks::current()) {
            hooks->mutexLock(this, name_, /*shared=*/false);
            lockorder::onAcquire(this, name_, rank_);
            return;
        }
        lockorder::onAcquire(this, name_, rank_);
        mutex_.lock();
    }

    void unlock() WM_RELEASE() {
        if (auto* hooks = schedhooks::current()) {
            lockorder::onRelease(this);
            hooks->mutexUnlock(this, /*shared=*/false);
            return;
        }
        mutex_.unlock();
        lockorder::onRelease(this);
    }

    const char* name() const { return name_; }
    LockRank rank() const { return rank_; }

  private:
    std::mutex mutex_;
    const char* name_;
    LockRank rank_;
};

/// Reader/writer mutex with a name and a rank in the global lock order.
class WM_CAPABILITY("shared_mutex") SharedMutex {
  public:
    explicit SharedMutex(const char* name = "shared_mutex",
                         LockRank rank = LockRank::kUnranked)
        : name_(name), rank_(rank) {}

    SharedMutex(const SharedMutex&) = delete;
    SharedMutex& operator=(const SharedMutex&) = delete;

    void lock() WM_ACQUIRE() {
        if (auto* hooks = schedhooks::current()) {
            hooks->mutexLock(this, name_, /*shared=*/false);
            lockorder::onAcquire(this, name_, rank_);
            return;
        }
        lockorder::onAcquire(this, name_, rank_);
        mutex_.lock();
    }

    void unlock() WM_RELEASE() {
        if (auto* hooks = schedhooks::current()) {
            lockorder::onRelease(this);
            hooks->mutexUnlock(this, /*shared=*/false);
            return;
        }
        mutex_.unlock();
        lockorder::onRelease(this);
    }

    void lock_shared() WM_ACQUIRE_SHARED() {
        if (auto* hooks = schedhooks::current()) {
            hooks->mutexLock(this, name_, /*shared=*/true);
            lockorder::onAcquire(this, name_, rank_);
            return;
        }
        lockorder::onAcquire(this, name_, rank_);
        mutex_.lock_shared();
    }

    void unlock_shared() WM_RELEASE_SHARED() {
        if (auto* hooks = schedhooks::current()) {
            lockorder::onRelease(this);
            hooks->mutexUnlock(this, /*shared=*/true);
            return;
        }
        mutex_.unlock_shared();
        lockorder::onRelease(this);
    }

    const char* name() const { return name_; }
    LockRank rank() const { return rank_; }

  private:
    std::shared_mutex mutex_;
    const char* name_;
    LockRank rank_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard replacement).
class WM_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mutex) WM_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
    ~MutexLock() WM_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mutex_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class WM_SCOPED_CAPABILITY WriteLock {
  public:
    explicit WriteLock(SharedMutex& mutex) WM_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~WriteLock() WM_RELEASE() { mutex_.unlock(); }

    WriteLock(const WriteLock&) = delete;
    WriteLock& operator=(const WriteLock&) = delete;

  private:
    SharedMutex& mutex_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class WM_SCOPED_CAPABILITY ReadLock {
  public:
    explicit ReadLock(SharedMutex& mutex) WM_ACQUIRE_SHARED(mutex) : mutex_(mutex) {
        mutex_.lock_shared();
    }
    ~ReadLock() WM_RELEASE() { mutex_.unlock_shared(); }

    ReadLock(const ReadLock&) = delete;
    ReadLock& operator=(const ReadLock&) = delete;

  private:
    SharedMutex& mutex_;
};

/// Condition variable bound to wm::common::Mutex. Waits release and reacquire
/// through the wrapper, so lock-order tracking stays balanced across waits.
class ConditionVariable {
  public:
    void notify_one() {
        if (auto* hooks = schedhooks::current()) {
            hooks->cvNotify(this, /*notify_all=*/false);
            return;
        }
        cv_.notify_one();
    }

    void notify_all() {
        if (auto* hooks = schedhooks::current()) {
            hooks->cvNotify(this, /*notify_all=*/true);
            return;
        }
        cv_.notify_all();
    }

    /// Caller must hold `mutex`; write the predicate loop at the call site.
    void wait(Mutex& mutex) WM_REQUIRES(mutex) {
        if (auto* hooks = schedhooks::current()) {
            // Mirror what a real condition wait does to the held-lock stack:
            // the mutex is released for the duration of the wait.
            lockorder::onRelease(&mutex);
            hooks->cvWait(this, &mutex, mutex.name());
            lockorder::onAcquire(&mutex, mutex.name(), mutex.rank());
            return;
        }
        cv_.wait(mutex);
    }

    template <typename Rep, typename Period>
    std::cv_status wait_for(Mutex& mutex,
                            const std::chrono::duration<Rep, Period>& timeout)
        WM_REQUIRES(mutex) {
        if (auto* hooks = schedhooks::current()) {
            lockorder::onRelease(&mutex);
            const bool timed_out = hooks->cvWaitFor(
                this, &mutex, mutex.name(),
                std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count());
            lockorder::onAcquire(&mutex, mutex.name(), mutex.rank());
            return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
        }
        return cv_.wait_for(mutex, timeout);
    }

  private:
    std::condition_variable_any cv_;
};

}  // namespace wm::common
