#include "common/rng.h"

#include <numeric>

namespace wm::common {

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n, std::size_t k) {
    if (k > n) k = n;
    // Partial Fisher-Yates over an index vector: O(n) memory, O(k) swaps.
    std::vector<std::size_t> indices(n);
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(uniformInt(n - i));
        std::swap(indices[i], indices[j]);
    }
    indices.resize(k);
    return indices;
}

}  // namespace wm::common
