#pragma once

// Runtime lock-order (deadlock) checking for the wm::common::Mutex wrappers.
//
// Every mutex in the framework carries a name and a LockRank. The ranks form
// a global acquisition order: a thread may only acquire a mutex whose rank is
// strictly greater than the ranks of every ranked mutex it already holds.
// Debug builds (WM_LOCK_ORDER_CHECK, the default) maintain a per-thread
// held-lock stack plus a global rank-pair acquired-after graph; a rank
// inversion — the signature of a potential ABBA deadlock — aborts the
// process, printing the full held stack and the offending acquisition.
//
// The rank table mirrors the framework's call topology (see
// docs/STATIC_ANALYSIS.md for the full table and its derivation):
//
//   managers (operator manager, pusher, collect agent)
//     -> execution plumbing (scheduler, thread pool, http server, router)
//       -> operator/plugin state
//         -> job manager -> broker -> query engine tree
//           -> cache store -> sensor cache -> storage
//             -> logger (leaf: logging is legal under any lock)
//
// kUnranked mutexes are tracked on the held stack (for diagnostics and
// recursion detection) but exempt from the ordering constraint.

#include <cstddef>

namespace wm::common {

enum class LockRank : int {
    kUnranked = 0,

    // The supervisor health-checks and restarts hosting entities while
    // holding its own lock, so it ranks above (acquired before) them all.
    kSupervisor = 5,

    // Hosting entities: their lifecycle locks are acquired first.
    kOperatorManager = 10,
    kPusher = 12,
    kPusherBuffer = 13,
    kCollectAgent = 14,
    kCollectAgentQuarantine = 15,
    // The wire client: Pusher publish paths (holding kPusherBuffer) forward
    // into net::Connection, so its state lock ranks below them.
    kNetConnection = 17,

    // Execution plumbing.
    kScheduler = 20,
    kThreadPool = 24,
    // The wire server's worker bookkeeping; connection threads publish into
    // the broker (kBroker/kBrokerQueue) without holding it.
    kNetListener = 27,
    kHttpServer = 28,
    kRouter = 32,

    // Operator framework and plugin-internal state. The state lock
    // serialises compute passes against saveState()/restoreState() and is
    // taken before the units lock in every compute path.
    kOperatorState = 38,
    kOperatorUnits = 40,
    kSimFacility = 44,
    kSimNode = 46,
    kPluginState = 48,

    // Data path: broker delivery feeds caches, caches fall back to storage.
    kJobManager = 52,
    kBroker = 56,
    kBrokerQueue = 58,
    kQueryEngineTree = 60,
    kCacheStore = 64,
    kSensorCache = 68,
    // Topic interning is legal under the CacheStore lock (getOrCreate interns
    // while registering the entry) but never holds anything itself.
    kTopicTable = 70,
    kStorage = 72,

    // Near-leaves: fault-point evaluation is legal under any data-path
    // lock, and logging is legal absolutely everywhere.
    kFaultInjector = 95,
    kLogger = 99,
};

namespace lockorder {

/// Records the acquisition of `handle` on the calling thread's held stack
/// and aborts (after printing both lock names and the held stack) on a rank
/// inversion or recursive acquisition. No-op unless WM_LOCK_ORDER_CHECK.
void onAcquire(const void* handle, const char* name, LockRank rank);

/// Pops `handle` from the calling thread's held stack.
void onRelease(const void* handle) noexcept;

/// Number of locks the calling thread currently holds (0 when checking is
/// disabled). Exposed for tests.
std::size_t heldCount() noexcept;

}  // namespace lockorder

}  // namespace wm::common
