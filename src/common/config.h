#pragma once

// Hierarchical configuration parser for the INFO-like format used by DCDB
// configuration files:
//
//   global {
//       mqttPrefix /cluster
//       cacheInterval 180s
//   }
//   template_operator avg1 {
//       interval    1000
//       input {
//           sensor "<bottomup>col_user"
//       }
//       output {
//           sensor "<bottomup, filter cpu>avg"
//       }
//   }
//
// Grammar: a node is `key [value] [{ children... }]`. Values may be quoted to
// embed whitespace. Lines starting with '#' or ';' are comments. Keys may
// repeat at the same level (e.g. several `sensor` entries).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace wm::common {

/// One node of a parsed configuration tree.
class ConfigNode {
  public:
    ConfigNode() = default;
    ConfigNode(std::string key, std::string value)
        : key_(std::move(key)), value_(std::move(value)) {}

    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    void setKey(std::string key) { key_ = std::move(key); }
    void setValue(std::string value) { value_ = std::move(value); }

    /// Source position of the node's key token (1-based; 0 = unknown, e.g.
    /// for nodes built programmatically). Consumed by diagnostics so that
    /// configuration findings point at the offending line.
    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }
    void setLocation(std::size_t line, std::size_t column) {
        line_ = line;
        column_ = column;
    }

    const std::vector<ConfigNode>& children() const { return children_; }
    std::vector<ConfigNode>& children() { return children_; }
    ConfigNode& addChild(std::string key, std::string value = "");

    /// First direct child with the given key, or nullptr.
    const ConfigNode* child(const std::string& key) const;

    /// All direct children with the given key.
    std::vector<const ConfigNode*> childrenOf(const std::string& key) const;

    /// Value of the first direct child with the given key, if any.
    std::optional<std::string> childValue(const std::string& key) const;

    /// Typed accessors with defaults; parse failures fall back to the default.
    std::string getString(const std::string& key, const std::string& fallback = "") const;
    std::int64_t getInt(const std::string& key, std::int64_t fallback = 0) const;
    double getDouble(const std::string& key, double fallback = 0.0) const;
    bool getBool(const std::string& key, bool fallback = false) const;
    /// Duration accessor using parseDuration() semantics; returns nanoseconds.
    std::int64_t getDurationNs(const std::string& key, std::int64_t fallback_ns = 0) const;

    /// Serialises the subtree back to the textual format (round-trippable).
    std::string toString(int indent = 0) const;

  private:
    std::string key_;
    std::string value_;
    std::vector<ConfigNode> children_;
    std::size_t line_ = 0;
    std::size_t column_ = 0;
};

/// Result of a parse: either a root node (with empty key) or an error.
struct ConfigParseResult {
    ConfigNode root;
    bool ok = false;
    std::string error;      // human-readable message when !ok
    std::size_t error_line = 0;
    std::size_t error_column = 0;
    /// File path for parseConfigFile(); empty for in-memory parses.
    std::string source;
};

/// Parses configuration text. The returned root node is an anonymous
/// container whose children are the top-level entries.
ConfigParseResult parseConfig(const std::string& text);

/// Parses a configuration file from disk.
ConfigParseResult parseConfigFile(const std::string& path);

}  // namespace wm::common
