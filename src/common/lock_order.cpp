#include "common/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wm::common::lockorder {

#ifdef WM_LOCK_ORDER_CHECK

namespace {

// Per-thread held-lock stack. Deliberately trivially destructible (fixed
// array + count, no destructor) so releases running during thread/static
// teardown never touch a destroyed thread_local object.
struct Held {
    const void* handle;
    const char* name;
    int rank;
};

constexpr std::size_t kMaxHeld = 64;
thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_held_count = 0;

// Global acquired-after graph over rank pairs: edges[a][b] records that some
// thread acquired a rank-b lock while holding a rank-a lock. With strict
// rank ordering enforced below, a would-be reverse edge is a cycle.
constexpr int kMaxRank = 100;
std::atomic<bool> g_edges[kMaxRank][kMaxRank];

[[noreturn]] void abortWithStack(const char* what, const char* name, int rank) {
    std::fprintf(stderr, "wm::lockorder FATAL: %s: acquiring \"%s\" (rank %d)\n", what,
                 name, rank);
    std::fprintf(stderr, "  locks held by this thread (acquisition order):\n");
    for (std::size_t i = 0; i < t_held_count; ++i) {
        std::fprintf(stderr, "    %zu. \"%s\" (rank %d)\n", i + 1, t_held[i].name,
                     t_held[i].rank);
    }
    std::fflush(stderr);
    std::abort();
}

}  // namespace

void onAcquire(const void* handle, const char* name, LockRank rank) {
    const int new_rank = static_cast<int>(rank);
    for (std::size_t i = 0; i < t_held_count; ++i) {
        if (t_held[i].handle == handle) {
            abortWithStack("recursive acquisition", name, new_rank);
        }
    }
    if (new_rank != 0) {
        for (std::size_t i = 0; i < t_held_count; ++i) {
            const int held_rank = t_held[i].rank;
            if (held_rank == 0) continue;
            if (held_rank >= new_rank) {
                const bool proven_cycle =
                    new_rank < kMaxRank && held_rank < kMaxRank &&
                    g_edges[new_rank][held_rank].load(std::memory_order_relaxed);
                abortWithStack(proven_cycle
                                   ? "lock-order cycle (reverse order observed before)"
                                   : "lock-rank inversion",
                               name, new_rank);
            }
            if (held_rank < kMaxRank && new_rank < kMaxRank) {
                g_edges[held_rank][new_rank].store(true, std::memory_order_relaxed);
            }
        }
    }
    if (t_held_count >= kMaxHeld) {
        abortWithStack("held-lock stack overflow", name, new_rank);
    }
    t_held[t_held_count++] = Held{handle, name, new_rank};
}

void onRelease(const void* handle) noexcept {
    // Locks release in LIFO order in the common (scoped-guard) case; search
    // from the top to also tolerate out-of-order releases.
    for (std::size_t i = t_held_count; i > 0; --i) {
        if (t_held[i - 1].handle == handle) {
            for (std::size_t j = i - 1; j + 1 < t_held_count; ++j) {
                t_held[j] = t_held[j + 1];
            }
            --t_held_count;
            return;
        }
    }
}

std::size_t heldCount() noexcept {
    return t_held_count;
}

#else  // !WM_LOCK_ORDER_CHECK

void onAcquire(const void*, const char*, LockRank) {}
void onRelease(const void*) noexcept {}
std::size_t heldCount() noexcept {
    return 0;
}

#endif

}  // namespace wm::common::lockorder
