#include "common/config.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/string_utils.h"
#include "common/time_utils.h"

namespace wm::common {

ConfigNode& ConfigNode::addChild(std::string key, std::string value) {
    children_.emplace_back(std::move(key), std::move(value));
    return children_.back();
}

const ConfigNode* ConfigNode::child(const std::string& key) const {
    for (const auto& node : children_) {
        if (node.key() == key) return &node;
    }
    return nullptr;
}

std::vector<const ConfigNode*> ConfigNode::childrenOf(const std::string& key) const {
    std::vector<const ConfigNode*> out;
    for (const auto& node : children_) {
        if (node.key() == key) out.push_back(&node);
    }
    return out;
}

std::optional<std::string> ConfigNode::childValue(const std::string& key) const {
    const ConfigNode* node = child(key);
    if (node == nullptr) return std::nullopt;
    return node->value();
}

std::string ConfigNode::getString(const std::string& key, const std::string& fallback) const {
    return childValue(key).value_or(fallback);
}

std::int64_t ConfigNode::getInt(const std::string& key, std::int64_t fallback) const {
    const auto value = childValue(key);
    if (!value) return fallback;
    try {
        return std::stoll(*value);
    } catch (...) {
        return fallback;
    }
}

double ConfigNode::getDouble(const std::string& key, double fallback) const {
    const auto value = childValue(key);
    if (!value) return fallback;
    try {
        return std::stod(*value);
    } catch (...) {
        return fallback;
    }
}

bool ConfigNode::getBool(const std::string& key, bool fallback) const {
    const auto value = childValue(key);
    if (!value) return fallback;
    const std::string lower = toLower(*value);
    if (lower == "true" || lower == "on" || lower == "yes" || lower == "1") return true;
    if (lower == "false" || lower == "off" || lower == "no" || lower == "0") return false;
    return fallback;
}

std::int64_t ConfigNode::getDurationNs(const std::string& key, std::int64_t fallback_ns) const {
    const auto value = childValue(key);
    if (!value) return fallback_ns;
    const auto parsed = parseDuration(*value);
    return parsed ? *parsed : fallback_ns;
}

namespace {

bool needsQuoting(const std::string& value) {
    if (value.empty()) return false;
    for (char c : value) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == '{' || c == '}' || c == '"') {
            return true;
        }
    }
    return false;
}

}  // namespace

std::string ConfigNode::toString(int indent) const {
    std::ostringstream out;
    const std::string pad(static_cast<std::size_t>(indent) * 4, ' ');
    const bool is_root = key_.empty() && indent == 0;
    int child_indent = indent;
    if (!is_root) {
        out << pad << key_;
        if (!value_.empty()) {
            out << ' ';
            if (needsQuoting(value_)) {
                out << '"' << value_ << '"';
            } else {
                out << value_;
            }
        }
        if (!children_.empty()) out << " {";
        out << '\n';
        child_indent = indent + 1;
    }
    for (const auto& node : children_) out << node.toString(child_indent);
    if (!is_root && !children_.empty()) out << pad << "}\n";
    return out.str();
}

namespace {

// Token stream over the configuration text. Tokens are '{', '}', and words
// (quoted or bare). Tracks line and column numbers for error reporting and
// for the source locations attached to parsed nodes.
class Lexer {
  public:
    explicit Lexer(const std::string& text) : text_(text) {}

    struct Token {
        enum class Kind { kWord, kOpen, kClose, kEnd, kError } kind;
        std::string text;
        std::size_t line;
        std::size_t column;
    };

    Token next() {
        skipSpaceAndComments();
        if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", line_, column()};
        const std::size_t start_column = column();
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            return {Token::Kind::kOpen, "{", line_, start_column};
        }
        if (c == '}') {
            ++pos_;
            return {Token::Kind::kClose, "}", line_, start_column};
        }
        if (c == '"') {
            const std::size_t start_line = line_;
            ++pos_;
            std::string word;
            while (pos_ < text_.size() && text_[pos_] != '"') {
                if (text_[pos_] == '\n') {
                    ++line_;
                    line_start_ = pos_ + 1;
                }
                if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
                    ++pos_;  // simple escape: take the next char literally
                }
                word.push_back(text_[pos_++]);
            }
            if (pos_ >= text_.size()) {
                return {Token::Kind::kError, "unterminated string", start_line, start_column};
            }
            ++pos_;  // closing quote
            return {Token::Kind::kWord, word, start_line, start_column};
        }
        std::string word;
        while (pos_ < text_.size()) {
            const char d = text_[pos_];
            if (std::isspace(static_cast<unsigned char>(d)) || d == '{' || d == '}' || d == '"' ||
                d == '#' || d == ';') {
                break;
            }
            word.push_back(d);
            ++pos_;
        }
        return {Token::Kind::kWord, word, line_, start_column};
    }

    /// True if the rest of the current line holds nothing but whitespace,
    /// a comment, or a brace. Used to decide whether a word is a value.
    bool atLineEnd() {
        std::size_t p = pos_;
        while (p < text_.size() && text_[p] != '\n') {
            const char c = text_[p];
            if (c == '#' || c == ';') return true;
            if (!std::isspace(static_cast<unsigned char>(c))) return false;
            ++p;
        }
        return true;
    }

    std::size_t line() const { return line_; }
    /// 1-based column of the current position within its line.
    std::size_t column() const { return pos_ - line_start_ + 1; }

  private:
    void skipSpaceAndComments() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                line_start_ = pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '#' || c == ';') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
            } else {
                break;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t line_start_ = 0;
};

}  // namespace

namespace {

/// Records a parse failure with its source position; the message embeds the
/// line and column so callers that only print `error` still locate it.
ConfigParseResult& fail(ConfigParseResult& result, const std::string& message,
                        std::size_t line, std::size_t column) {
    std::ostringstream out;
    out << message << " (line " << line << ", column " << column << ")";
    result.error = out.str();
    result.error_line = line;
    result.error_column = column;
    return result;
}

}  // namespace

ConfigParseResult parseConfig(const std::string& text) {
    ConfigParseResult result;
    Lexer lexer(text);

    // Iterative parse with an explicit stack of open blocks.
    std::vector<ConfigNode*> stack{&result.root};
    while (true) {
        auto token = lexer.next();
        using Kind = Lexer::Token::Kind;
        if (token.kind == Kind::kEnd) break;
        if (token.kind == Kind::kError) {
            return fail(result, token.text, token.line, token.column);
        }
        if (token.kind == Kind::kClose) {
            if (stack.size() <= 1) {
                return fail(result, "unmatched '}'", token.line, token.column);
            }
            stack.pop_back();
            continue;
        }
        if (token.kind == Kind::kOpen) {
            return fail(result, "unexpected '{' without a key", token.line, token.column);
        }
        // A word: this is a key. It may be followed by a value word on the
        // same line, and/or an opening brace.
        ConfigNode& node = stack.back()->addChild(token.text);
        node.setLocation(token.line, token.column);
        if (!lexer.atLineEnd()) {
            auto value_token = lexer.next();
            if (value_token.kind == Kind::kError) {
                return fail(result, value_token.text, value_token.line,
                            value_token.column);
            }
            if (value_token.kind == Kind::kOpen) {
                stack.push_back(&node);
                continue;
            }
            if (value_token.kind == Kind::kClose) {
                return fail(result, "unexpected '}' after key", value_token.line,
                            value_token.column);
            }
            if (value_token.kind == Kind::kWord) {
                node.setValue(value_token.text);
            }
        }
        // Check for an opening brace (possibly on the next line).
        if (!lexer.atLineEnd()) {
            auto brace = lexer.next();
            if (brace.kind == Kind::kOpen) {
                stack.push_back(&node);
                continue;
            }
            return fail(result, "expected '{' or end of line after value", brace.line,
                        brace.column);
        }
        // Peek across the newline: an opening brace may start the next line.
        // We emulate a one-token peek by tentatively reading and replaying is
        // not possible with this lexer, so we accept only same-line braces and
        // the common `key value {` / `key {` forms, which DCDB configs use.
    }
    if (stack.size() != 1) {
        return fail(result, "unterminated block (missing '}')", lexer.line(),
                    lexer.column());
    }
    result.ok = true;
    return result;
}

ConfigParseResult parseConfigFile(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) {
        ConfigParseResult result;
        result.error = "cannot open file: " + path;
        result.source = path;
        return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ConfigParseResult result = parseConfig(buffer.str());
    result.source = path;
    return result;
}

}  // namespace wm::common
