#include "common/sched_hooks.h"

namespace wm::common::schedhooks {

#ifdef WM_SCHED_CHECK
namespace detail {
thread_local ModelHooks* t_current = nullptr;
}  // namespace detail
#endif

}  // namespace wm::common::schedhooks
