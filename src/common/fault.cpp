#include "common/fault.h"

#include <chrono>

#include "common/string_utils.h"

namespace wm::common::fault {

std::atomic<FaultInjector*> FaultInjector::global_{nullptr};

namespace {

/// Parses "<dur>..<dur>" into a window; returns false on malformed input.
bool parseWindow(const std::string& text, TimestampNs& start, TimestampNs& end) {
    const std::size_t sep = text.find("..");
    if (sep == std::string::npos) return false;
    const auto lo = parseDuration(text.substr(0, sep));
    const auto hi = parseDuration(text.substr(sep + 2));
    if (!lo || !hi || *hi < *lo) return false;
    start = *lo;
    end = *hi;
    return true;
}

}  // namespace

std::optional<FaultSpec> parseFaultSpec(const std::string& text) {
    const std::vector<std::string> tokens = split(trim(text), ' ');
    if (tokens.empty() || tokens[0].empty()) return std::nullopt;

    FaultSpec spec;
    if (tokens[0] == "fail") {
        spec.action = Action::kFail;
    } else if (tokens[0] == "delay") {
        spec.action = Action::kDelay;
    } else if (tokens[0] == "drop") {
        spec.action = Action::kDrop;
    } else {
        return std::nullopt;
    }

    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.empty()) continue;
        if (token == "once") {
            spec.trigger = Trigger::kOnce;
            continue;
        }
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) return std::nullopt;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (value.empty()) return std::nullopt;
        try {
            if (key == "prob") {
                spec.trigger = Trigger::kProbability;
                spec.probability = std::stod(value);
                if (spec.probability < 0.0 || spec.probability > 1.0) return std::nullopt;
            } else if (key == "every") {
                spec.trigger = Trigger::kEveryN;
                spec.every_n = std::stoull(value);
                if (spec.every_n == 0) return std::nullopt;
            } else if (key == "window") {
                spec.trigger = Trigger::kWindow;
                if (!parseWindow(value, spec.window_start_ns, spec.window_end_ns)) {
                    return std::nullopt;
                }
            } else if (key == "delay") {
                const auto parsed = parseDuration(value);
                if (!parsed) return std::nullopt;
                spec.delay_ns = *parsed;
            } else if (key == "limit") {
                spec.max_fires = std::stoull(value);
                if (spec.max_fires == 0) return std::nullopt;
            } else {
                return std::nullopt;
            }
        } catch (...) {
            return std::nullopt;
        }
    }
    return spec;
}

FaultInjector::FaultInjector(std::uint64_t seed, const ClockSource* clock)
    : rng_(seed), clock_(clock) {}

FaultInjector::~FaultInjector() {
    // Never leave a dangling global pointer behind.
    FaultInjector* self = this;
    global_.compare_exchange_strong(self, nullptr);
}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
    MutexLock lock(mutex_);
    Point& entry = points_[point];
    entry.spec = spec;
    entry.armed = true;
    entry.evaluations = 0;
    entry.fires = 0;
}

bool FaultInjector::armFromText(const std::string& point, const std::string& spec_text) {
    const auto spec = parseFaultSpec(spec_text);
    if (!spec) return false;
    arm(point, *spec);
    return true;
}

void FaultInjector::disarm(const std::string& point) {
    MutexLock lock(mutex_);
    auto it = points_.find(point);
    if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::reset() {
    MutexLock lock(mutex_);
    points_.clear();
}

Decision FaultInjector::evaluate(const std::string& point) {
    MutexLock lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return {};
    Point& entry = it->second;
    ++entry.evaluations;

    const FaultSpec& spec = entry.spec;
    if (spec.max_fires != 0 && entry.fires >= spec.max_fires) return {};

    bool fire = false;
    switch (spec.trigger) {
        case Trigger::kAlways:
            fire = true;
            break;
        case Trigger::kProbability:
            fire = rng_.bernoulli(spec.probability);
            break;
        case Trigger::kOnce:
            fire = entry.fires == 0;
            break;
        case Trigger::kEveryN:
            fire = entry.evaluations % spec.every_n == 0;
            break;
        case Trigger::kWindow: {
            const TimestampNs now =
                clock_ != nullptr ? clock_->now() : globalClock().now();
            fire = now >= spec.window_start_ns && now < spec.window_end_ns;
            break;
        }
    }
    if (!fire) return {};
    ++entry.fires;
    return {true, spec.action, spec.delay_ns};
}

PointStats FaultInjector::stats(const std::string& point) const {
    MutexLock lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end()) return {};
    return {it->second.evaluations, it->second.fires};
}

std::size_t FaultInjector::armedCount() const {
    MutexLock lock(mutex_);
    std::size_t count = 0;
    for (const auto& [name, entry] : points_) {
        if (entry.armed) ++count;
    }
    return count;
}

void applyDelay(TimestampNs delay_ns) {
    if (delay_ns <= 0) return;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay_ns);
    while (std::chrono::steady_clock::now() < until) {
    }
}

}  // namespace wm::common::fault
