#pragma once

// wm::common::Thread — the only sanctioned way to spawn a thread outside
// src/common/ (enforced by tools/lint.py rule `raw-thread`). A thin wrapper
// over std::thread with std::thread semantics (terminate on destruction
// while joinable), plus one extra property: when the *spawning* thread is
// part of a wm::sched model-check run, the child is registered with the
// checker and its body is rewrapped in the checker's trampoline, so the
// child becomes a controlled model thread too. Outside model runs the
// wrapper is a plain std::thread.

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/sched_hooks.h"

namespace wm::common {

/// Thread identity for code outside src/common/ (where the raw
/// std::thread vocabulary is lint-banned); compare against
/// Thread::currentId().
using ThreadId = std::thread::id;

class Thread {
  public:
    Thread() noexcept = default;

    /// Spawns a thread running `body`. `name` is a static string used in
    /// model-checker traces and failure reports; it is ignored outside
    /// model runs.
    explicit Thread(std::function<void()> body, const char* name = "thread") {
        if (auto* hooks = schedhooks::current()) {
            model_token_ = hooks->threadSpawn(body, name);
        }
        thread_ = std::thread(std::move(body));
    }

    Thread(Thread&& other) noexcept
        : thread_(std::move(other.thread_)), model_token_(other.model_token_) {
        other.model_token_ = 0;
    }

    Thread& operator=(Thread&& other) {
        thread_ = std::move(other.thread_);  // terminates if *this is joinable
        model_token_ = other.model_token_;
        other.model_token_ = 0;
        return *this;
    }

    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    bool joinable() const noexcept { return thread_.joinable(); }

    void join() {
        if (model_token_ != 0) {
            if (auto* hooks = schedhooks::current()) {
                hooks->threadJoin(model_token_);
            }
            model_token_ = 0;
        }
        thread_.join();
    }

    void detach() {
        model_token_ = 0;
        thread_.detach();
    }

    ThreadId getId() const noexcept { return thread_.get_id(); }

    /// Id of the calling thread; the sanctioned std::this_thread::get_id()
    /// (the raw form is lint-banned outside src/common|check).
    static ThreadId currentId() noexcept { return std::this_thread::get_id(); }

    static unsigned hardwareConcurrency() noexcept {
        return std::thread::hardware_concurrency();
    }

    /// Schedule point under a model run; std::this_thread::yield otherwise.
    static void yield() {
        if (auto* hooks = schedhooks::current()) {
            hooks->yield();
            return;
        }
        std::this_thread::yield();
    }

    /// Virtual sleep under a model run (the model clock advances only when
    /// nothing else is runnable); a real sleep otherwise.
    template <typename Rep, typename Period>
    static void sleepFor(std::chrono::duration<Rep, Period> duration) {
        if (auto* hooks = schedhooks::current()) {
            hooks->sleepFor(
                std::chrono::duration_cast<std::chrono::nanoseconds>(duration).count());
            return;
        }
        std::this_thread::sleep_for(duration);
    }

  private:
    std::thread thread_;
    std::uint64_t model_token_ = 0;
};

}  // namespace wm::common
