#pragma once

// Periodic task scheduler driving the "Online" operational mode: sensor
// groups and online operators register a callback and an interval, and a
// single timer thread dispatches ticks to a ThreadPool. Intervals are aligned
// to the interval grid (DCDB aligns sampling to multiples of the interval so
// readings from different entities share timestamps and can be correlated).

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"

namespace wm::common {

using TaskId = std::uint64_t;

class PeriodicScheduler {
  public:
    /// The scheduler dispatches callbacks on `pool`; the caller keeps
    /// ownership of the pool, which must outlive the scheduler.
    explicit PeriodicScheduler(ThreadPool& pool);
    ~PeriodicScheduler();

    PeriodicScheduler(const PeriodicScheduler&) = delete;
    PeriodicScheduler& operator=(const PeriodicScheduler&) = delete;

    /// Registers a periodic task; the first tick fires at the next multiple
    /// of `interval_ns` on the wall clock (grid alignment). The callback
    /// receives the nominal tick timestamp. Returns a handle for cancel().
    TaskId schedulePeriodic(TimestampNs interval_ns,
                            std::function<void(TimestampNs)> callback);

    /// Registers a one-shot task firing `delay_ns` from now.
    TaskId scheduleOnce(TimestampNs delay_ns, std::function<void(TimestampNs)> callback);

    /// Cancels a task; pending dispatches may still run. Returns true if the
    /// task existed.
    bool cancel(TaskId id);

    /// Stops the timer thread; no further ticks fire after return.
    void stop();

    std::size_t taskCount() const;

  private:
    struct Task {
        TaskId id;
        TimestampNs interval_ns;  // 0 for one-shot
        TimestampNs next_fire;
        std::function<void(TimestampNs)> callback;
    };

    struct QueueEntry {
        TimestampNs fire_at;
        TaskId id;
        bool operator>(const QueueEntry& other) const {
            return fire_at > other.fire_at || (fire_at == other.fire_at && id > other.id);
        }
    };

    void timerLoop();

    ThreadPool& pool_;
    mutable Mutex mutex_{"PeriodicScheduler", LockRank::kScheduler};
    ConditionVariable cv_;
    std::map<TaskId, Task> tasks_ WM_GUARDED_BY(mutex_);
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_
        WM_GUARDED_BY(mutex_);
    TaskId next_id_ WM_GUARDED_BY(mutex_) = 1;
    bool stopping_ WM_GUARDED_BY(mutex_) = false;
    Thread timer_thread_;  // started in the constructor, joined in stop()
};

}  // namespace wm::common
