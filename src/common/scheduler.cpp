#include "common/scheduler.h"

#include <chrono>

namespace wm::common {

namespace {

/// Next multiple of `interval` strictly after `now` (grid alignment).
TimestampNs alignToGrid(TimestampNs now, TimestampNs interval) {
    if (interval <= 0) return now;
    return ((now / interval) + 1) * interval;
}

}  // namespace

PeriodicScheduler::PeriodicScheduler(ThreadPool& pool) : pool_(pool) {
    timer_thread_ = Thread([this] { timerLoop(); }, "PeriodicScheduler.timer");
}

PeriodicScheduler::~PeriodicScheduler() {
    stop();
}

TaskId PeriodicScheduler::schedulePeriodic(TimestampNs interval_ns,
                                           std::function<void(TimestampNs)> callback) {
    if (interval_ns <= 0) interval_ns = kNsPerSec;
    MutexLock lock(mutex_);
    const TaskId id = next_id_++;
    const TimestampNs first = alignToGrid(nowNs(), interval_ns);
    tasks_[id] = Task{id, interval_ns, first, std::move(callback)};
    queue_.push({first, id});
    cv_.notify_all();
    return id;
}

TaskId PeriodicScheduler::scheduleOnce(TimestampNs delay_ns,
                                       std::function<void(TimestampNs)> callback) {
    MutexLock lock(mutex_);
    const TaskId id = next_id_++;
    const TimestampNs fire = nowNs() + (delay_ns > 0 ? delay_ns : 0);
    tasks_[id] = Task{id, 0, fire, std::move(callback)};
    queue_.push({fire, id});
    cv_.notify_all();
    return id;
}

bool PeriodicScheduler::cancel(TaskId id) {
    MutexLock lock(mutex_);
    return tasks_.erase(id) > 0;
}

void PeriodicScheduler::stop() {
    {
        MutexLock lock(mutex_);
        if (stopping_) return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (timer_thread_.joinable()) timer_thread_.join();
}

std::size_t PeriodicScheduler::taskCount() const {
    MutexLock lock(mutex_);
    return tasks_.size();
}

void PeriodicScheduler::timerLoop() {
    for (;;) {
        std::function<void()> dispatch;
        {
            MutexLock lock(mutex_);
            if (stopping_) return;
            if (queue_.empty()) {
                while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
                continue;
            }
            const QueueEntry entry = queue_.top();
            const TimestampNs now = nowNs();
            if (entry.fire_at > now) {
                // Sleep in bounded slices so a VirtualClock driven externally
                // still makes progress; real-time waits wake exactly on time.
                const TimestampNs wait_ns =
                    std::min<TimestampNs>(entry.fire_at - now, kNsPerMs * 50);
                cv_.wait_for(mutex_, std::chrono::nanoseconds(wait_ns));
                continue;
            }
            queue_.pop();
            auto it = tasks_.find(entry.id);
            if (it == tasks_.end()) continue;  // cancelled
            Task& task = it->second;
            if (entry.fire_at != task.next_fire) continue;  // stale queue entry
            auto callback = task.callback;
            const TimestampNs nominal = task.next_fire;
            if (task.interval_ns > 0) {
                // Skip missed ticks instead of bursting to catch up.
                task.next_fire = alignToGrid(std::max(now, task.next_fire), task.interval_ns);
                queue_.push({task.next_fire, task.id});
            } else {
                tasks_.erase(it);
            }
            dispatch = [callback = std::move(callback), nominal] { callback(nominal); };
        }
        // Dispatch outside the scheduler lock: the pool takes its own lock,
        // and callbacks must be free to call back into the scheduler.
        pool_.post(std::move(dispatch));
    }
}

}  // namespace wm::common
