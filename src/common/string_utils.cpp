#include "common/string_utils.h"

#include <algorithm>
#include <cctype>

namespace wm::common {

std::vector<std::string> split(std::string_view text, char sep, bool keep_empty) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(sep, start);
        if (end == std::string_view::npos) end = text.size();
        if (end > start || keep_empty) parts.emplace_back(text.substr(start, end - start));
        if (end == text.size()) break;
        start = end + 1;
    }
    // Handle a trailing separator when keeping empties.
    if (keep_empty && !text.empty() && text.back() == sep) parts.emplace_back();
    return parts;
}

std::string join(const std::vector<std::string>& parts, char sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out.push_back(sep);
        out += parts[i];
    }
    return out;
}

std::string trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return std::string(text.substr(begin, end - begin));
}

bool startsWith(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string toLower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string normalizePath(std::string_view path) {
    std::string out = "/";
    for (const auto& segment : split(path, '/')) {
        if (out.size() > 1) out.push_back('/');
        out += segment;
    }
    return out;
}

std::vector<std::string> pathSegments(std::string_view path) {
    return split(path, '/');
}

std::string pathLeaf(std::string_view path) {
    auto segments = pathSegments(path);
    return segments.empty() ? std::string() : segments.back();
}

std::string pathParent(std::string_view path) {
    auto segments = pathSegments(path);
    if (segments.size() <= 1) return "/";
    segments.pop_back();
    return "/" + join(segments, '/');
}

std::string pathJoin(std::string_view base, std::string_view leaf) {
    std::string combined(base);
    combined.push_back('/');
    combined += leaf;
    return normalizePath(combined);
}

namespace {

/// True when `p` is already canonical: leading '/', no empty segments, no
/// trailing slash (except the bare root).
bool isCanonicalPath(std::string_view p) {
    if (p.empty() || p.front() != '/') return false;
    if (p.size() == 1) return true;
    if (p.back() == '/') return false;
    return p.find("//") == std::string_view::npos;
}

bool isPathAncestorCanonical(std::string_view a, std::string_view p) {
    if (a == "/") return true;
    if (a.size() > p.size()) return false;
    if (p.substr(0, a.size()) != a) return false;
    return p.size() == a.size() || p[a.size()] == '/';
}

}  // namespace

bool isPathAncestor(std::string_view ancestor, std::string_view path) {
    // Allocation-free fast path: unit resolution calls this for every
    // (domain node, unit) pair, and tree-derived paths are always canonical.
    if (isCanonicalPath(ancestor) && isCanonicalPath(path)) {
        return isPathAncestorCanonical(ancestor, path);
    }
    const std::string a = normalizePath(ancestor);
    const std::string p = normalizePath(path);
    return isPathAncestorCanonical(a, p);
}

std::size_t pathDepth(std::string_view path) {
    return pathSegments(path).size();
}

}  // namespace wm::common
