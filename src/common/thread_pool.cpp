#include "common/thread_pool.h"

namespace wm::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); }, "ThreadPool.worker");
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    // Wake workers (to drain and exit) and any waitIdle() callers: the pool
    // still drains accepted tasks, so waiters see the queue empty out.
    cv_.notify_all();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
}

void ThreadPool::post(std::function<void()> func) {
    {
        MutexLock lock(mutex_);
        if (stopping_) throw std::runtime_error("ThreadPool: post after shutdown");
        tasks_.push(std::move(func));
    }
    cv_.notify_one();
}

void ThreadPool::waitIdle() {
    MutexLock lock(mutex_);
    while (!(tasks_.empty() && active_ == 0)) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::pendingTasks() const {
    MutexLock lock(mutex_);
    return tasks_.size();
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
            ++active_;
        }
        try {
            task();
        } catch (...) {
            // Tasks must not take down a worker; exceptions surface via the
            // future for submit(), and are swallowed for post().
        }
        {
            // The decrement and the idle notification happen under one lock
            // hold: a waitIdle() caller either observes active_ > 0 and goes
            // (back) to sleep before the notify, or observes the final state
            // directly — there is no window for a missed wakeup.
            MutexLock lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

}  // namespace wm::common
