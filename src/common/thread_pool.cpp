#include "common/thread_pool.h"

namespace wm::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
}

void ThreadPool::post(std::function<void()> func) {
    {
        std::lock_guard lock(mutex_);
        if (stopping_) throw std::runtime_error("ThreadPool: post after shutdown");
        tasks_.push(std::move(func));
    }
    cv_.notify_one();
}

void ThreadPool::waitIdle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pendingTasks() const {
    std::lock_guard lock(mutex_);
    return tasks_.size();
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
            ++active_;
        }
        try {
            task();
        } catch (...) {
            // Tasks must not take down a worker; exceptions surface via the
            // future for submit(), and are swallowed for post().
        }
        {
            std::lock_guard lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

}  // namespace wm::common
