#include "common/time_utils.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>

namespace wm::common {

TimestampNs SystemClock::now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

namespace {
SystemClock& systemClockInstance() {
    static SystemClock clock;
    return clock;
}
std::atomic<ClockSource*> g_clock{nullptr};
}  // namespace

ClockSource& globalClock() {
    ClockSource* clock = g_clock.load(std::memory_order_acquire);
    return clock != nullptr ? *clock : systemClockInstance();
}

void setGlobalClock(ClockSource* clock) {
    g_clock.store(clock, std::memory_order_release);
}

TimestampNs nowNs() {
    return globalClock().now();
}

std::optional<TimestampNs> parseDuration(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::size_t pos = 0;
    // Parse the numeric part (integral or decimal).
    bool seen_digit = false;
    bool seen_dot = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
        if (text[pos] == '.') {
            if (seen_dot) return std::nullopt;
            seen_dot = true;
        } else {
            seen_digit = true;
        }
        ++pos;
    }
    if (!seen_digit) return std::nullopt;
    double value = 0.0;
    try {
        value = std::stod(text.substr(0, pos));
    } catch (...) {
        return std::nullopt;
    }
    std::string unit = text.substr(pos);
    double scale = 0.0;
    if (unit.empty() || unit == "ms") {
        scale = static_cast<double>(kNsPerMs);
    } else if (unit == "ns") {
        scale = 1.0;
    } else if (unit == "us") {
        scale = static_cast<double>(kNsPerUs);
    } else if (unit == "s") {
        scale = static_cast<double>(kNsPerSec);
    } else if (unit == "m" || unit == "min") {
        scale = static_cast<double>(kNsPerMin);
    } else if (unit == "h") {
        scale = static_cast<double>(kNsPerHour);
    } else if (unit == "d") {
        scale = static_cast<double>(kNsPerDay);
    } else {
        return std::nullopt;
    }
    const double ns = value * scale;
    if (ns < 0 || ns > 9.2e18) return std::nullopt;
    return static_cast<TimestampNs>(ns);
}

std::string formatDuration(TimestampNs ns) {
    char buf[64];
    const char* unit = "ns";
    double value = static_cast<double>(ns);
    if (ns >= kNsPerDay) {
        value /= static_cast<double>(kNsPerDay);
        unit = "d";
    } else if (ns >= kNsPerHour) {
        value /= static_cast<double>(kNsPerHour);
        unit = "h";
    } else if (ns >= kNsPerMin) {
        value /= static_cast<double>(kNsPerMin);
        unit = "m";
    } else if (ns >= kNsPerSec) {
        value /= static_cast<double>(kNsPerSec);
        unit = "s";
    } else if (ns >= kNsPerMs) {
        value /= static_cast<double>(kNsPerMs);
        unit = "ms";
    } else if (ns >= kNsPerUs) {
        value /= static_cast<double>(kNsPerUs);
        unit = "us";
    }
    if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld%s", static_cast<long long>(value), unit);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s", value, unit);
    }
    return buf;
}

}  // namespace wm::common
