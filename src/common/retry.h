#pragma once

// Reusable retry policy: bounded exponential backoff with optional jitter.
//
// Built for the resilience layer (see docs/RESILIENCE.md): the Pusher
// paces republish attempts of buffered readings with it, and any component
// talking to a fallible peer can wrap the call in retryWithBackoff(). Two
// design rules keep every user deterministic and testable:
//
//  * jitter comes from an explicit common::Rng (seeded by the caller), and
//  * this header never sleeps — Backoff only *computes* delays. Callers
//    either compare `now + delay` against an injectable ClockSource
//    (non-blocking pacing, what the Pusher does) or hand
//    retryWithBackoff() a sleep callable (tests advance a VirtualClock).

#include <cstdint>
#include <utility>

#include "common/rng.h"
#include "common/time_utils.h"

namespace wm::common {

struct RetryPolicy {
    /// Total tries including the first; <= 0 means retry forever.
    int max_attempts = 5;
    TimestampNs initial_backoff_ns = 100 * kNsPerMs;
    /// Backoff grows by this factor per retry, capped at max_backoff_ns.
    double multiplier = 2.0;
    TimestampNs max_backoff_ns = 5 * kNsPerSec;
    /// Uniform jitter fraction: each delay is scaled by a factor drawn
    /// from [1 - jitter, 1 + jitter]. 0 disables (and needs no Rng).
    double jitter = 0.0;
};

/// Backoff schedule for one logical operation. Not thread-safe; guard it
/// with the owning component's lock.
class Backoff {
  public:
    /// `rng` is only consulted when policy.jitter > 0; it must outlive
    /// this object.
    explicit Backoff(RetryPolicy policy, Rng* rng = nullptr)
        : policy_(policy), rng_(rng) {}

    /// Delay to wait before the next retry; advances the attempt count.
    TimestampNs nextDelayNs() {
        TimestampNs delay = policy_.initial_backoff_ns;
        for (int i = 0; i < retries_; ++i) {
            delay = static_cast<TimestampNs>(static_cast<double>(delay) *
                                             policy_.multiplier);
            if (delay >= policy_.max_backoff_ns) break;
        }
        if (delay > policy_.max_backoff_ns) delay = policy_.max_backoff_ns;
        if (policy_.jitter > 0.0 && rng_ != nullptr) {
            delay = static_cast<TimestampNs>(
                static_cast<double>(delay) *
                rng_->uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter));
        }
        ++retries_;
        return delay;
    }

    /// True once the retry budget (max_attempts - 1 retries) is spent.
    bool exhausted() const {
        return policy_.max_attempts > 0 && retries_ >= policy_.max_attempts - 1;
    }

    /// Retries granted so far.
    int retries() const { return retries_; }

    /// Back to the initial delay (after a success).
    void reset() { retries_ = 0; }

  private:
    RetryPolicy policy_;
    Rng* rng_;
    int retries_ = 0;
};

struct RetryResult {
    bool ok = false;
    int attempts = 0;
    TimestampNs total_backoff_ns = 0;
};

/// Calls `fn` (returning truthy on success) up to policy.max_attempts
/// times, invoking `sleep(delay_ns)` between attempts. The sleep callable
/// owns the waiting strategy: wall-clock sleep in production, advancing a
/// VirtualClock in tests.
template <typename Fn, typename SleepFn>
RetryResult retryWithBackoff(const RetryPolicy& policy, Rng& rng, Fn&& fn,
                             SleepFn&& sleep) {
    RetryResult result;
    Backoff backoff(policy, &rng);
    for (;;) {
        ++result.attempts;
        if (fn()) {
            result.ok = true;
            return result;
        }
        if (backoff.exhausted()) return result;
        const TimestampNs delay = backoff.nextDelayNs();
        result.total_backoff_ns += delay;
        sleep(delay);
    }
}

}  // namespace wm::common
