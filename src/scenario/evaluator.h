#pragma once

// Scores operator detections against a scenario's ground-truth label stream
// (docs/SCENARIOS.md, "Scoring semantics"). The evaluator reads each
// detector's output series through the Query Engine, folds it into
// detection events (maximal runs of consecutive triggered readings at or
// after the warmup mark), and matches events against ground-truth windows
// with the configured tolerance:
//
//   * a window is DETECTED when any event on one of its nodes overlaps
//     [start - tolerance, end + tolerance]; detection lag is the first
//     matching event's onset minus the window start (clamped at 0);
//   * an event matching no window at all is a FALSE POSITIVE;
//   * a window whose observable history starts only after the window (plus
//     tolerance) has already passed — series evicted from the retained
//     cache window, or never stored — is TRUNCATED, reported separately
//     and excluded from the recall denominator instead of silently
//     scoring as missed.
//
// Per (detector, class): precision = tp_events / (tp_events + detector
// false positives), recall = detected / (windows - truncated), F1, and the
// median detection lag over detected windows.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "scenario/script.h"

namespace wm::scenario {

/// A maximal run of consecutive triggered readings on one detector topic.
struct DetectionEvent {
    std::string topic;
    /// Node index for "%node"-expanded topics; npos for absolute topics
    /// (facility-scope: matches windows on any node).
    std::size_t node = static_cast<std::size_t>(-1);
    double start_s = 0.0;
    double end_s = 0.0;
    bool matched = false;
};

struct ClassScore {
    std::size_t windows = 0;
    std::size_t detected = 0;
    std::size_t missed = 0;
    std::size_t truncated = 0;
    std::size_t tp_events = 0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    /// Median detection lag over detected windows; -1 when none detected.
    double median_lag_s = -1.0;
    std::vector<double> lags_s;
};

struct DetectorScore {
    std::string detector;
    std::string operator_name;
    std::string topic;
    std::size_t events_total = 0;
    std::size_t events_matched = 0;
    std::size_t false_positives = 0;
    double precision = 0.0;
    std::size_t truncated_windows = 0;
    /// Keyed by stable class name for deterministic iteration.
    std::map<std::string, ClassScore> classes;
};

struct EvaluationReport {
    std::string scenario;
    std::uint64_t seed = 0;
    double duration_s = 0.0;
    double warmup_s = 0.0;
    double tolerance_s = 0.0;
    std::map<std::string, std::size_t> windows_by_class;
    /// Sum of per-detector truncated-window counts (satellite: label loss
    /// must be visible, never scored as a miss).
    std::size_t truncated_windows = 0;
    std::vector<DetectorScore> detectors;
};

class Evaluator {
  public:
    /// `node_paths` in topology order — index i resolves "%node" for node i.
    Evaluator(ScenarioScript script, std::vector<std::string> node_paths);

    /// Scores every detector against `engine`'s view of the series history.
    EvaluationReport evaluate(const core::QueryEngine& engine) const;

    /// Fired/not-fired decision of one rule for a reading value.
    static bool triggerFires(const DetectorRule& rule, double value);

    /// Folds a series into detection events (testing seam; readings before
    /// `warmup_s` are ignored).
    static std::vector<DetectionEvent> extractEvents(
        const DetectorRule& rule, const std::string& topic, std::size_t node,
        const sensors::ReadingVector& readings, double warmup_s);

  private:
    ScenarioScript script_;
    std::vector<std::string> node_paths_;
};

/// Deterministic JSON for one scenario (fixed 6-decimal formatting, sorted
/// maps — byte-stable across runs at the same seed).
std::string renderReportJson(const EvaluationReport& report);

/// The BENCH_quality.json document: {"schema":"wintermute-quality-v1",
/// "scenarios":[...]} over all evaluated scenarios.
std::string renderQualityJson(const std::vector<EvaluationReport>& reports);

}  // namespace wm::scenario
