#include "scenario/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

namespace wm::scenario {
namespace {

constexpr double kNsPerSec = 1e9;
constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

// Fixed-precision rendering: BENCH_quality.json must be byte-stable across
// runs at the same seed, so every double goes through the same printf path.
std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

const char* triggerKindName(TriggerKind kind) {
    switch (kind) {
        case TriggerKind::kBelow: return "below";
        case TriggerKind::kAbove: return "above";
        case TriggerKind::kEquals: return "equals";
        case TriggerKind::kNotEquals: return "not-equals";
    }
    return "below";
}

std::string expandTopic(const std::string& tmpl, const std::string& node_path) {
    std::string out = tmpl;
    const std::string placeholder = "%node";
    for (std::size_t pos = out.find(placeholder); pos != std::string::npos;
         pos = out.find(placeholder, pos)) {
        out.replace(pos, placeholder.size(), node_path);
        pos += node_path.size();
    }
    return out;
}

bool windowCoversNode(const GroundTruthWindow& window, std::size_t node) {
    if (node == kNoNode) return true;  // facility-scope detector topic
    if (window.nodes.empty()) return true;
    return std::find(window.nodes.begin(), window.nodes.end(), node) != window.nodes.end();
}

bool eventOverlapsWindow(const DetectionEvent& event, const GroundTruthWindow& window,
                         double tolerance_s) {
    return event.start_s <= window.end_s + tolerance_s &&
           event.end_s >= window.start_s - tolerance_s;
}

double median(std::vector<double> values) {
    if (values.empty()) return -1.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1) return values[mid];
    return (values[mid - 1] + values[mid]) / 2.0;
}

}  // namespace

Evaluator::Evaluator(ScenarioScript script, std::vector<std::string> node_paths)
    : script_(std::move(script)), node_paths_(std::move(node_paths)) {}

bool Evaluator::triggerFires(const DetectorRule& rule, double value) {
    switch (rule.kind) {
        case TriggerKind::kBelow: return value < rule.threshold;
        case TriggerKind::kAbove: return value > rule.threshold;
        case TriggerKind::kEquals:
            return std::abs(value - rule.threshold) < 1e-9;
        case TriggerKind::kNotEquals:
            return std::abs(value - rule.threshold) >= 1e-9;
    }
    return false;
}

std::vector<DetectionEvent> Evaluator::extractEvents(const DetectorRule& rule,
                                                     const std::string& topic,
                                                     std::size_t node,
                                                     const sensors::ReadingVector& readings,
                                                     double warmup_s) {
    std::vector<DetectionEvent> events;
    bool open = false;
    for (const sensors::Reading& r : readings) {
        const double t_sec = static_cast<double>(r.timestamp) / kNsPerSec;
        if (t_sec < warmup_s) continue;
        if (triggerFires(rule, r.value)) {
            if (!open) {
                events.push_back({topic, node, t_sec, t_sec, false});
                open = true;
            } else {
                events.back().end_s = t_sec;
            }
        } else {
            open = false;
        }
    }
    return events;
}

EvaluationReport Evaluator::evaluate(const core::QueryEngine& engine) const {
    EvaluationReport report;
    report.scenario = script_.name;
    report.seed = script_.seed;
    report.duration_s = script_.duration_s;
    report.warmup_s = script_.warmup_s;
    report.tolerance_s = script_.tolerance_s;

    const std::vector<GroundTruthWindow> windows = script_.groundTruth();
    for (const GroundTruthWindow& w : windows)
        ++report.windows_by_class[anomalyClassName(w.cls)];

    const common::TimestampNs t1 =
        static_cast<common::TimestampNs>((script_.duration_s + 1.0) * kNsPerSec);

    for (const DetectorRule& rule : script_.detectors) {
        DetectorScore score;
        score.detector = rule.name;
        score.operator_name = rule.operator_name;
        score.topic = rule.topic;
        for (const AnomalyClass cls : allAnomalyClasses()) {
            if (report.windows_by_class.count(anomalyClassName(cls)) != 0)
                score.classes[anomalyClassName(cls)] = ClassScore{};
        }

        // Expand "%node" over the topology; absolute topics are one series
        // matching windows on any node.
        std::vector<std::pair<std::string, std::size_t>> topics;
        if (rule.topic.find("%node") != std::string::npos) {
            for (std::size_t n = 0; n < node_paths_.size(); ++n)
                topics.emplace_back(expandTopic(rule.topic, node_paths_[n]), n);
        } else {
            topics.emplace_back(rule.topic, kNoNode);
        }

        // First observable timestamp per series, for the truncation check:
        // a window is truncated when every series that could have witnessed
        // it only begins after the window (plus tolerance) already passed.
        std::vector<double> first_seen(topics.size(),
                                       std::numeric_limits<double>::infinity());
        std::vector<DetectionEvent> events;
        for (std::size_t i = 0; i < topics.size(); ++i) {
            const sensors::ReadingVector readings =
                engine.queryAbsolute(topics[i].first, 0, t1);
            if (!readings.empty())
                first_seen[i] = static_cast<double>(readings.front().timestamp) / kNsPerSec;
            auto topic_events = extractEvents(rule, topics[i].first, topics[i].second,
                                              readings, script_.warmup_s);
            events.insert(events.end(), topic_events.begin(), topic_events.end());
        }
        score.events_total = events.size();

        for (const GroundTruthWindow& window : windows) {
            ClassScore& cls_score = score.classes[anomalyClassName(window.cls)];
            ++cls_score.windows;

            double best_lag = -1.0;
            for (DetectionEvent& event : events) {
                if (!windowCoversNode(window, event.node)) continue;
                if (!eventOverlapsWindow(event, window, script_.tolerance_s)) continue;
                event.matched = true;
                const double lag = std::max(0.0, event.start_s - window.start_s);
                if (best_lag < 0.0 || lag < best_lag) best_lag = lag;
            }
            if (best_lag >= 0.0) {
                ++cls_score.detected;
                cls_score.lags_s.push_back(best_lag);
                continue;
            }

            // Undetected: truncated when no targeted series reaches back to
            // the window, missed otherwise.
            bool observable = false;
            for (std::size_t i = 0; i < topics.size(); ++i) {
                if (!windowCoversNode(window, topics[i].second)) continue;
                if (first_seen[i] <= window.end_s + script_.tolerance_s) {
                    observable = true;
                    break;
                }
            }
            if (observable) {
                ++cls_score.missed;
            } else {
                ++cls_score.truncated;
                ++score.truncated_windows;
            }
        }

        for (const DetectionEvent& event : events) {
            if (event.matched)
                ++score.events_matched;
            else
                ++score.false_positives;
        }
        const std::size_t matched_and_fp = score.events_matched + score.false_positives;
        score.precision =
            matched_and_fp == 0
                ? 1.0
                : static_cast<double>(score.events_matched) / static_cast<double>(matched_and_fp);

        for (auto& [cls_name, cls_score] : score.classes) {
            // tp_events: events matched to at least one window of this class.
            const std::optional<AnomalyClass> cls = anomalyClassFromName(cls_name);
            for (const DetectionEvent& event : events) {
                if (!event.matched) continue;
                bool of_class = false;
                for (const GroundTruthWindow& window : windows) {
                    if (cls && window.cls != *cls) continue;
                    if (windowCoversNode(window, event.node) &&
                        eventOverlapsWindow(event, window, script_.tolerance_s)) {
                        of_class = true;
                        break;
                    }
                }
                if (of_class) ++cls_score.tp_events;
            }
            const std::size_t p_denom = cls_score.tp_events + score.false_positives;
            cls_score.precision =
                p_denom == 0 ? 1.0
                             : static_cast<double>(cls_score.tp_events) /
                                   static_cast<double>(p_denom);
            const std::size_t scoreable = cls_score.windows - cls_score.truncated;
            cls_score.recall = scoreable == 0 ? 0.0
                                              : static_cast<double>(cls_score.detected) /
                                                    static_cast<double>(scoreable);
            const double pr = cls_score.precision + cls_score.recall;
            cls_score.f1 = pr > 0.0 ? 2.0 * cls_score.precision * cls_score.recall / pr : 0.0;
            cls_score.median_lag_s = median(cls_score.lags_s);
        }

        report.truncated_windows += score.truncated_windows;
        report.detectors.push_back(std::move(score));
    }
    return report;
}

std::string renderReportJson(const EvaluationReport& report) {
    std::ostringstream out;
    out << "{\"scenario\":\"" << report.scenario << "\",\"seed\":" << report.seed
        << ",\"duration_s\":" << fmt(report.duration_s)
        << ",\"warmup_s\":" << fmt(report.warmup_s)
        << ",\"tolerance_s\":" << fmt(report.tolerance_s) << ",\"ground_truth\":{";
    std::size_t total = 0;
    bool first = true;
    for (const auto& [name, count] : report.windows_by_class) {
        if (!first) out << ",";
        first = false;
        out << "\"" << name << "\":" << count;
        total += count;
    }
    out << "},\"windows_total\":" << total
        << ",\"truncated_windows\":" << report.truncated_windows << ",\"operators\":[";
    for (std::size_t d = 0; d < report.detectors.size(); ++d) {
        const DetectorScore& score = report.detectors[d];
        if (d != 0) out << ",";
        out << "{\"detector\":\"" << score.detector << "\",\"operator\":\""
            << score.operator_name << "\",\"topic\":\"" << score.topic
            << "\",\"events_total\":" << score.events_total
            << ",\"events_matched\":" << score.events_matched
            << ",\"false_positives\":" << score.false_positives
            << ",\"precision\":" << fmt(score.precision)
            << ",\"truncated_windows\":" << score.truncated_windows << ",\"classes\":[";
        bool first_cls = true;
        for (const auto& [cls_name, cls] : score.classes) {
            if (!first_cls) out << ",";
            first_cls = false;
            out << "{\"class\":\"" << cls_name << "\",\"windows\":" << cls.windows
                << ",\"detected\":" << cls.detected << ",\"missed\":" << cls.missed
                << ",\"truncated\":" << cls.truncated << ",\"tp_events\":" << cls.tp_events
                << ",\"precision\":" << fmt(cls.precision)
                << ",\"recall\":" << fmt(cls.recall) << ",\"f1\":" << fmt(cls.f1)
                << ",\"median_lag_s\":" << fmt(cls.median_lag_s) << "}";
        }
        out << "]}";
    }
    out << "]}";
    return out.str();
}

std::string renderQualityJson(const std::vector<EvaluationReport>& reports) {
    std::ostringstream out;
    out << "{\"schema\":\"wintermute-quality-v1\",\"scenarios\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i != 0) out << ",";
        out << renderReportJson(reports[i]);
    }
    out << "]}\n";
    return out.str();
}

}  // namespace wm::scenario
