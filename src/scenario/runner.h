#pragma once

// In-process end-to-end harness for scenario campaigns: stands up the full
// data path (simulated nodes -> Pushers -> synchronous MQTT broker ->
// Collect Agent -> storage) with Wintermute operators hosted on both sides,
// replays the scenario's anomaly schedule on the deterministic virtual
// clock, and scores the configured detectors with scenario::Evaluator.
//
// Everything is driven synchronously — no threads, no wall-clock reads —
// so a run at a fixed seed is bit-reproducible, reading for reading
// (BENCH_quality.json is byte-stable across runs).

#include <memory>
#include <string>
#include <vector>

#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "core/operator_manager.h"
#include "core/query_engine.h"
#include "jobs/job_manager.h"
#include "mqtt/broker.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/pusher.h"
#include "pusher/sim_node.h"
#include "scenario/evaluator.h"
#include "scenario/script.h"
#include "simulator/topology.h"
#include "storage/storage_backend.h"

namespace wm::scenario {

class ScenarioRunner {
  public:
    /// `root` supplies the surrounding deployment: `cluster` (topology and
    /// background app), `pusher` (sampling interval, cache window) and
    /// `plugin` blocks, exactly as wintermuted reads them.
    ScenarioRunner(ScenarioScript script, const common::ConfigNode& root);

    /// Builds the cluster, replays the campaign tick by tick, and scores the
    /// detectors. `error` (when given) receives a message on failure.
    EvaluationReport run(std::string* error = nullptr);

    const simulator::Topology& topology() const { return topology_; }
    const core::QueryEngine& agentEngine() const { return agent_engine_; }

  private:
    bool build(const common::ConfigNode& root, std::string* error);
    void tick(common::TimestampNs t_ns, double t_sec);

    ScenarioScript script_;
    const common::ConfigNode root_;

    simulator::Topology topology_;
    mqtt::Broker broker_;
    storage::StorageBackend storage_;
    jobs::JobManager jobs_;
    std::unique_ptr<collectagent::CollectAgent> agent_;
    pusher::SimulatedFacilityPtr facility_;
    std::vector<std::shared_ptr<pusher::SimulatedNode>> nodes_;
    std::vector<std::unique_ptr<pusher::Pusher>> pushers_;
    std::vector<std::unique_ptr<core::QueryEngine>> pusher_engines_;
    std::vector<std::unique_ptr<core::OperatorManager>> pusher_managers_;
    core::QueryEngine agent_engine_;
    std::unique_ptr<core::OperatorManager> agent_manager_;
};

/// Parses and runs every `scenario` block under `root` in file order.
/// Scenarios that fail to parse or build are skipped with a message on
/// stderr; the returned reports preserve order.
std::vector<EvaluationReport> runScenarios(const common::ConfigNode& root);

}  // namespace wm::scenario
