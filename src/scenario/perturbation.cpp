#include "scenario/perturbation.h"

#include <algorithm>

namespace wm::scenario {

double eventEnvelope(const AnomalyEvent& event, double t_sec) {
    if (t_sec < event.start_s || t_sec > event.end_s) return 0.0;
    if (event.ramp_s <= 0.0) return 1.0;
    return std::min((t_sec - event.start_s) / event.ramp_s, 1.0);
}

bool eventTargetsNode(const AnomalyEvent& event, std::size_t node) {
    if (event.nodes.empty()) return true;
    return std::find(event.nodes.begin(), event.nodes.end(), node) != event.nodes.end();
}

simulator::NodePerturbation nodePerturbationAt(const ScenarioScript& script,
                                               std::size_t node, double t_sec) {
    simulator::NodePerturbation p;
    double congestion_fraction = 0.0;
    for (const AnomalyEvent& event : script.anomalies) {
        if (!eventTargetsNode(event, node)) continue;
        const double env = eventEnvelope(event, t_sec);
        if (env <= 0.0) continue;
        switch (event.cls) {
            case AnomalyClass::kThermalRunaway:
                p.temp_offset_c += event.magnitude * env;
                break;
            case AnomalyClass::kFanFailure:
                // magnitude = degC/W multiplier at full onset.
                p.cooling_factor *= 1.0 + (event.magnitude - 1.0) * env;
                break;
            case AnomalyClass::kMemoryLeak:
                p.memory_leak_gb += event.magnitude * env;
                break;
            case AnomalyClass::kNetworkCongestion:
                p.cpi_factor *= 1.0 + (event.magnitude - 1.0) * env;
                // The widest configured tail wins when events overlap.
                congestion_fraction = std::max(congestion_fraction, event.core_fraction);
                break;
            case AnomalyClass::kStraggler:
                p.util_factor *= std::clamp(1.0 - event.magnitude * env, 0.0, 1.0);
                break;
        }
    }
    if (congestion_fraction > 0.0) p.core_fraction = congestion_fraction;
    return p;
}

simulator::FacilityPerturbation facilityPerturbationAt(const ScenarioScript& script,
                                                       double t_sec) {
    simulator::FacilityPerturbation p;
    for (const AnomalyEvent& event : script.anomalies) {
        if (event.cls != AnomalyClass::kThermalRunaway || !event.facility) continue;
        p.inlet_offset_c += event.magnitude / 3.0 * eventEnvelope(event, t_sec);
    }
    return p;
}

double anomalyLabelAt(const ScenarioScript& script, std::size_t node, double t_sec) {
    int label = 0;
    for (const AnomalyEvent& event : script.anomalies) {
        if (!eventTargetsNode(event, node)) continue;
        if (t_sec < event.start_s || t_sec > event.end_s) continue;
        label = std::max(label, static_cast<int>(event.cls));
    }
    return static_cast<double>(label);
}

}  // namespace wm::scenario
