#pragma once

// Maps a scenario's anomaly schedule to the physics perturbations of the
// simulator at a point in virtual time. Pure functions of (script, node,
// t): the runner calls them once per tick, and determinism tests replay
// them against fixed seeds. Overlapping events compose — offsets add,
// factors multiply — so a campaign day can stack failures.

#include <cstddef>

#include "scenario/script.h"
#include "simulator/facility_model.h"
#include "simulator/node_model.h"

namespace wm::scenario {

/// Linear-onset envelope of an event at time `t_sec`: 0 outside the window,
/// ramping to 1 over `ramp_s`, 1 afterwards.
double eventEnvelope(const AnomalyEvent& event, double t_sec);

/// True when `event` targets node `node` (empty selector = every node).
bool eventTargetsNode(const AnomalyEvent& event, std::size_t node);

/// Combined perturbation of all events active on `node` at `t_sec`.
simulator::NodePerturbation nodePerturbationAt(const ScenarioScript& script,
                                               std::size_t node, double t_sec);

/// Facility-side component (thermal_runaway events with `facility true`).
simulator::FacilityPerturbation facilityPerturbationAt(const ScenarioScript& script,
                                                       double t_sec);

/// Ground-truth label for the "<node>/anomaly-label" sensor: 0 healthy,
/// otherwise the numeric class id of the most severe active anomaly
/// (highest class id wins on overlap).
double anomalyLabelAt(const ScenarioScript& script, std::size_t node, double t_sec);

}  // namespace wm::scenario
