#pragma once

// Scenario scripts (docs/SCENARIOS.md): labeled anomaly campaigns on the
// deterministic virtual clock. A `.scn` file is a regular INFO-style
// configuration (common/config) that combines the usual `cluster`/`pusher`/
// `plugin` blocks with one or more `scenario` blocks:
//
//   scenario thermal-runaway-drill {
//       seed 4242
//       duration 180s         # virtual length of the campaign
//       warmup 30s            # readings before this are never scored
//       tolerance 20s         # detection window slack in both directions
//       anomaly thermal_runaway {
//           start 60s
//           end 120s
//           nodes 1           # "all", "1,3" or "0-2"; default all
//           ramp 20s          # linear onset; 0 = step
//           magnitude 30      # class-specific units, see the catalog
//       }
//       detector hc-temp {
//           operator hc       # plugin block whose output this watches
//           topic "%node/healthy"
//           trigger "below 0.5"
//       }
//   }
//
// Each anomaly class maps to a composable physics perturbation
// (simulator::NodePerturbation / FacilityPerturbation, see
// scenario/perturbation.h); the ground-truth label stream derives from the
// anomaly windows. wm-check validates scenario blocks statically with the
// WM08xx diagnostic codes (docs/CONFIGURATION.md).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "common/config.h"

namespace wm::scenario {

/// The production failure classes of the ODA-in-practice catalog.
enum class AnomalyClass {
    kThermalRunaway = 1,
    kFanFailure = 2,
    kMemoryLeak = 3,
    kNetworkCongestion = 4,
    kStraggler = 5,
};

/// Stable config/JSON name ("thermal_runaway", ...).
const char* anomalyClassName(AnomalyClass cls);
std::optional<AnomalyClass> anomalyClassFromName(const std::string& name);
/// All classes in id order (catalog iteration).
const std::vector<AnomalyClass>& allAnomalyClasses();
/// Leaf sensor names a class perturbs — the "sensor-set" of the label
/// stream (e.g. thermal_runaway -> {"temp"}).
const std::vector<std::string>& affectedSensors(AnomalyClass cls);

/// One scheduled anomaly. `magnitude` is class-specific:
///   thermal_runaway    degC of hot-spot offset at full ramp (default 30)
///   fan_failure        multiplier on degC/W, i.e. cooling degradation
///                      (default 2.5)
///   memory_leak        GB of resident-set growth at full ramp (default 40)
///   network_congestion CPI multiplier on the affected core tail
///                      (default 6; `coreFraction` sizes the tail)
///   straggler          fraction of utilization lost (default 0.6)
struct AnomalyEvent {
    AnomalyClass cls = AnomalyClass::kThermalRunaway;
    double start_s = 0.0;
    double end_s = 0.0;
    double ramp_s = 0.0;
    double magnitude = 0.0;
    /// Affected node indices (topology order); empty = every node.
    std::vector<std::size_t> nodes;
    /// Fraction of cores in the congestion tail (network_congestion only).
    double core_fraction = 0.5;
    /// thermal_runaway only: also drive the facility inlet upwards
    /// (magnitude / 3 degC), so the excursion shows at the facility level.
    bool facility = false;
};

/// How a detector reading is folded into a fired/not-fired decision.
enum class TriggerKind { kBelow, kAbove, kEquals, kNotEquals };

/// One operator output watched for detections. `topic` may contain the
/// placeholder "%node", expanded to every node path of the topology.
struct DetectorRule {
    std::string name;
    std::string operator_name;
    std::string topic;
    TriggerKind kind = TriggerKind::kBelow;
    double threshold = 0.0;
};

/// Ground-truth label: (sensor-set, anomaly class, nodes, t_start, t_end).
struct GroundTruthWindow {
    AnomalyClass cls = AnomalyClass::kThermalRunaway;
    std::vector<std::size_t> nodes;  // empty = every node
    std::vector<std::string> sensors;
    double start_s = 0.0;
    double end_s = 0.0;
};

struct ScenarioScript {
    std::string name;
    std::uint64_t seed = 42;
    double duration_s = 120.0;
    double warmup_s = 20.0;
    double tolerance_s = 20.0;
    std::vector<AnomalyEvent> anomalies;
    std::vector<DetectorRule> detectors;

    /// The label stream the campaign emits: one window per anomaly event.
    std::vector<GroundTruthWindow> groundTruth() const;
};

/// Parses one `scenario` block. Findings (WM08xx) go to `sink` when given;
/// nullopt when the block has errors.
std::optional<ScenarioScript> parseScenario(const common::ConfigNode& scenario_node,
                                            analysis::DiagnosticSink* sink);

/// Parses every `scenario` block under `root`, skipping malformed ones.
std::vector<ScenarioScript> parseScenarios(const common::ConfigNode& root,
                                           analysis::DiagnosticSink* sink);

/// Static validation of all scenario blocks under `root` (wm-check):
/// parse-level findings plus cross-checks against the cluster topology
/// (node indices in range) and the plugin blocks (detector operators
/// exist). Side-effect free.
void validateScenarios(const common::ConfigNode& root, analysis::DiagnosticSink& sink);

}  // namespace wm::scenario
