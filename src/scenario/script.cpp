#include "scenario/script.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_utils.h"
#include "common/time_utils.h"

namespace wm::scenario {

namespace {

using common::ConfigNode;

/// Counts errors for one scenario block while forwarding to the (optional)
/// sink — parseScenario must know whether *this* block failed.
struct Reporter {
    analysis::DiagnosticSink* sink = nullptr;
    std::size_t errors = 0;

    void error(const std::string& code, const std::string& message,
               const ConfigNode& at, const std::string& subject = "") {
        ++errors;
        if (sink != nullptr) {
            sink->error(code, message, at.line(), at.column(), subject);
        }
    }
    void warning(const std::string& code, const std::string& message,
                 const ConfigNode& at, const std::string& subject = "") {
        if (sink != nullptr) {
            sink->warning(code, message, at.line(), at.column(), subject);
        }
    }
};

double durationSeconds(const ConfigNode& block, const std::string& key,
                       double fallback_s) {
    const std::int64_t ns = block.getDurationNs(
        key, static_cast<std::int64_t>(fallback_s * common::kNsPerSec));
    return static_cast<double>(ns) / static_cast<double>(common::kNsPerSec);
}

double defaultMagnitude(AnomalyClass cls) {
    switch (cls) {
        case AnomalyClass::kThermalRunaway: return 30.0;
        case AnomalyClass::kFanFailure: return 2.5;
        case AnomalyClass::kMemoryLeak: return 40.0;
        case AnomalyClass::kNetworkCongestion: return 6.0;
        case AnomalyClass::kStraggler: return 0.6;
    }
    return 1.0;
}

/// Parses "all", "1,3" or "0-2" (mixtures allowed: "0,2-4"). Returns false
/// on malformed specs; an empty result means "all".
bool parseNodeSpec(const std::string& spec, std::vector<std::size_t>& out) {
    const std::string text = common::trim(spec);
    if (text.empty() || text == "all") return true;
    std::set<std::size_t> indices;
    for (const std::string& raw : common::split(text, ',')) {
        const std::string token = common::trim(raw);
        if (token.empty()) return false;
        const std::size_t dash = token.find('-');
        std::size_t lo = 0;
        std::size_t hi = 0;
        try {
            if (dash == std::string::npos) {
                lo = hi = std::stoul(token);
            } else {
                lo = std::stoul(common::trim(token.substr(0, dash)));
                hi = std::stoul(common::trim(token.substr(dash + 1)));
            }
        } catch (...) {
            return false;
        }
        if (hi < lo || hi - lo > 100000) return false;
        for (std::size_t i = lo; i <= hi; ++i) indices.insert(i);
    }
    out.assign(indices.begin(), indices.end());
    return !out.empty();
}

std::optional<TriggerKind> triggerKindFromName(const std::string& name) {
    if (name == "below") return TriggerKind::kBelow;
    if (name == "above") return TriggerKind::kAbove;
    if (name == "equals") return TriggerKind::kEquals;
    if (name == "not-equals") return TriggerKind::kNotEquals;
    return std::nullopt;
}

void parseAnomaly(const ConfigNode& node, const ScenarioScript& script,
                  Reporter& reporter, std::vector<AnomalyEvent>& out) {
    const std::string subject = "scenario/" + script.name;
    const auto cls = anomalyClassFromName(node.value());
    if (!cls) {
        reporter.error("WM0802",
                       "unknown anomaly class '" + node.value() +
                           "' (known: thermal_runaway, fan_failure, memory_leak, "
                           "network_congestion, straggler)",
                       node, subject);
        return;
    }
    static const std::set<std::string> known = {"start",     "end",         "ramp",
                                                "magnitude", "nodes",       "coreFraction",
                                                "facility"};
    for (const auto& child : node.children()) {
        if (known.count(child.key()) == 0) {
            reporter.error("WM0803", "unknown anomaly knob '" + child.key() + "'", child,
                           subject);
        }
    }
    AnomalyEvent event;
    event.cls = *cls;
    event.start_s = durationSeconds(node, "start", 0.0);
    event.end_s = durationSeconds(node, "end", 0.0);
    event.ramp_s = durationSeconds(node, "ramp", 0.0);
    event.magnitude = node.getDouble("magnitude", defaultMagnitude(*cls));
    event.core_fraction = node.getDouble("coreFraction", 0.5);
    event.facility = node.getBool("facility", false);

    if (event.end_s <= event.start_s || event.start_s < 0.0) {
        reporter.error("WM0803",
                       "anomaly window must satisfy 0 <= start < end (got start=" +
                           std::to_string(event.start_s) +
                           "s, end=" + std::to_string(event.end_s) + "s)",
                       node, subject);
    } else if (event.end_s > script.duration_s) {
        reporter.error("WM0803",
                       "anomaly window ends after the scenario duration (" +
                           std::to_string(event.end_s) + "s > " +
                           std::to_string(script.duration_s) + "s)",
                       node, subject);
    }
    if (event.ramp_s < 0.0) {
        reporter.error("WM0803", "'ramp' must be non-negative", node, subject);
    }
    if (event.core_fraction <= 0.0 || event.core_fraction > 1.0) {
        reporter.error("WM0803", "'coreFraction' must be in (0, 1]", node, subject);
    }
    const std::string node_spec = node.getString("nodes", "all");
    if (!parseNodeSpec(node_spec, event.nodes)) {
        reporter.error("WM0803",
                       "bad node selector '" + node_spec +
                           "' (expected \"all\", indices, or ranges like \"0-2\")",
                       node, subject);
    }
    if (event.start_s < script.warmup_s && event.end_s > event.start_s) {
        reporter.warning("WM0806",
                         "anomaly starts inside the warmup period; readings before " +
                             std::to_string(script.warmup_s) + "s are never scored",
                         node, subject);
    }
    out.push_back(std::move(event));
}

void parseDetector(const ConfigNode& node, const ScenarioScript& script,
                   Reporter& reporter, std::vector<DetectorRule>& out) {
    const std::string subject = "scenario/" + script.name;
    DetectorRule rule;
    rule.name = node.value().empty() ? ("detector" + std::to_string(out.size()))
                                     : node.value();
    static const std::set<std::string> known = {"operator", "topic", "trigger"};
    for (const auto& child : node.children()) {
        if (known.count(child.key()) == 0) {
            reporter.error("WM0804", "unknown detector knob '" + child.key() + "'", child,
                           subject);
        }
    }
    rule.operator_name = node.getString("operator");
    rule.topic = node.getString("topic");
    if (rule.operator_name.empty()) {
        reporter.error("WM0804", "detector '" + rule.name + "' names no 'operator'",
                       node, subject);
    }
    if (rule.topic.empty()) {
        reporter.error("WM0804", "detector '" + rule.name + "' names no 'topic'", node,
                       subject);
    }
    const std::string trigger = node.getString("trigger");
    const std::vector<std::string> parts = common::split(common::trim(trigger), ' ');
    bool trigger_ok = false;
    if (parts.size() == 2) {
        const auto kind = triggerKindFromName(parts[0]);
        if (kind) {
            try {
                rule.threshold = std::stod(parts[1]);
                rule.kind = *kind;
                trigger_ok = true;
            } catch (...) {
            }
        }
    }
    if (!trigger_ok) {
        reporter.error("WM0804",
                       "detector '" + rule.name + "' has a malformed trigger '" +
                           trigger +
                           "' (expected \"below|above|equals|not-equals <value>\")",
                       node, subject);
    }
    out.push_back(std::move(rule));
}

std::optional<ScenarioScript> parseScenarioImpl(const ConfigNode& node,
                                                Reporter& reporter) {
    ScenarioScript script;
    script.name = node.value().empty() ? "unnamed" : node.value();
    const std::string subject = "scenario/" + script.name;

    static const std::set<std::string> known = {"seed",      "duration", "warmup",
                                                "tolerance", "anomaly",  "detector"};
    for (const auto& child : node.children()) {
        if (known.count(child.key()) == 0) {
            reporter.error("WM0801", "unknown scenario knob '" + child.key() + "'", child,
                           subject);
        }
    }

    script.seed = static_cast<std::uint64_t>(node.getInt("seed", 42));
    script.duration_s = durationSeconds(node, "duration", 0.0);
    script.warmup_s = durationSeconds(node, "warmup", 20.0);
    script.tolerance_s = durationSeconds(node, "tolerance", 20.0);
    if (node.child("duration") == nullptr || script.duration_s <= 0.0) {
        reporter.error("WM0801", "scenario needs a positive 'duration'", node, subject);
    }
    if (script.warmup_s < 0.0) {
        reporter.error("WM0801", "'warmup' must be non-negative", node, subject);
    }
    if (script.tolerance_s < 0.0) {
        reporter.error("WM0801", "'tolerance' must be non-negative", node, subject);
    }
    if (script.warmup_s >= script.duration_s && script.duration_s > 0.0) {
        reporter.error("WM0801", "'warmup' consumes the whole scenario duration", node,
                       subject);
    }

    for (const auto* anomaly : node.childrenOf("anomaly")) {
        parseAnomaly(*anomaly, script, reporter, script.anomalies);
    }
    for (const auto* detector : node.childrenOf("detector")) {
        parseDetector(*detector, script, reporter, script.detectors);
    }
    if (script.anomalies.empty() || script.detectors.empty()) {
        reporter.warning("WM0806",
                         "scenario schedules " + std::to_string(script.anomalies.size()) +
                             " anomalies and " + std::to_string(script.detectors.size()) +
                             " detectors; scoring needs at least one of each",
                         node, subject);
    }
    if (reporter.errors > 0) return std::nullopt;
    return script;
}

}  // namespace

const char* anomalyClassName(AnomalyClass cls) {
    switch (cls) {
        case AnomalyClass::kThermalRunaway: return "thermal_runaway";
        case AnomalyClass::kFanFailure: return "fan_failure";
        case AnomalyClass::kMemoryLeak: return "memory_leak";
        case AnomalyClass::kNetworkCongestion: return "network_congestion";
        case AnomalyClass::kStraggler: return "straggler";
    }
    return "unknown";
}

std::optional<AnomalyClass> anomalyClassFromName(const std::string& name) {
    for (const AnomalyClass cls : allAnomalyClasses()) {
        if (name == anomalyClassName(cls)) return cls;
    }
    return std::nullopt;
}

const std::vector<AnomalyClass>& allAnomalyClasses() {
    static const std::vector<AnomalyClass> all = {
        AnomalyClass::kThermalRunaway, AnomalyClass::kFanFailure,
        AnomalyClass::kMemoryLeak, AnomalyClass::kNetworkCongestion,
        AnomalyClass::kStraggler};
    return all;
}

const std::vector<std::string>& affectedSensors(AnomalyClass cls) {
    static const std::vector<std::string> temp = {"temp"};
    static const std::vector<std::string> memory = {"memfree"};
    static const std::vector<std::string> counters = {"cpi", "instructions"};
    static const std::vector<std::string> load = {"power", "col_idle"};
    switch (cls) {
        case AnomalyClass::kThermalRunaway: return temp;
        case AnomalyClass::kFanFailure: return temp;
        case AnomalyClass::kMemoryLeak: return memory;
        case AnomalyClass::kNetworkCongestion: return counters;
        case AnomalyClass::kStraggler: return load;
    }
    return temp;
}

std::vector<GroundTruthWindow> ScenarioScript::groundTruth() const {
    std::vector<GroundTruthWindow> windows;
    windows.reserve(anomalies.size());
    for (const AnomalyEvent& event : anomalies) {
        GroundTruthWindow window;
        window.cls = event.cls;
        window.nodes = event.nodes;
        window.sensors = affectedSensors(event.cls);
        window.start_s = event.start_s;
        window.end_s = event.end_s;
        windows.push_back(std::move(window));
    }
    return windows;
}

std::optional<ScenarioScript> parseScenario(const common::ConfigNode& scenario_node,
                                            analysis::DiagnosticSink* sink) {
    Reporter reporter{sink, 0};
    return parseScenarioImpl(scenario_node, reporter);
}

std::vector<ScenarioScript> parseScenarios(const common::ConfigNode& root,
                                           analysis::DiagnosticSink* sink) {
    std::vector<ScenarioScript> scripts;
    for (const auto* node : root.childrenOf("scenario")) {
        auto script = parseScenario(*node, sink);
        if (script) scripts.push_back(std::move(*script));
    }
    return scripts;
}

void validateScenarios(const common::ConfigNode& root, analysis::DiagnosticSink& sink) {
    // Node count the daemon/runner would build, for index-range checks
    // (mirrors buildCluster in wintermuted.cpp; bad dimensions are reported
    // separately as WM0107 by the analyzer core).
    std::size_t node_count = 0;
    {
        const ConfigNode* cluster = root.child("cluster");
        std::int64_t racks = 2, chassis = 2, nodes = 2, max_nodes = 0;
        if (cluster != nullptr) {
            racks = cluster->getInt("racks", 2);
            chassis = cluster->getInt("chassisPerRack", 2);
            nodes = cluster->getInt("nodesPerChassis", 2);
            max_nodes = cluster->getInt("maxNodes", 0);
        }
        if (racks > 0 && chassis > 0 && nodes > 0) {
            node_count = static_cast<std::size_t>(racks * chassis * nodes);
            if (max_nodes > 0) {
                node_count = std::min(node_count, static_cast<std::size_t>(max_nodes));
            }
        }
    }
    std::set<std::string> operator_names;
    for (const auto* plugin : root.childrenOf("plugin")) {
        for (const auto* op : plugin->childrenOf("operator")) {
            operator_names.insert(op->value());
        }
    }

    for (const auto* node : root.childrenOf("scenario")) {
        const auto script = parseScenario(*node, &sink);
        if (!script) continue;
        const std::string subject = "scenario/" + script->name;
        for (const AnomalyEvent& event : script->anomalies) {
            for (const std::size_t index : event.nodes) {
                if (node_count > 0 && index >= node_count) {
                    sink.error("WM0803",
                               "anomaly targets node " + std::to_string(index) +
                                   " but the cluster has " + std::to_string(node_count) +
                                   " nodes",
                               node->line(), node->column(), subject);
                }
            }
        }
        for (const DetectorRule& rule : script->detectors) {
            if (operator_names.count(rule.operator_name) == 0) {
                sink.warning("WM0805",
                             "detector '" + rule.name + "' references operator '" +
                                 rule.operator_name +
                                 "' which no plugin block defines; its detections "
                                 "cannot be attributed",
                             node->line(), node->column(), subject);
            }
        }
    }
}

}  // namespace wm::scenario
