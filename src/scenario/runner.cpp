#include "scenario/runner.h"

#include <cstdio>
#include <utility>

#include "core/hosting.h"
#include "plugins/registry.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/scenariosim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "scenario/perturbation.h"

namespace wm::scenario {

using common::kNsPerSec;
using common::TimestampNs;

ScenarioRunner::ScenarioRunner(ScenarioScript script, const common::ConfigNode& root)
    : script_(std::move(script)), root_(root) {}

bool ScenarioRunner::build(const common::ConfigNode& root, std::string* error) {
    // Topology and background app, as wintermuted reads them; the defaults
    // match buildCluster() so a `.scn` without a cluster block behaves like
    // the daemon's default deployment.
    if (const common::ConfigNode* cluster = root.child("cluster")) {
        topology_.racks = static_cast<std::size_t>(cluster->getInt("racks", 2));
        topology_.chassis_per_rack =
            static_cast<std::size_t>(cluster->getInt("chassisPerRack", 2));
        topology_.nodes_per_chassis =
            static_cast<std::size_t>(cluster->getInt("nodesPerChassis", 2));
        topology_.cpus_per_node =
            static_cast<std::size_t>(cluster->getInt("cpusPerNode", 8));
        topology_.max_nodes = static_cast<std::size_t>(cluster->getInt("maxNodes", 0));
    } else {
        topology_ = simulator::Topology::tiny();
    }
    const common::ConfigNode* cluster = root.child("cluster");
    const simulator::AppKind app = simulator::appFromName(
        cluster != nullptr ? cluster->getString("app", "lammps") : "lammps");

    TimestampNs sampling = kNsPerSec;
    TimestampNs window = 180 * kNsPerSec;
    if (const common::ConfigNode* pusher_cfg = root.child("pusher")) {
        sampling = pusher_cfg->getDurationNs("samplingInterval", kNsPerSec);
        window = pusher_cfg->getDurationNs("cacheWindow", 180 * kNsPerSec);
    }

    agent_ = std::make_unique<collectagent::CollectAgent>(
        collectagent::CollectAgentConfig{.cache_window_ns = window},
        broker_, storage_);
    agent_->start();

    for (std::size_t n = 0; n < topology_.nodeCount(); ++n) {
        const std::string node_path = topology_.nodePath(n);
        auto node = std::make_shared<pusher::SimulatedNode>(
            topology_.cpus_per_node, script_.seed + 1000 + n);
        node->startApp(app);
        nodes_.push_back(node);

        auto p = std::make_unique<pusher::Pusher>(
            pusher::PusherConfig{node_path, window, 2}, &broker_);
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        perf.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
        pusher::SysfssimGroupConfig sys;
        sys.node_path = node_path;
        sys.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
        pusher::ProcfssimGroupConfig proc;
        proc.node_path = node_path;
        proc.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::ProcfssimGroup>(proc, node));
        // Ground-truth label stream, on the same sensor plane as the data it
        // labels (the classifier can train on it, the evaluator audits it).
        pusher::ScenariosimGroupConfig scn;
        scn.node_path = node_path;
        scn.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::ScenariosimGroup>(
            scn, [this, n](TimestampNs t) {
                return anomalyLabelAt(script_, n,
                                      static_cast<double>(t) / static_cast<double>(kNsPerSec));
            }));
        pushers_.push_back(std::move(p));
    }

    // Facility loop fed by the nodes' latest power readings.
    facility_ = std::make_shared<pusher::SimulatedFacility>(
        simulator::FacilityCharacteristics{}, [this] {
            double total = 0.0;
            for (std::size_t i = 0; i < nodes_.size(); ++i) {
                const auto* cache =
                    pushers_[i]->cacheStore().find(pushers_[i]->name() + "/power");
                if (cache != nullptr) {
                    const auto latest = cache->latest();
                    if (latest) total += latest->value;
                }
            }
            return total;
        });
    auto facility_pusher = std::make_unique<pusher::Pusher>(
        pusher::PusherConfig{"/facility", window, 2}, &broker_);
    pusher::FacilitysimGroupConfig facility_group;
    facility_group.interval_ns = sampling;
    facility_pusher->addGroup(
        std::make_unique<pusher::FacilitysimGroup>(facility_group, facility_));
    pushers_.push_back(std::move(facility_pusher));

    // Wintermute hosts on both sides of the broker.
    for (auto& p : pushers_) {
        auto engine = std::make_unique<core::QueryEngine>();
        engine->setCacheStore(&p->cacheStore());
        auto manager = std::make_unique<core::OperatorManager>(
            core::makeHostContext(*engine, &p->cacheStore(), &broker_, nullptr));
        plugins::registerBuiltinPlugins(*manager);
        pusher_engines_.push_back(std::move(engine));
        pusher_managers_.push_back(std::move(manager));
    }
    agent_engine_.setCacheStore(&agent_->cacheStore());
    agent_engine_.setStorage(&storage_);
    agent_manager_ = std::make_unique<core::OperatorManager>(core::makeHostContext(
        agent_engine_, &agent_->cacheStore(), nullptr, &storage_, &jobs_));
    plugins::registerBuiltinPlugins(*agent_manager_);

    // One job spanning the cluster so job-scope operators resolve.
    jobs::JobRecord job;
    job.job_id = "scenario";
    job.nodes = topology_.nodePaths();
    job.start_time = 0;
    jobs_.submit(job);

    // Warm the sensor space at t=1 (healthy tick) so unit resolution sees
    // every topic, then load the configured plugins.
    tick(1 * kNsPerSec, 1.0);
    for (const auto* plugin : root.childrenOf("plugin")) {
        const std::string name = plugin->value();
        const std::string host = plugin->getString("host", "collectagent");
        if (host == "pusher") {
            for (auto& manager : pusher_managers_) {
                if (manager->loadPlugin(name, *plugin) < 0) {
                    if (error != nullptr) *error = "unknown plugin: " + name;
                    return false;
                }
            }
        } else if (agent_manager_->loadPlugin(name, *plugin) < 0) {
            if (error != nullptr) *error = "unknown plugin: " + name;
            return false;
        }
    }
    return true;
}

void ScenarioRunner::tick(TimestampNs t_ns, double t_sec) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        nodes_[n]->setPerturbation(nodePerturbationAt(script_, n, t_sec));
    }
    facility_->setPerturbation(facilityPerturbationAt(script_, t_sec));
    for (auto& p : pushers_) p->sampleOnce(t_ns);
    // Rebuild every tick: operator outputs (e.g. per-cpu cpi) appear in the
    // sensor space as soon as published. Cheap at campaign scale.
    for (auto& engine : pusher_engines_) engine->rebuildTree();
    agent_engine_.rebuildTree();
    for (auto& manager : pusher_managers_) manager->tickAll(t_ns);
    if (agent_manager_) agent_manager_->tickAll(t_ns);
}

EvaluationReport ScenarioRunner::run(std::string* error) {
    EvaluationReport empty;
    empty.scenario = script_.name;
    if (!build(root_, error)) return empty;
    const auto duration = static_cast<TimestampNs>(script_.duration_s);
    for (TimestampNs t = 2; t <= duration; ++t) {
        tick(t * kNsPerSec, static_cast<double>(t));
    }
    return Evaluator(script_, topology_.nodePaths()).evaluate(agent_engine_);
}

std::vector<EvaluationReport> runScenarios(const common::ConfigNode& root) {
    std::vector<EvaluationReport> reports;
    for (const ScenarioScript& script : parseScenarios(root, nullptr)) {
        ScenarioRunner runner(script, root);
        std::string error;
        EvaluationReport report = runner.run(&error);
        if (!error.empty()) {
            std::fprintf(stderr, "scenario %s: %s\n", script.name.c_str(),
                         error.c_str());
            continue;
        }
        reports.push_back(std::move(report));
    }
    return reports;
}

}  // namespace wm::scenario
