#pragma once

// Component supervisor (docs/RESILIENCE.md, "Durability model"): a small
// watchdog that health-checks registered components — pusher, collect
// agent, operator manager, storage — and restarts faulted ones with capped
// exponential backoff. The paper's architecture assumes long-lived hosting
// daemons; the supervisor closes the gap between "a component wedged
// itself" and "an operator restarts the daemon hours later".
//
// Design rules, mirroring the rest of the resilience layer:
//  * the supervisor never sleeps inside its lock-free callbacks; pacing is
//    computed with common::Backoff and compared against the poll clock;
//  * pollOnce(now) is the whole decision procedure, so tests drive it
//    deterministically with a virtual clock — start()/stop() merely wrap it
//    in a timer thread;
//  * a component whose restart budget is exhausted is marked gave_up and
//    left alone (restart storms are worse than a dead component), visible
//    through components() and the /status endpoint.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include "common/thread.h"
#include <vector>

#include "common/mutex.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/time_utils.h"

namespace wm::core {

struct SupervisorConfig {
    common::TimestampNs check_interval_ns = common::kNsPerSec;
    /// Backoff between restart attempts of one component; max_attempts
    /// bounds the attempts per fault episode (reset on recovery).
    common::RetryPolicy restart_backoff;
    std::uint64_t rng_seed = 42;
};

/// Health/restart hooks for one supervised component. Both callbacks are
/// invoked from the supervisor's poll (under its lock, which ranks before
/// every component lock); they must not call back into the supervisor.
struct SupervisedComponent {
    std::string name;
    /// True when the component is operating normally.
    std::function<bool()> healthy;
    /// Attempts to bring the component back (stop + restore + start).
    /// Returns true when the component came back healthy.
    std::function<bool()> restart;
};

struct ComponentStatus {
    std::string name;
    bool healthy = true;
    bool gave_up = false;
    std::uint64_t restarts = 0;
    std::uint64_t failed_restarts = 0;
};

class Supervisor {
  public:
    explicit Supervisor(SupervisorConfig config = {});
    ~Supervisor();

    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /// Registers a component; call before start(). Registration order is
    /// check order (put dependencies first: storage before its consumers).
    void registerComponent(SupervisedComponent component);

    /// Starts the periodic health-check thread.
    void start();
    /// Stops the thread; a poll in flight completes first.
    void stop();
    bool running() const { return running_.load(std::memory_order_acquire); }

    /// One supervision pass at time `now`: health-check every component,
    /// restart faulted ones whose backoff window has elapsed. Determinstic
    /// entry point for tests; the timer thread calls exactly this.
    void pollOnce(common::TimestampNs now);

    std::uint64_t restartsTotal() const {
        return restarts_total_.load(std::memory_order_relaxed);
    }
    std::uint64_t failedRestartsTotal() const {
        return failed_restarts_total_.load(std::memory_order_relaxed);
    }

    /// Status snapshot of every registered component.
    std::vector<ComponentStatus> components() const;

  private:
    struct Entry {
        SupervisedComponent component;
        common::Backoff backoff;
        /// Earliest time for the next restart attempt; 0 = immediately.
        common::TimestampNs next_attempt_ns = 0;
        bool healthy = true;
        bool gave_up = false;
        std::uint64_t restarts = 0;
        std::uint64_t failed_restarts = 0;
    };

    void threadMain();

    SupervisorConfig config_;
    common::Rng rng_;

    /// Ranks before every hosting-entity lock: the supervisor calls into
    /// components while holding it, never the other way around.
    mutable common::Mutex mutex_{"Supervisor", common::LockRank::kSupervisor};
    common::ConditionVariable wake_cv_;
    std::vector<Entry> entries_ WM_GUARDED_BY(mutex_);
    bool stop_requested_ WM_GUARDED_BY(mutex_) = false;

    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> restarts_total_{0};
    std::atomic<std::uint64_t> failed_restarts_total_{0};
    common::Thread thread_;
};

}  // namespace wm::core
