#pragma once

// The Operator Manager (paper Section V-A): reads Wintermute configuration,
// instantiates plugins through a registry of configurators, manages operator
// life cycle (start/stop/dynamic load), schedules Online operators, and
// exposes the ODA RESTful API (plugin listing, lifecycle actions, on-demand
// unit computation).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/mutex.h"
#include "common/scheduler.h"
#include "common/thread_pool.h"
#include "core/operator.h"
#include "rest/router.h"

namespace wm::core {

/// A plugin's configurator: builds operators (with resolved units) from the
/// plugin's configuration block. Mirrors the Configurator component of
/// Section V-C.
using ConfiguratorFn = std::function<std::vector<OperatorPtr>(
    const common::ConfigNode& config, const OperatorContext& context)>;

class OperatorManager {
  public:
    /// Operators run with `context`; Online ticks dispatch on an internal
    /// pool of `worker_threads`.
    explicit OperatorManager(OperatorContext context, std::size_t worker_threads = 2);
    ~OperatorManager();

    OperatorManager(const OperatorManager&) = delete;
    OperatorManager& operator=(const OperatorManager&) = delete;

    /// Registers a plugin type. Returns false on duplicate names.
    bool registerPlugin(const std::string& plugin, ConfiguratorFn configurator);
    std::vector<std::string> pluginNames() const;

    /// Instantiates operators from a plugin's configuration root: every
    /// child block named "operator" (or "template_operator", which only
    /// defines defaults and creates nothing) is passed to the configurator.
    /// Returns the number of operators created, or -1 for unknown plugins.
    int loadPlugin(const std::string& plugin, const common::ConfigNode& root);

    /// Adds an externally-built operator (e.g. from code rather than config).
    void addOperator(OperatorPtr op);

    /// Starts scheduled computation of Online operators.
    void start();
    /// Cancels scheduling; running computations finish.
    void stop();
    bool running() const { return running_.load(std::memory_order_acquire); }

    /// Synchronously ticks every enabled Online operator once at time `t`
    /// (deterministic virtual-time runs and benches).
    void tickAll(common::TimestampNs t);

    std::vector<OperatorPtr> operators() const;
    OperatorPtr findOperator(const std::string& name) const;

    /// On-demand computation entry point (also used by the REST route).
    std::optional<std::vector<SensorValue>> computeOnDemand(
        const std::string& operator_name, const std::string& unit_name,
        common::TimestampNs t);

    /// Publishes the ODA REST API on `router` under /wintermute/... .
    void bindRest(rest::Router& router);

    /// Writes one snapshot file per operator with durable state into
    /// `directory` (created on demand); files are named
    /// "<plugin>.<operator>.opsnap" with '/' sanitised. Stateless operators
    /// are skipped. Returns the number of snapshots written.
    std::size_t saveOperatorStates(const std::string& directory);

    /// Restores operator state from snapshots written by saveOperatorStates.
    /// Missing files, stale payloads and configuration mismatches are
    /// skipped (the operator keeps its fresh state). Returns the number of
    /// operators restored.
    std::size_t restoreOperatorStates(const std::string& directory);

    std::uint64_t operatorSnapshotsWritten() const {
        return snapshots_written_.load(std::memory_order_relaxed);
    }
    std::uint64_t operatorSnapshotsRestored() const {
        return snapshots_restored_.load(std::memory_order_relaxed);
    }

    const OperatorContext& context() const { return context_; }

  private:
    /// Registers an Online operator with the scheduler. Holding mutex_ while
    /// calling into the scheduler is legal: kOperatorManager ranks below
    /// kScheduler in the lock order.
    void scheduleOperator(const OperatorPtr& op) WM_REQUIRES(mutex_);

    OperatorContext context_;
    common::ThreadPool pool_;
    common::PeriodicScheduler scheduler_;
    mutable common::Mutex mutex_{"OperatorManager", common::LockRank::kOperatorManager};
    std::map<std::string, ConfiguratorFn> plugins_ WM_GUARDED_BY(mutex_);
    std::vector<OperatorPtr> operators_ WM_GUARDED_BY(mutex_);
    std::vector<common::TaskId> task_ids_ WM_GUARDED_BY(mutex_);
    // Atomic: running() reads it without the lock; transitions hold mutex_.
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> snapshots_written_{0};
    std::atomic<std::uint64_t> snapshots_restored_{0};
};

}  // namespace wm::core
