#include "core/operator.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/string_utils.h"
#include "persist/serializer.h"

namespace wm::core {

OperatorConfig parseOperatorConfig(const common::ConfigNode& node,
                                   const std::string& plugin) {
    OperatorConfig config;
    config.plugin = plugin;
    config.name = node.value().empty() ? plugin : node.value();
    const std::string mode = common::toLower(node.getString("mode", "online"));
    config.mode = mode == "ondemand" || mode == "on-demand" ? OperatorMode::kOnDemand
                                                            : OperatorMode::kOnline;
    const std::string unit_mode = common::toLower(node.getString("unitMode", "sequential"));
    config.unit_mode =
        unit_mode == "parallel" ? UnitMode::kParallel : UnitMode::kSequential;
    config.interval_ns = node.getDurationNs("interval", common::kNsPerSec);
    config.window_ns = node.getDurationNs("window", config.interval_ns);
    const std::string query_mode = common::toLower(node.getString("queryMode", "relative"));
    config.relative_queries = query_mode != "absolute";
    config.publish_outputs = node.getBool("publish", true);
    if (const auto* input = node.child("input")) {
        for (const auto* sensor : input->childrenOf("sensor")) {
            config.input_patterns.push_back(sensor->value());
        }
    }
    if (const auto* output = node.child("output")) {
        for (const auto* sensor : output->childrenOf("sensor")) {
            config.output_patterns.push_back(sensor->value());
        }
    }
    if (const auto* global = node.child("globalOutput")) {
        for (const auto* sensor : global->childrenOf("sensor")) {
            config.global_output_topics.push_back(
                common::normalizePath(sensor->value()));
        }
    }
    return config;
}

void OperatorTemplate::setUnits(std::vector<Unit> units) {
    // Units assembled by hand (tests, host code) may lack bound handles;
    // bind here so every per-read query goes through the interned-id path.
    for (auto& unit : units) {
        if (unit.input_handles.size() != unit.inputs.size()) unit.bindHandles();
    }
    common::MutexLock lock(units_mutex_);
    units_ = std::move(units);
}

std::vector<Unit> OperatorTemplate::units() const {
    common::MutexLock lock(units_mutex_);
    return units_;
}

void OperatorTemplate::computeAll(common::TimestampNs t) {
    if (!enabled_.load()) return;
    common::MutexLock lock(state_mutex_);
    computeAllLocked(t);
}

void OperatorTemplate::computeAllLocked(common::TimestampNs t) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<Unit> snapshot = units();
    // Sequential processing shares the operator's model safely; Parallel
    // semantics (one model per unit) are realised by the configurator
    // splitting units across operator instances, so iteration stays linear
    // here either way.
    for (const auto& unit : snapshot) {
        computeUnitChecked(unit, t, nullptr);
    }
    // Operator-level outputs: one pass per computation, mapped positionally
    // onto the configured global output topics.
    if (!config_.global_output_topics.empty() && config_.publish_outputs &&
        context_.publish) {
        try {
            const std::vector<double> values = computeOperatorLevel(t);
            const std::size_t n =
                std::min(values.size(), config_.global_output_topics.size());
            for (std::size_t i = 0; i < n; ++i) {
                context_.publish({config_.global_output_topics[i], {t, values[i]}});
            }
        } catch (const std::exception& e) {
            error_count_.fetch_add(1, std::memory_order_relaxed);
            WM_LOG(kWarning, "operator")
                << config_.name << ": operator-level compute failed: " << e.what();
        }
    }
    const auto end = std::chrono::steady_clock::now();
    last_duration_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
}

std::vector<double> OperatorTemplate::computeOperatorLevel(common::TimestampNs) {
    return {};
}

std::optional<std::vector<SensorValue>> OperatorTemplate::computeOnDemand(
    const std::string& unit_name, common::TimestampNs t) {
    // State before units: same order as a computeAll pass.
    common::MutexLock state_lock(state_mutex_);
    const std::string canonical = common::normalizePath(unit_name);
    std::optional<Unit> match;
    {
        common::MutexLock lock(units_mutex_);
        for (const auto& unit : units_) {
            if (unit.name == canonical) {
                match = unit;
                break;
            }
        }
    }
    if (!match) return std::nullopt;
    std::vector<SensorValue> collected;
    computeUnitChecked(*match, t, &collected);
    return collected;
}

bool OperatorTemplate::saveState(std::string* payload) {
    if (payload == nullptr) return false;
    common::MutexLock lock(state_mutex_);
    persist::Encoder encoder;
    if (!serializeState(encoder)) return false;
    *payload = encoder.take();
    return true;
}

bool OperatorTemplate::restoreState(const std::string& payload) {
    common::MutexLock lock(state_mutex_);
    persist::Decoder decoder(payload);
    if (!deserializeState(decoder)) return false;
    return decoder.ok();
}

bool OperatorTemplate::serializeState(persist::Encoder&) const { return false; }

bool OperatorTemplate::deserializeState(persist::Decoder&) { return false; }

sensors::ReadingVector OperatorTemplate::queryInput(const std::string& topic,
                                                    common::TimestampNs t) const {
    if (context_.query_engine == nullptr) return {};
    if (config_.relative_queries) {
        return context_.query_engine->queryRelative(topic, config_.window_ns);
    }
    return context_.query_engine->queryAbsolute(topic, t - config_.window_ns, t);
}

sensors::ReadingVector OperatorTemplate::queryInput(const Unit& unit, std::size_t index,
                                                    common::TimestampNs t) const {
    if (context_.query_engine == nullptr || index >= unit.inputs.size()) return {};
    const sensors::CacheHandle* handle = unit.inputHandle(index);
    if (handle == nullptr) return queryInput(unit.inputs[index], t);
    if (config_.relative_queries) {
        return context_.query_engine->queryRelative(*handle, config_.window_ns);
    }
    return context_.query_engine->queryAbsolute(*handle, t - config_.window_ns, t);
}

std::optional<sensors::RangeStats> OperatorTemplate::inputStats(
    const Unit& unit, std::size_t index, common::TimestampNs t) const {
    if (context_.query_engine == nullptr || index >= unit.inputs.size()) {
        return std::nullopt;
    }
    const sensors::CacheHandle* handle = unit.inputHandle(index);
    if (config_.relative_queries) {
        if (handle != nullptr) {
            return context_.query_engine->statsRelative(*handle, config_.window_ns);
        }
        return context_.query_engine->statsRelative(unit.inputs[index], config_.window_ns);
    }
    // Absolute mode has no fused cache path; reduce the queried window.
    const sensors::ReadingVector window = queryInput(unit, index, t);
    if (window.empty()) return std::nullopt;
    sensors::RangeStats stats;
    for (const auto& reading : window) stats.accumulate(reading);
    return stats;
}

std::optional<sensors::Reading> OperatorTemplate::inputLatest(const Unit& unit,
                                                              std::size_t index) const {
    if (context_.query_engine == nullptr || index >= unit.inputs.size()) {
        return std::nullopt;
    }
    const sensors::CacheHandle* handle = unit.inputHandle(index);
    if (handle != nullptr) return context_.query_engine->latest(*handle);
    return context_.query_engine->latest(unit.inputs[index]);
}

void OperatorTemplate::computeUnitChecked(const Unit& unit, common::TimestampNs t,
                                          std::vector<SensorValue>* collected) {
    try {
        std::vector<SensorValue> outputs = compute(unit, t);
        compute_count_.fetch_add(1, std::memory_order_relaxed);
        if (config_.publish_outputs && context_.publish) {
            for (const auto& value : outputs) context_.publish(value);
        }
        if (collected != nullptr) {
            collected->insert(collected->end(), std::make_move_iterator(outputs.begin()),
                              std::make_move_iterator(outputs.end()));
        }
    } catch (const std::exception& e) {
        error_count_.fetch_add(1, std::memory_order_relaxed);
        WM_LOG(kWarning, "operator")
            << config_.name << ": compute failed for unit " << unit.name << ": " << e.what();
    }
}

void JobOperatorTemplate::computeAll(common::TimestampNs t) {
    if (!enabled_.load()) return;
    // Re-resolve units only when the running-job set or the sensor space
    // changed; resolution scans the tree per job node and would otherwise
    // dominate every tick.
    std::string signature;
    if (context_.job_manager != nullptr) {
        for (const auto& job : context_.job_manager->runningAt(t)) {
            signature += job.job_id;
            signature += ';';
        }
    }
    const std::size_t tree_sensors =
        context_.query_engine != nullptr ? context_.query_engine->tree().sensorCount() : 0;
    if (signature != last_job_signature_ || tree_sensors != last_tree_sensors_) {
        setUnits(buildJobUnits(t));
        last_job_signature_ = std::move(signature);
        last_tree_sensors_ = tree_sensors;
    }
    OperatorTemplate::computeAll(t);
}

std::vector<Unit> JobOperatorTemplate::buildJobUnits(common::TimestampNs t) const {
    std::vector<Unit> units;
    if (context_.job_manager == nullptr || context_.query_engine == nullptr) return units;
    const UnitResolver resolver(context_.query_engine->tree());
    for (const auto& job : context_.job_manager->runningAt(t)) {
        Unit unit;
        unit.name = "/job/" + job.job_id;
        // Inputs: each input expression resolved against every node the job
        // runs on; a job unit is built when at least one node resolves.
        bool any_input = config_.input_patterns.empty();
        for (const auto& expression : unit_template_.inputs) {
            for (const auto& node : job.nodes) {
                UnitTemplate probe;
                probe.inputs.push_back(expression);
                auto resolved = resolver.resolveUnitAt(common::normalizePath(node), probe);
                if (resolved && !resolved->inputs.empty()) {
                    any_input = true;
                    unit.inputs.insert(unit.inputs.end(), resolved->inputs.begin(),
                                       resolved->inputs.end());
                }
            }
        }
        if (!any_input) continue;
        std::sort(unit.inputs.begin(), unit.inputs.end());
        unit.inputs.erase(std::unique(unit.inputs.begin(), unit.inputs.end()),
                          unit.inputs.end());
        // Outputs live under the job unit: "/job/<id>/<sensor>".
        for (const auto& expression : unit_template_.outputs) {
            unit.outputs.push_back(common::pathJoin(unit.name, expression.sensor_name));
        }
        unit.bindHandles();
        units.push_back(std::move(unit));
    }
    return units;
}

}  // namespace wm::core
