#include "core/supervisor.h"

#include <chrono>

#include "common/logging.h"

namespace wm::core {

Supervisor::Supervisor(SupervisorConfig config)
    : config_(config), rng_(config.rng_seed) {}

Supervisor::~Supervisor() { stop(); }

void Supervisor::registerComponent(SupervisedComponent component) {
    common::MutexLock lock(mutex_);
    Entry entry{std::move(component), common::Backoff(config_.restart_backoff, &rng_)};
    entries_.push_back(std::move(entry));
}

void Supervisor::start() {
    {
        common::MutexLock lock(mutex_);
        if (running_.load(std::memory_order_acquire)) return;
        stop_requested_ = false;
        running_.store(true, std::memory_order_release);
    }
    thread_ = common::Thread([this] { threadMain(); }, "Supervisor");
}

void Supervisor::stop() {
    {
        common::MutexLock lock(mutex_);
        if (!running_.load(std::memory_order_acquire)) return;
        stop_requested_ = true;
        wake_cv_.notify_all();
    }
    if (thread_.joinable()) thread_.join();
    running_.store(false, std::memory_order_release);
}

void Supervisor::threadMain() {
    for (;;) {
        {
            common::MutexLock lock(mutex_);
            if (stop_requested_) return;
            wake_cv_.wait_for(mutex_,
                              std::chrono::nanoseconds(config_.check_interval_ns));
            if (stop_requested_) return;
        }
        pollOnce(common::nowNs());
    }
}

void Supervisor::pollOnce(common::TimestampNs now) {
    common::MutexLock lock(mutex_);
    for (Entry& entry : entries_) {
        if (entry.gave_up) continue;
        bool healthy = true;
        if (entry.component.healthy) healthy = entry.component.healthy();
        if (healthy) {
            if (!entry.healthy) {
                WM_LOG(kInfo, "supervisor")
                    << entry.component.name << ": healthy again after "
                    << entry.restarts << " restarts";
            }
            entry.healthy = true;
            entry.backoff.reset();
            entry.next_attempt_ns = 0;
            continue;
        }
        entry.healthy = false;
        if (now < entry.next_attempt_ns) continue;  // backoff window open
        if (!entry.component.restart) continue;
        WM_LOG(kWarning, "supervisor")
            << entry.component.name << ": unhealthy, restarting (attempt "
            << (entry.restarts + 1) << ")";
        ++entry.restarts;
        restarts_total_.fetch_add(1, std::memory_order_relaxed);
        const bool restarted = entry.component.restart();
        if (restarted) {
            entry.healthy = true;
            entry.backoff.reset();
            entry.next_attempt_ns = 0;
            WM_LOG(kInfo, "supervisor") << entry.component.name << ": restarted";
            continue;
        }
        ++entry.failed_restarts;
        failed_restarts_total_.fetch_add(1, std::memory_order_relaxed);
        if (entry.backoff.exhausted()) {
            entry.gave_up = true;
            WM_LOG(kError, "supervisor")
                << entry.component.name << ": restart budget exhausted after "
                << entry.restarts << " attempts, giving up";
            continue;
        }
        entry.next_attempt_ns = now + entry.backoff.nextDelayNs();
    }
}

std::vector<ComponentStatus> Supervisor::components() const {
    common::MutexLock lock(mutex_);
    std::vector<ComponentStatus> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_) {
        out.push_back({entry.component.name, entry.healthy, entry.gave_up,
                       entry.restarts, entry.failed_restarts});
    }
    return out;
}

}  // namespace wm::core
