#include "core/hosting.h"

namespace wm::core {

OperatorContext makeHostContext(QueryEngine& query_engine,
                                sensors::CacheStore* cache_store, mqtt::Broker* broker,
                                storage::Storage* storage,
                                jobs::JobManager* job_manager) {
    OperatorContext context;
    context.query_engine = &query_engine;
    context.job_manager = job_manager;
    context.publish = [cache_store, broker, storage](const SensorValue& value) {
        if (cache_store != nullptr) {
            cache_store->getOrCreate(value.topic).store(value.reading);
        }
        if (broker != nullptr) {
            broker->publish({value.topic, {value.reading}});
        }
        if (storage != nullptr) {
            storage->insert(value.topic, value.reading);
        }
    };
    return context;
}

}  // namespace wm::core
