#include "core/query_engine.h"

#include "common/time_utils.h"

namespace wm::core {

QueryEngine& QueryEngine::instance() {
    static QueryEngine engine;
    return engine;
}

void QueryEngine::setCacheStore(sensors::CacheStore* store) {
    cache_stores_[0].store(store, std::memory_order_release);
    cache_store_count_.store(store != nullptr ? 1 : 0, std::memory_order_release);
}

void QueryEngine::addCacheStore(sensors::CacheStore* store) {
    if (store == nullptr) return;
    const std::size_t count = cache_store_count_.load(std::memory_order_acquire);
    if (count >= kMaxCacheStores) return;
    cache_stores_[count].store(store, std::memory_order_release);
    cache_store_count_.store(count + 1, std::memory_order_release);
}

void QueryEngine::setStorage(storage::Storage* storage) {
    storage_.store(storage, std::memory_order_release);
}

sensors::SensorCache* QueryEngine::findCache(const std::string& topic) const {
    const std::size_t count = cache_store_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
        sensors::CacheStore* store = cache_stores_[i].load(std::memory_order_acquire);
        if (store == nullptr) continue;
        if (sensors::SensorCache* cache = store->find(topic)) return cache;
    }
    return nullptr;
}

sensors::SensorCache* QueryEngine::resolveHandle(const sensors::CacheHandle& handle) const {
    const std::size_t count = cache_store_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
        sensors::CacheStore* store = cache_stores_[i].load(std::memory_order_acquire);
        if (store == nullptr) continue;
        if (sensors::SensorCache* cache = handle.resolve(*store)) return cache;
    }
    return nullptr;
}

std::size_t QueryEngine::rebuildTree() {
    storage::Storage* storage = storage_.load(std::memory_order_acquire);
    // Gather topics before taking the tree lock: CacheStore/StorageBackend
    // locks rank above the tree lock, so nesting them underneath would
    // invert the lock order.
    std::vector<std::string> topics;
    const std::size_t count = cache_store_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
        sensors::CacheStore* store = cache_stores_[i].load(std::memory_order_acquire);
        if (store == nullptr) continue;
        for (auto& topic : store->topics()) topics.push_back(std::move(topic));
    }
    if (storage != nullptr) {
        for (auto& topic : storage->topics()) topics.push_back(std::move(topic));
    }
    common::MutexLock lock(tree_mutex_);
    return tree_.build(topics);
}

void QueryEngine::addTopics(const std::vector<std::string>& topics) {
    common::MutexLock lock(tree_mutex_);
    for (const auto& topic : topics) tree_.addSensor(topic);
}

sensors::ReadingVector QueryEngine::queryRelativeImpl(const sensors::SensorCache* cache,
                                                      const std::string& topic,
                                                      common::TimestampNs offset_ns) const {
    // The cache covers the window only when the requested offset fits
    // inside its retention window.
    if (cache != nullptr && !cache->empty() && offset_ns <= cache->windowNs()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewRelative(offset_ns);
    }
    if (storage::Storage* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        const auto newest = storage->latest(topic);
        if (!newest) return {};
        return storage->query(topic, newest->timestamp - offset_ns, newest->timestamp);
    }
    // Cache-only host with an over-long offset: serve what the cache has.
    if (cache != nullptr) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewRelative(offset_ns);
    }
    return {};
}

sensors::ReadingVector QueryEngine::queryAbsoluteImpl(const sensors::SensorCache* cache,
                                                      const std::string& topic,
                                                      common::TimestampNs t0,
                                                      common::TimestampNs t1) const {
    if (cache != nullptr && !cache->empty()) {
        // The cache can only answer if the range begins inside its
        // retained window.
        const auto newest = cache->latest();
        if (newest && t0 >= newest->timestamp - cache->windowNs()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return cache->viewAbsolute(t0, t1);
        }
    }
    if (storage::Storage* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage->query(topic, t0, t1);
    }
    if (cache != nullptr) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewAbsolute(t0, t1);
    }
    return {};
}

std::optional<sensors::Reading> QueryEngine::latestImpl(const sensors::SensorCache* cache,
                                                        const std::string& topic) const {
    if (cache != nullptr) {
        const auto reading = cache->latest();
        if (reading) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return reading;
        }
    }
    if (storage::Storage* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage->latest(topic);
    }
    return std::nullopt;
}

std::optional<sensors::RangeStats> QueryEngine::statsRelativeImpl(
    const sensors::SensorCache* cache, const std::string& topic,
    common::TimestampNs offset_ns) const {
    if (cache != nullptr && !cache->empty() && offset_ns <= cache->windowNs()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->statsRelative(offset_ns);
    }
    if (storage::Storage* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        const auto newest = storage->latest(topic);
        if (!newest) return std::nullopt;
        const sensors::ReadingVector window =
            storage->query(topic, newest->timestamp - offset_ns, newest->timestamp);
        if (window.empty()) return std::nullopt;
        sensors::RangeStats stats;
        for (const auto& reading : window) stats.accumulate(reading);
        return stats;
    }
    if (cache != nullptr && !cache->empty()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->statsRelative(offset_ns);
    }
    return std::nullopt;
}

sensors::ReadingVector QueryEngine::queryRelative(const std::string& topic,
                                                  common::TimestampNs offset_ns) const {
    const sensors::SensorCache* cache = findCache(topic);
    return queryRelativeImpl(cache, topic, offset_ns);
}

sensors::ReadingVector QueryEngine::queryRelative(const sensors::CacheHandle& handle,
                                                  common::TimestampNs offset_ns) const {
    const sensors::SensorCache* cache = resolveHandle(handle);
    return queryRelativeImpl(cache, handle.topic(), offset_ns);
}

sensors::ReadingVector QueryEngine::queryAbsolute(const std::string& topic,
                                                  common::TimestampNs t0,
                                                  common::TimestampNs t1) const {
    const sensors::SensorCache* cache = findCache(topic);
    return queryAbsoluteImpl(cache, topic, t0, t1);
}

sensors::ReadingVector QueryEngine::queryAbsolute(const sensors::CacheHandle& handle,
                                                  common::TimestampNs t0,
                                                  common::TimestampNs t1) const {
    const sensors::SensorCache* cache = resolveHandle(handle);
    return queryAbsoluteImpl(cache, handle.topic(), t0, t1);
}

std::optional<sensors::Reading> QueryEngine::latest(const std::string& topic) const {
    const sensors::SensorCache* cache = findCache(topic);
    return latestImpl(cache, topic);
}

std::optional<sensors::Reading> QueryEngine::latest(const sensors::CacheHandle& handle) const {
    const sensors::SensorCache* cache = resolveHandle(handle);
    return latestImpl(cache, handle.topic());
}

std::optional<sensors::RangeStats> QueryEngine::statsRelative(
    const std::string& topic, common::TimestampNs offset_ns) const {
    const sensors::SensorCache* cache = findCache(topic);
    return statsRelativeImpl(cache, topic, offset_ns);
}

std::optional<sensors::RangeStats> QueryEngine::statsRelative(
    const sensors::CacheHandle& handle, common::TimestampNs offset_ns) const {
    const sensors::SensorCache* cache = resolveHandle(handle);
    return statsRelativeImpl(cache, handle.topic(), offset_ns);
}

}  // namespace wm::core
