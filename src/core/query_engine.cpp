#include "core/query_engine.h"

#include "common/time_utils.h"

namespace wm::core {

QueryEngine& QueryEngine::instance() {
    static QueryEngine engine;
    return engine;
}

void QueryEngine::setCacheStore(sensors::CacheStore* store) {
    cache_store_ = store;
}

void QueryEngine::setStorage(storage::StorageBackend* storage) {
    storage_ = storage;
}

std::size_t QueryEngine::rebuildTree() {
    std::vector<std::string> topics;
    if (cache_store_ != nullptr) topics = cache_store_->topics();
    if (storage_ != nullptr) {
        for (auto& topic : storage_->topics()) topics.push_back(std::move(topic));
    }
    std::lock_guard lock(tree_mutex_);
    return tree_.build(topics);
}

void QueryEngine::addTopics(const std::vector<std::string>& topics) {
    std::lock_guard lock(tree_mutex_);
    for (const auto& topic : topics) tree_.addSensor(topic);
}

sensors::ReadingVector QueryEngine::queryRelative(const std::string& topic,
                                                  common::TimestampNs offset_ns) const {
    if (cache_store_ != nullptr) {
        const sensors::SensorCache* cache = cache_store_->find(topic);
        // The cache covers the window only when the requested offset fits
        // inside its retention window.
        if (cache != nullptr && !cache->empty() && offset_ns <= cache->windowNs()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return cache->viewRelative(offset_ns);
        }
    }
    if (storage_ != nullptr) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        const auto newest = storage_->latest(topic);
        if (!newest) return {};
        return storage_->query(topic, newest->timestamp - offset_ns, newest->timestamp);
    }
    // Cache-only host with an over-long offset: serve what the cache has.
    if (cache_store_ != nullptr) {
        const sensors::SensorCache* cache = cache_store_->find(topic);
        if (cache != nullptr) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return cache->viewRelative(offset_ns);
        }
    }
    return {};
}

sensors::ReadingVector QueryEngine::queryAbsolute(const std::string& topic,
                                                  common::TimestampNs t0,
                                                  common::TimestampNs t1) const {
    if (cache_store_ != nullptr) {
        const sensors::SensorCache* cache = cache_store_->find(topic);
        if (cache != nullptr && !cache->empty()) {
            // The cache can only answer if the range begins inside its
            // retained window.
            const auto newest = cache->latest();
            if (newest && t0 >= newest->timestamp - cache->windowNs()) {
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                return cache->viewAbsolute(t0, t1);
            }
        }
    }
    if (storage_ != nullptr) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage_->query(topic, t0, t1);
    }
    if (cache_store_ != nullptr) {
        const sensors::SensorCache* cache = cache_store_->find(topic);
        if (cache != nullptr) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return cache->viewAbsolute(t0, t1);
        }
    }
    return {};
}

std::optional<sensors::Reading> QueryEngine::latest(const std::string& topic) const {
    if (cache_store_ != nullptr) {
        const sensors::SensorCache* cache = cache_store_->find(topic);
        if (cache != nullptr) {
            const auto reading = cache->latest();
            if (reading) {
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                return reading;
            }
        }
    }
    if (storage_ != nullptr) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage_->latest(topic);
    }
    return std::nullopt;
}

}  // namespace wm::core
