#include "core/query_engine.h"

#include "common/time_utils.h"

namespace wm::core {

QueryEngine& QueryEngine::instance() {
    static QueryEngine engine;
    return engine;
}

void QueryEngine::setCacheStore(sensors::CacheStore* store) {
    cache_store_.store(store, std::memory_order_release);
}

void QueryEngine::setStorage(storage::StorageBackend* storage) {
    storage_.store(storage, std::memory_order_release);
}

std::size_t QueryEngine::rebuildTree() {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    storage::StorageBackend* storage = storage_.load(std::memory_order_acquire);
    // Gather topics before taking the tree lock: CacheStore/StorageBackend
    // locks rank above the tree lock, so nesting them underneath would
    // invert the lock order.
    std::vector<std::string> topics;
    if (cache_store != nullptr) topics = cache_store->topics();
    if (storage != nullptr) {
        for (auto& topic : storage->topics()) topics.push_back(std::move(topic));
    }
    common::MutexLock lock(tree_mutex_);
    return tree_.build(topics);
}

void QueryEngine::addTopics(const std::vector<std::string>& topics) {
    common::MutexLock lock(tree_mutex_);
    for (const auto& topic : topics) tree_.addSensor(topic);
}

sensors::ReadingVector QueryEngine::queryRelativeImpl(const sensors::SensorCache* cache,
                                                      const std::string& topic,
                                                      common::TimestampNs offset_ns) const {
    // The cache covers the window only when the requested offset fits
    // inside its retention window.
    if (cache != nullptr && !cache->empty() && offset_ns <= cache->windowNs()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewRelative(offset_ns);
    }
    if (storage::StorageBackend* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        const auto newest = storage->latest(topic);
        if (!newest) return {};
        return storage->query(topic, newest->timestamp - offset_ns, newest->timestamp);
    }
    // Cache-only host with an over-long offset: serve what the cache has.
    if (cache != nullptr) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewRelative(offset_ns);
    }
    return {};
}

sensors::ReadingVector QueryEngine::queryAbsoluteImpl(const sensors::SensorCache* cache,
                                                      const std::string& topic,
                                                      common::TimestampNs t0,
                                                      common::TimestampNs t1) const {
    if (cache != nullptr && !cache->empty()) {
        // The cache can only answer if the range begins inside its
        // retained window.
        const auto newest = cache->latest();
        if (newest && t0 >= newest->timestamp - cache->windowNs()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return cache->viewAbsolute(t0, t1);
        }
    }
    if (storage::StorageBackend* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage->query(topic, t0, t1);
    }
    if (cache != nullptr) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->viewAbsolute(t0, t1);
    }
    return {};
}

std::optional<sensors::Reading> QueryEngine::latestImpl(const sensors::SensorCache* cache,
                                                        const std::string& topic) const {
    if (cache != nullptr) {
        const auto reading = cache->latest();
        if (reading) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return reading;
        }
    }
    if (storage::StorageBackend* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return storage->latest(topic);
    }
    return std::nullopt;
}

std::optional<sensors::RangeStats> QueryEngine::statsRelativeImpl(
    const sensors::SensorCache* cache, const std::string& topic,
    common::TimestampNs offset_ns) const {
    if (cache != nullptr && !cache->empty() && offset_ns <= cache->windowNs()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->statsRelative(offset_ns);
    }
    if (storage::StorageBackend* storage = storage_.load(std::memory_order_acquire)) {
        storage_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        const auto newest = storage->latest(topic);
        if (!newest) return std::nullopt;
        const sensors::ReadingVector window =
            storage->query(topic, newest->timestamp - offset_ns, newest->timestamp);
        if (window.empty()) return std::nullopt;
        sensors::RangeStats stats;
        for (const auto& reading : window) stats.accumulate(reading);
        return stats;
    }
    if (cache != nullptr && !cache->empty()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return cache->statsRelative(offset_ns);
    }
    return std::nullopt;
}

sensors::ReadingVector QueryEngine::queryRelative(const std::string& topic,
                                                  common::TimestampNs offset_ns) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? cache_store->find(topic) : nullptr;
    return queryRelativeImpl(cache, topic, offset_ns);
}

sensors::ReadingVector QueryEngine::queryRelative(const sensors::CacheHandle& handle,
                                                  common::TimestampNs offset_ns) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? handle.resolve(*cache_store) : nullptr;
    return queryRelativeImpl(cache, handle.topic(), offset_ns);
}

sensors::ReadingVector QueryEngine::queryAbsolute(const std::string& topic,
                                                  common::TimestampNs t0,
                                                  common::TimestampNs t1) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? cache_store->find(topic) : nullptr;
    return queryAbsoluteImpl(cache, topic, t0, t1);
}

sensors::ReadingVector QueryEngine::queryAbsolute(const sensors::CacheHandle& handle,
                                                  common::TimestampNs t0,
                                                  common::TimestampNs t1) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? handle.resolve(*cache_store) : nullptr;
    return queryAbsoluteImpl(cache, handle.topic(), t0, t1);
}

std::optional<sensors::Reading> QueryEngine::latest(const std::string& topic) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? cache_store->find(topic) : nullptr;
    return latestImpl(cache, topic);
}

std::optional<sensors::Reading> QueryEngine::latest(const sensors::CacheHandle& handle) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? handle.resolve(*cache_store) : nullptr;
    return latestImpl(cache, handle.topic());
}

std::optional<sensors::RangeStats> QueryEngine::statsRelative(
    const std::string& topic, common::TimestampNs offset_ns) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? cache_store->find(topic) : nullptr;
    return statsRelativeImpl(cache, topic, offset_ns);
}

std::optional<sensors::RangeStats> QueryEngine::statsRelative(
    const sensors::CacheHandle& handle, common::TimestampNs offset_ns) const {
    sensors::CacheStore* cache_store = cache_store_.load(std::memory_order_acquire);
    const sensors::SensorCache* cache =
        cache_store != nullptr ? handle.resolve(*cache_store) : nullptr;
    return statsRelativeImpl(cache, handle.topic(), offset_ns);
}

}  // namespace wm::core
