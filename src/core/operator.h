#pragma once

// The Wintermute operator framework (paper Sections IV-B and V-C).
// Operators are computational entities performing ODA tasks over a set of
// units. They are configured with:
//
//  * a location — wherever the hosting entity (Pusher / Collect Agent) runs;
//    isolation from the location comes from the OperatorContext, which wires
//    the Query Engine (input) and a publish callback (output);
//  * an operational mode — Online (invoked at regular intervals, producing
//    time-series outputs) or OnDemand (invoked via the REST API);
//  * a unit mode — Sequential (all units share the operator's model and are
//    processed in order) or Parallel (units are dispatched concurrently; for
//    stateful models the configurator instantiates one operator per unit).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/mutex.h"
#include "common/time_utils.h"
#include "core/query_engine.h"
#include "core/unit_system.h"
#include "jobs/job_manager.h"
#include "sensors/reading.h"

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::core {

enum class OperatorMode { kOnline, kOnDemand };
enum class UnitMode { kSequential, kParallel };

/// Settings common to every operator, parsed from its configuration block.
struct OperatorConfig {
    std::string name;
    std::string plugin;
    OperatorMode mode = OperatorMode::kOnline;
    UnitMode unit_mode = UnitMode::kSequential;
    /// Computation interval for Online mode.
    common::TimestampNs interval_ns = common::kNsPerSec;
    /// Default input query window (relative offset).
    common::TimestampNs window_ns = common::kNsPerSec;
    /// Query Engine mode: relative offsets (true) or absolute ranges.
    bool relative_queries = true;
    /// Whether outputs are pushed into the sensor space.
    bool publish_outputs = true;
    /// Raw pattern strings, resolved against the sensor tree by the
    /// configurator.
    std::vector<std::string> input_patterns;
    std::vector<std::string> output_patterns;
    /// Operator-level output topics (absolute), written once per
    /// computation pass rather than per unit — e.g. the average error of a
    /// model applied to all units (paper Section V-C).
    std::vector<std::string> global_output_topics;
};

/// Parses the common operator settings from a config block. Plugin-specific
/// keys are read by the plugin's own configurator from the same node.
OperatorConfig parseOperatorConfig(const common::ConfigNode& node,
                                   const std::string& plugin);

/// One output value bound to its sensor topic.
struct SensorValue {
    std::string topic;
    sensors::Reading reading;
};

/// Wiring an operator receives from its hosting entity.
struct OperatorContext {
    QueryEngine* query_engine = nullptr;
    /// Output delivery (cache insert + MQTT / storage write, host-specific).
    std::function<void(const SensorValue&)> publish;
    /// Only set for hosts with resource-manager access (job operators).
    jobs::JobManager* job_manager = nullptr;
    /// Knob actuation for feedback-loop operators (paper Section IV-B-d):
    /// the host maps (knob name, target component path, value) onto the
    /// system — e.g. a DVFS setting on a node. Returns false when the knob
    /// or target is unknown. Unset on hosts without control authority.
    std::function<bool(const std::string& knob, const std::string& target, double value)>
        actuate;
};

/// Abstract operator as seen by the Operator Manager.
class OperatorInterface {
  public:
    explicit OperatorInterface(OperatorConfig config, OperatorContext context)
        : config_(std::move(config)), context_(std::move(context)) {}
    virtual ~OperatorInterface() = default;

    const OperatorConfig& config() const { return config_; }
    const std::string& name() const { return config_.name; }
    const std::string& plugin() const { return config_.plugin; }

    /// Snapshot of the operator's current units.
    virtual std::vector<Unit> units() const = 0;

    /// One computation pass over all units at nominal time `t` (Online tick).
    virtual void computeAll(common::TimestampNs t) = 0;

    /// On-demand computation of one unit; returns its outputs. Nullopt when
    /// the unit is unknown.
    virtual std::optional<std::vector<SensorValue>> computeOnDemand(
        const std::string& unit_name, common::TimestampNs t) = 0;

    /// Model checkpointing (docs/RESILIENCE.md, "Durability model"): an
    /// operator with state worth persisting serialises it into `payload`
    /// and returns true. The default has no durable state.
    virtual bool saveState(std::string* payload) {
        (void)payload;
        return false;
    }

    /// Restores state captured by saveState. Returns false when the payload
    /// is malformed or from an incompatible configuration; the operator is
    /// then left in its freshly-constructed state.
    virtual bool restoreState(const std::string& payload) {
        (void)payload;
        return false;
    }

    /// Enabled state, togglable over the REST API.
    bool enabled() const { return enabled_.load(); }
    void setEnabled(bool enabled) { enabled_.store(enabled); }

    std::uint64_t computeCount() const { return compute_count_.load(); }
    std::uint64_t errorCount() const { return error_count_.load(); }
    /// Duration of the last computeAll pass.
    common::TimestampNs lastComputeDurationNs() const { return last_duration_ns_.load(); }

  protected:
    OperatorConfig config_;
    OperatorContext context_;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> compute_count_{0};
    std::atomic<std::uint64_t> error_count_{0};
    std::atomic<common::TimestampNs> last_duration_ns_{0};
};

using OperatorPtr = std::shared_ptr<OperatorInterface>;

/// Base class for concrete operator plugins: owns the resolved units and
/// implements unit iteration, output publication, error isolation and
/// timing. Plugins override compute() — and optionally opLevelOutputs() for
/// operator-level outputs such as a model's running error.
class OperatorTemplate : public OperatorInterface {
  public:
    OperatorTemplate(OperatorConfig config, OperatorContext context)
        : OperatorInterface(std::move(config), std::move(context)) {}

    void setUnits(std::vector<Unit> units);
    std::vector<Unit> units() const override;

    void computeAll(common::TimestampNs t) override;
    std::optional<std::vector<SensorValue>> computeOnDemand(
        const std::string& unit_name, common::TimestampNs t) override;

    /// Checkpointing entry points: serialise under the state lock so a
    /// snapshot never captures a model mid-update. Plugins participate by
    /// overriding serializeState()/deserializeState().
    bool saveState(std::string* payload) final;
    bool restoreState(const std::string& payload) final;

  protected:
    /// The computation body, invoked with state_mutex_ held; plugins that
    /// need pre-pass work on their model (e.g. refitting a clustering model
    /// before the unit iteration) override this instead of computeAll.
    virtual void computeAllLocked(common::TimestampNs t) WM_REQUIRES(state_mutex_);

    /// Plugin checkpoint hooks, called with state_mutex_ held. The defaults
    /// persist nothing (stateless operators).
    virtual bool serializeState(persist::Encoder& encoder) const
        WM_REQUIRES(state_mutex_);
    virtual bool deserializeState(persist::Decoder& decoder) WM_REQUIRES(state_mutex_);

    /// Plugin-specific computation for one unit: query inputs through the
    /// context's Query Engine, return output values (typically one per
    /// unit output topic). Exceptions are caught and counted by the base.
    virtual std::vector<SensorValue> compute(const Unit& unit, common::TimestampNs t) = 0;

    /// Operator-level outputs, emitted once per computeAll pass after the
    /// unit iteration; the default produces nothing. Plugins map returned
    /// values positionally onto config().global_output_topics.
    virtual std::vector<double> computeOperatorLevel(common::TimestampNs t);

    /// Convenience input query honouring the operator's configured window
    /// and query mode.
    sensors::ReadingVector queryInput(const std::string& topic,
                                      common::TimestampNs t) const;

    /// Handle-keyed input query: uses unit.inputs[index]'s bound CacheHandle
    /// (no per-read string hashing); falls back to the string path when the
    /// unit carries no handles. Same results as queryInput(topic, t).
    sensors::ReadingVector queryInput(const Unit& unit, std::size_t index,
                                      common::TimestampNs t) const;

    /// Fused input reduction over the configured window: count/sum/min/max/
    /// first/last in one cache pass with no vector materialisation. Nullopt
    /// when the input has no data.
    std::optional<sensors::RangeStats> inputStats(const Unit& unit, std::size_t index,
                                                  common::TimestampNs t) const;

    /// Most recent reading of unit.inputs[index], through the handle.
    std::optional<sensors::Reading> inputLatest(const Unit& unit,
                                                std::size_t index) const;

    /// Serialises compute passes against saveState/restoreState: a model
    /// checkpoint taken by the supervisor never observes a half-updated
    /// model. Ranked before the units lock (compute passes take both).
    mutable common::Mutex state_mutex_{"OperatorTemplate.state",
                                       common::LockRank::kOperatorState};

    /// Units guarded for concurrent access (job operators rebuild them).
    mutable common::Mutex units_mutex_{"OperatorTemplate.units",
                                       common::LockRank::kOperatorUnits};
    std::vector<Unit> units_ WM_GUARDED_BY(units_mutex_);

  private:
    void computeUnitChecked(const Unit& unit, common::TimestampNs t,
                            std::vector<SensorValue>* collected);
};

/// Base class for job operators (paper Section V-C): units are materialised
/// per running job at every computation, anchored on the job's node list.
/// Unit names take the form "/job/<id>"; input expressions resolve against
/// each of the job's nodes and outputs live under the job unit.
class JobOperatorTemplate : public OperatorTemplate {
  public:
    JobOperatorTemplate(OperatorConfig config, OperatorContext context,
                        UnitTemplate unit_template)
        : OperatorTemplate(std::move(config), std::move(context)),
          unit_template_(std::move(unit_template)) {}

    void computeAll(common::TimestampNs t) override;

    /// Materialises units for the jobs running at time `t`.
    std::vector<Unit> buildJobUnits(common::TimestampNs t) const;

  protected:
    UnitTemplate unit_template_;

  private:
    /// Unit resolution is expensive (tree scans per job node); units are
    /// rebuilt only when the running-job set or the sensor tree changes.
    std::string last_job_signature_;
    std::size_t last_tree_sensors_ = 0;
};

}  // namespace wm::core
