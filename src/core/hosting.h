#pragma once

// Host wiring for the Wintermute framework (paper Fig. 3/4): builds the
// OperatorContext for the two instantiation scenarios.
//
//  * Pusher host — operators see locally-sampled sensors through the sensor
//    cache; outputs go back into the cache and (optionally) out over MQTT,
//    so Collect-Agent-side stages of a pipeline can consume them.
//  * Collect Agent host — operators see the full sensor space (caches with
//    storage fallback); outputs go into the agent's cache and the storage
//    backend; job-related data is available through the Job Manager.

#include "core/operator.h"
#include "core/query_engine.h"
#include "jobs/job_manager.h"
#include "mqtt/broker.h"
#include "sensors/sensor_cache.h"
#include "storage/storage_backend.h"

namespace wm::core {

/// General-purpose context builder. `query_engine` must already be wired to
/// the host's cache store (and storage, when present). Output values are
/// stored into `cache_store`, forwarded to `broker` and inserted into
/// `storage` — pass nullptr for sinks the host does not have. All pointers
/// are borrowed and must outlive the operators.
OperatorContext makeHostContext(QueryEngine& query_engine,
                                sensors::CacheStore* cache_store,
                                mqtt::Broker* broker,
                                storage::Storage* storage,
                                jobs::JobManager* job_manager = nullptr);

}  // namespace wm::core
