#pragma once

// The sensor tree of the Wintermute Unit System (paper Section III-A).
// Sensor topics are slash-separated paths expressing physical/logical
// placement; the tree built from them has system components (rack, chassis,
// node, CPU, ...) as internal nodes and sensors as leaves. The tree is the
// substrate for pattern-based unit resolution: vertical navigation selects a
// tree level (topdown/bottomup), horizontal navigation filters nodes within
// the level.

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace wm::core {

/// Immutable-after-build tree over the sensor space.
class SensorTree {
  public:
    /// Builds the tree from a list of sensor topics. Invalid topics (not
    /// starting with '/', no sensor segment) are skipped; returns the number
    /// of sensors inserted.
    std::size_t build(const std::vector<std::string>& sensor_topics);

    /// Adds one sensor to an existing tree; false for invalid topics.
    bool addSensor(const std::string& topic);

    void clear();

    /// True if `path` names a component node ("/" is always present).
    bool hasNode(const std::string& path) const;

    /// Sensor names (leaf segments) attached to a component node.
    std::vector<std::string> sensorsOf(const std::string& path) const;

    /// True if component `path` has a sensor called `name`.
    bool hasSensor(const std::string& path, const std::string& name) const;

    /// Child component paths of `path`, sorted.
    std::vector<std::string> children(const std::string& path) const;

    /// Component paths at tree depth `depth` (root = 0), sorted.
    std::vector<std::string> nodesAtDepth(std::size_t depth) const;

    /// Deepest component depth in the tree (0 when only the root exists).
    std::size_t maxDepth() const { return max_depth_; }

    /// All sensor topics in the tree, sorted.
    std::vector<std::string> allSensors() const;

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t sensorCount() const { return sensor_count_; }

    /// True if `a` is an ancestor of `b`, b of a, or a == b — the
    /// "connected by an ascending or descending path" relation that unit
    /// input resolution requires (paper Section III-B).
    static bool hierarchicallyRelated(const std::string& a, const std::string& b);

  private:
    struct Node {
        std::set<std::string> sensors;   // leaf names
        std::set<std::string> children;  // child component paths
        std::size_t depth = 0;
    };

    std::map<std::string, Node> nodes_;  // keyed by canonical component path
    std::size_t max_depth_ = 0;
    std::size_t sensor_count_ = 0;
};

}  // namespace wm::core
