#include "core/sensor_tree.h"

#include <algorithm>

#include "common/string_utils.h"

namespace wm::core {

std::size_t SensorTree::build(const std::vector<std::string>& sensor_topics) {
    clear();
    std::size_t inserted = 0;
    for (const auto& topic : sensor_topics) {
        if (addSensor(topic)) ++inserted;
    }
    return inserted;
}

bool SensorTree::addSensor(const std::string& topic) {
    const std::string canonical = common::normalizePath(topic);
    const auto segments = common::pathSegments(canonical);
    if (segments.empty()) return false;  // the bare root is not a sensor

    // Ensure the component chain exists: every prefix of the topic except
    // the final (sensor) segment.
    std::string path = "/";
    nodes_["/"];  // root always exists
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        const std::string child = common::pathJoin(path, segments[i]);
        nodes_[path].children.insert(child);
        Node& node = nodes_[child];
        node.depth = i + 1;
        max_depth_ = std::max(max_depth_, node.depth);
        path = child;
    }
    const bool added = nodes_[path].sensors.insert(segments.back()).second;
    if (added) ++sensor_count_;
    return added;
}

void SensorTree::clear() {
    nodes_.clear();
    max_depth_ = 0;
    sensor_count_ = 0;
}

bool SensorTree::hasNode(const std::string& path) const {
    return nodes_.count(common::normalizePath(path)) > 0;
}

std::vector<std::string> SensorTree::sensorsOf(const std::string& path) const {
    auto it = nodes_.find(common::normalizePath(path));
    if (it == nodes_.end()) return {};
    return {it->second.sensors.begin(), it->second.sensors.end()};
}

bool SensorTree::hasSensor(const std::string& path, const std::string& name) const {
    auto it = nodes_.find(common::normalizePath(path));
    return it != nodes_.end() && it->second.sensors.count(name) > 0;
}

std::vector<std::string> SensorTree::children(const std::string& path) const {
    auto it = nodes_.find(common::normalizePath(path));
    if (it == nodes_.end()) return {};
    return {it->second.children.begin(), it->second.children.end()};
}

std::vector<std::string> SensorTree::nodesAtDepth(std::size_t depth) const {
    std::vector<std::string> out;
    for (const auto& [path, node] : nodes_) {
        if (node.depth == depth && (depth > 0 || path == "/")) out.push_back(path);
    }
    return out;  // std::map iteration is already sorted
}

std::vector<std::string> SensorTree::allSensors() const {
    std::vector<std::string> out;
    out.reserve(sensor_count_);
    for (const auto& [path, node] : nodes_) {
        for (const auto& sensor : node.sensors) {
            out.push_back(common::pathJoin(path, sensor));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool SensorTree::hierarchicallyRelated(const std::string& a, const std::string& b) {
    return common::isPathAncestor(a, b) || common::isPathAncestor(b, a);
}

}  // namespace wm::core
