#pragma once

// The Query Engine (paper Section V-B): the single component through which
// operator plugins obtain sensor data and discover the sensor space. It
// keeps the SensorTree/navigator built over all known topics, and serves
// time-range queries cache-first with storage fallback:
//
//  * relative mode — offsets against the most recent reading; O(1) cache
//    view computation;
//  * absolute mode — wall-clock timestamp ranges; O(log N) binary search.
//
// The hosting entity (Pusher or Collect Agent) wires in its cache store and,
// for Collect Agents, the storage backend, at startup. Plugins are thereby
// isolated from where they run — the same plugin code works in both.
//
// Sharded deployments register one cache store per Collect Agent shard via
// addCacheStore() and wire the sharded storage behind the same Storage
// interface. A topic lives in exactly one shard, so reads probe the stores
// in registration order and use the first cache that knows the topic —
// results are bit-identical to the single-store build (differential-tested
// in tests/test_sharding.cpp).

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "core/sensor_tree.h"
#include "sensors/sensor_cache.h"
#include "storage/storage_backend.h"

namespace wm::core {

class QueryEngine {
  public:
    QueryEngine() = default;

    /// Process-wide instance (DCDB uses a singleton; tests construct their
    /// own instances instead).
    static QueryEngine& instance();

    /// Wires the local sensor caches (the fast path), replacing any stores
    /// registered so far. Not owned. Call before concurrent use.
    void setCacheStore(sensors::CacheStore* store);
    /// Registers an additional cache store (one per Collect Agent shard in
    /// sharded deployments). Not owned. Call before concurrent use.
    void addCacheStore(sensors::CacheStore* store);
    std::size_t cacheStoreCount() const {
        return cache_store_count_.load(std::memory_order_acquire);
    }
    /// Wires the storage fallback (Collect Agent only) — the unsharded
    /// backend or a ShardedStorageBackend, behind the same interface. Not
    /// owned.
    void setStorage(storage::Storage* storage);

    /// Rebuilds the sensor tree from every topic known to the cache store
    /// and (when wired) the storage backend. Returns the sensor count.
    std::size_t rebuildTree();

    /// Extends the tree with topics not yet present (e.g. operator outputs
    /// declared before their first reading).
    void addTopics(const std::vector<std::string>& topics);

    /// Read access to the navigator. The reference remains valid; rebuilds
    /// happen in place under the engine's lock — callers resolving units
    /// hold no readings, so brief staleness is acceptable. Because of that
    /// documented benign-staleness contract the accessor deliberately skips
    /// the tree lock (and the static analysis that would demand it).
    const SensorTree& tree() const WM_NO_THREAD_SAFETY_ANALYSIS { return tree_; }

    /// Relative query: the last `offset_ns` of data for `topic`, ending at
    /// the most recent reading. Cache-first; falls back to storage using the
    /// current time as the anchor.
    sensors::ReadingVector queryRelative(const std::string& topic,
                                         common::TimestampNs offset_ns) const;

    /// Absolute query: readings with t0 <= timestamp <= t1.
    sensors::ReadingVector queryAbsolute(const std::string& topic, common::TimestampNs t0,
                                         common::TimestampNs t1) const;

    /// Most recent reading of a topic (cache-first).
    std::optional<sensors::Reading> latest(const std::string& topic) const;

    // Handle-keyed variants (the per-read hot path, docs/PERFORMANCE.md):
    // operators bind a CacheHandle per input at unit-resolution time; each
    // query then resolves topic -> cache through the interned id with no
    // string hash and no CacheStore lock. Results agree exactly with the
    // string-keyed variants (differential-tested).
    sensors::ReadingVector queryRelative(const sensors::CacheHandle& handle,
                                         common::TimestampNs offset_ns) const;
    sensors::ReadingVector queryAbsolute(const sensors::CacheHandle& handle,
                                         common::TimestampNs t0,
                                         common::TimestampNs t1) const;
    std::optional<sensors::Reading> latest(const sensors::CacheHandle& handle) const;

    /// Fused relative-window reduction (count/sum/min/max/first/last) in a
    /// single cache pass with no allocation; nullopt when no data. Storage
    /// fallback reduces the queried vector.
    std::optional<sensors::RangeStats> statsRelative(const sensors::CacheHandle& handle,
                                                     common::TimestampNs offset_ns) const;
    std::optional<sensors::RangeStats> statsRelative(const std::string& topic,
                                                     common::TimestampNs offset_ns) const;

    std::uint64_t cacheHits() const { return cache_hits_.load(); }
    std::uint64_t storageFallbacks() const { return storage_fallbacks_.load(); }

  private:
    /// First registered store whose cache knows `topic` (a topic lives in
    /// exactly one shard's store); null when none does.
    sensors::SensorCache* findCache(const std::string& topic) const;
    sensors::SensorCache* resolveHandle(const sensors::CacheHandle& handle) const;

    // Shared bodies: `cache` is the already-resolved cache (may be null);
    // `topic` is only used for the storage fallback.
    sensors::ReadingVector queryRelativeImpl(const sensors::SensorCache* cache,
                                             const std::string& topic,
                                             common::TimestampNs offset_ns) const;
    sensors::ReadingVector queryAbsoluteImpl(const sensors::SensorCache* cache,
                                             const std::string& topic,
                                             common::TimestampNs t0,
                                             common::TimestampNs t1) const;
    std::optional<sensors::Reading> latestImpl(const sensors::SensorCache* cache,
                                               const std::string& topic) const;
    std::optional<sensors::RangeStats> statsRelativeImpl(const sensors::SensorCache* cache,
                                                         const std::string& topic,
                                                         common::TimestampNs offset_ns) const;

    mutable common::Mutex tree_mutex_{"QueryEngine.tree", common::LockRank::kQueryEngineTree};
    SensorTree tree_ WM_GUARDED_BY(tree_mutex_);
    /// Upper bound on registered cache stores; matches the storage plane's
    /// ShardedStorageBackend::kMaxShards.
    static constexpr std::size_t kMaxCacheStores = 64;

    // Atomic pointers: the hosting entity wires these once at startup but the
    // singleton makes unsynchronised set/read interleavings possible in tests.
    std::array<std::atomic<sensors::CacheStore*>, kMaxCacheStores> cache_stores_{};
    std::atomic<std::size_t> cache_store_count_{0};
    std::atomic<storage::Storage*> storage_{nullptr};
    mutable std::atomic<std::uint64_t> cache_hits_{0};
    mutable std::atomic<std::uint64_t> storage_fallbacks_{0};
};

}  // namespace wm::core
