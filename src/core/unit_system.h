#pragma once

// Pattern units and their resolution (paper Sections III-B/III-C). A pattern
// expression names a sensor together with a vertical tree-level selector and
// an optional horizontal filter:
//
//     <topdown+1>power              one level below the highest level
//     <bottomup, filter cpu>cpu-cycles   deepest level, node paths ~ /cpu/
//     <bottomup-1>healthy           one level above the deepest level
//     /rack0/chassis0/power         absolute topic (no pattern)
//
// Resolution (the configurator algorithm of Section V-C): the domain of the
// first output expression yields one unit per matching node; for each unit,
// every expression is resolved to the domain nodes that are hierarchically
// related to the unit's node, producing the unit's concrete sensor topics.

#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "core/sensor_tree.h"
#include "sensors/sensor_cache.h"

namespace wm::core {

/// Vertical navigation anchor of a pattern expression.
enum class LevelAnchor {
    kAbsolute,  // no pattern: the expression is a full topic
    kTopDown,   // highest tree level (below the root), +k goes deeper
    kBottomUp,  // deepest tree level, -k goes shallower
};

struct PatternExpression {
    LevelAnchor anchor = LevelAnchor::kAbsolute;
    int offset = 0;          // +k for topdown, -k for bottomup (stored signed)
    std::string filter;      // empty = no horizontal filtering
    std::string sensor_name; // last topic segment (or full topic if absolute)

    /// Resolves the anchor to an absolute tree depth given the tree's
    /// maximum depth; nullopt when out of range or absolute.
    std::optional<std::size_t> resolveDepth(std::size_t max_depth) const;

    /// Round-trippable textual form.
    std::string toString() const;
};

/// Parses a pattern expression string; nullopt on malformed input.
std::optional<PatternExpression> parsePattern(const std::string& text);

/// A unit: the atomic component an operator's computation is bound to.
struct Unit {
    std::string name;                  // the node path the unit represents
    std::vector<std::string> inputs;   // resolved input sensor topics
    std::vector<std::string> outputs;  // resolved output sensor topics
    /// Cache handles parallel to `inputs`, bound once at unit-resolution
    /// time; per-read queries resolve topic -> cache through the interned
    /// id instead of hashing the topic string (docs/PERFORMANCE.md).
    std::vector<sensors::CacheHandlePtr> input_handles = {};

    /// (Re)builds input_handles from inputs. Called by the resolver; units
    /// assembled by hand (tests, job units) are re-bound by setUnits().
    void bindHandles() {
        input_handles.clear();
        input_handles.reserve(inputs.size());
        for (const auto& topic : inputs) {
            input_handles.push_back(sensors::makeCacheHandle(topic));
        }
    }

    /// Handle of inputs[index]; nullptr when handles were never bound.
    const sensors::CacheHandle* inputHandle(std::size_t index) const {
        return index < input_handles.size() ? input_handles[index].get() : nullptr;
    }
};

/// A pattern unit: abstract I/O specification, instantiable anywhere in the
/// tree where its expressions resolve.
struct UnitTemplate {
    std::vector<PatternExpression> inputs;
    std::vector<PatternExpression> outputs;
};

/// Parses input/output pattern strings into a template; nullopt if any
/// expression is malformed.
std::optional<UnitTemplate> makeUnitTemplate(const std::vector<std::string>& input_patterns,
                                             const std::vector<std::string>& output_patterns);

class UnitResolver {
  public:
    explicit UnitResolver(const SensorTree& tree) : tree_(tree) {}

    /// Domain of an expression: the tree nodes its level/filter matches.
    /// For inputs the node must carry the named sensor; outputs only need
    /// the node to exist (output sensors are created by the operator).
    std::vector<std::string> domain(const PatternExpression& expression,
                                    bool require_sensor) const;

    /// Instantiates all units of a template: one unit per node in the first
    /// output expression's domain; units whose inputs cannot be resolved are
    /// dropped (paper: "if no node satisfies it, the unit cannot be built").
    std::vector<Unit> resolveUnits(const UnitTemplate& unit_template) const;

    /// Builds the unit anchored at a specific node path (used by job
    /// operators, which anchor units at each job's nodes). Returns nullopt
    /// when any input expression resolves to no sensors.
    std::optional<Unit> resolveUnitAt(const std::string& node_path,
                                      const UnitTemplate& unit_template) const;

  private:
    /// Expression resolution relative to a unit node.
    std::vector<std::string> resolveExpression(const PatternExpression& expression,
                                               const std::string& unit_node,
                                               bool require_sensor) const;

    const SensorTree& tree_;
};

}  // namespace wm::core
