#include "core/operator_manager.h"

#include <filesystem>
#include <sstream>

#include "common/logging.h"
#include "persist/serializer.h"
#include "persist/snapshot.h"

namespace wm::core {

namespace {

constexpr std::uint32_t kOperatorSnapshotVersion = 1;

/// Snapshot file name for one operator: "<plugin>.<name>.opsnap" with path
/// separators flattened (operator names are sensor-tree paths).
std::string snapshotFileName(const OperatorInterface& op) {
    std::string name = op.plugin() + "." + op.name() + ".opsnap";
    for (char& c : name) {
        if (c == '/' || c == '\\') c = '_';
    }
    return name;
}

}  // namespace

OperatorManager::OperatorManager(OperatorContext context, std::size_t worker_threads)
    : context_(std::move(context)), pool_(worker_threads), scheduler_(pool_) {}

OperatorManager::~OperatorManager() {
    stop();
    scheduler_.stop();
}

bool OperatorManager::registerPlugin(const std::string& plugin,
                                     ConfiguratorFn configurator) {
    common::MutexLock lock(mutex_);
    return plugins_.emplace(plugin, std::move(configurator)).second;
}

std::vector<std::string> OperatorManager::pluginNames() const {
    common::MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(plugins_.size());
    for (const auto& [name, fn] : plugins_) out.push_back(name);
    return out;
}

int OperatorManager::loadPlugin(const std::string& plugin,
                                const common::ConfigNode& root) {
    ConfiguratorFn configurator;
    {
        common::MutexLock lock(mutex_);
        auto it = plugins_.find(plugin);
        if (it == plugins_.end()) return -1;
        configurator = it->second;
    }
    int created = 0;
    for (const auto& node : root.children()) {
        if (node.key() != "operator") continue;
        std::vector<OperatorPtr> ops = configurator(node, context_);
        for (auto& op : ops) {
            addOperator(op);
            ++created;
        }
    }
    WM_LOG(kInfo, "wintermute") << "plugin '" << plugin << "': created " << created
                                << " operators";
    return created;
}

void OperatorManager::addOperator(OperatorPtr op) {
    common::MutexLock lock(mutex_);
    operators_.push_back(op);
    if (running() && op->config().mode == OperatorMode::kOnline) {
        scheduleOperator(op);
    }
}

void OperatorManager::scheduleOperator(const OperatorPtr& op) {
    std::weak_ptr<OperatorInterface> weak = op;
    task_ids_.push_back(scheduler_.schedulePeriodic(
        op->config().interval_ns, [weak](common::TimestampNs t) {
            if (const OperatorPtr strong = weak.lock()) strong->computeAll(t);
        }));
}

void OperatorManager::start() {
    common::MutexLock lock(mutex_);
    if (running()) return;
    running_.store(true, std::memory_order_release);
    for (const auto& op : operators_) {
        if (op->config().mode == OperatorMode::kOnline) scheduleOperator(op);
    }
}

void OperatorManager::stop() {
    common::MutexLock lock(mutex_);
    if (!running()) return;
    running_.store(false, std::memory_order_release);
    for (common::TaskId id : task_ids_) scheduler_.cancel(id);
    task_ids_.clear();
}

void OperatorManager::tickAll(common::TimestampNs t) {
    for (const auto& op : operators()) {
        if (op->config().mode == OperatorMode::kOnline && op->enabled()) {
            op->computeAll(t);
        }
    }
}

std::vector<OperatorPtr> OperatorManager::operators() const {
    common::MutexLock lock(mutex_);
    return operators_;
}

OperatorPtr OperatorManager::findOperator(const std::string& name) const {
    common::MutexLock lock(mutex_);
    for (const auto& op : operators_) {
        if (op->name() == name) return op;
    }
    return nullptr;
}

std::optional<std::vector<SensorValue>> OperatorManager::computeOnDemand(
    const std::string& operator_name, const std::string& unit_name,
    common::TimestampNs t) {
    const OperatorPtr op = findOperator(operator_name);
    if (!op) return std::nullopt;
    return op->computeOnDemand(unit_name, t);
}

std::size_t OperatorManager::saveOperatorStates(const std::string& directory) {
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec) {
        WM_LOG(kWarning, "wintermute")
            << "operator snapshots: cannot create " << directory << ": " << ec.message();
        return 0;
    }
    std::size_t written = 0;
    for (const auto& op : operators()) {
        std::string blob;
        if (!op->saveState(&blob)) continue;  // stateless operator
        persist::Encoder encoder;
        encoder.putString(op->plugin());
        encoder.putString(op->name());
        encoder.putString(blob);
        const std::string path =
            (std::filesystem::path(directory) / snapshotFileName(*op)).string();
        if (persist::writeSnapshot(path, kOperatorSnapshotVersion, encoder.take())) {
            ++written;
            snapshots_written_.fetch_add(1, std::memory_order_relaxed);
        } else {
            WM_LOG(kWarning, "wintermute")
                << "operator snapshot write failed for " << op->name();
        }
    }
    return written;
}

std::size_t OperatorManager::restoreOperatorStates(const std::string& directory) {
    std::size_t restored = 0;
    for (const auto& op : operators()) {
        const std::string path =
            (std::filesystem::path(directory) / snapshotFileName(*op)).string();
        const auto snapshot = persist::readSnapshot(path);
        if (!snapshot || snapshot->version != kOperatorSnapshotVersion) continue;
        persist::Decoder decoder(snapshot->payload);
        std::string plugin;
        std::string name;
        std::string blob;
        decoder.getString(&plugin);
        decoder.getString(&name);
        decoder.getString(&blob);
        if (!decoder.ok() || plugin != op->plugin() || name != op->name()) continue;
        if (op->restoreState(blob)) {
            ++restored;
            snapshots_restored_.fetch_add(1, std::memory_order_relaxed);
            WM_LOG(kInfo, "wintermute")
                << "operator " << op->name() << ": state restored from " << path;
        } else {
            WM_LOG(kWarning, "wintermute")
                << "operator " << op->name() << ": stale or incompatible snapshot at "
                << path << " ignored";
        }
    }
    return restored;
}

void OperatorManager::bindRest(rest::Router& router) {
    // GET /wintermute/plugins — registered plugin types.
    router.route("GET", "/wintermute/plugins", [this](const rest::Request&) {
        std::ostringstream body;
        body << "{\"plugins\":[";
        const auto names = pluginNames();
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i > 0) body << ',';
            body << '"' << rest::jsonEscape(names[i]) << '"';
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });

    // GET /wintermute/operators — instantiated operators and their state.
    router.route("GET", "/wintermute/operators", [this](const rest::Request&) {
        std::ostringstream body;
        body << "{\"operators\":[";
        const auto ops = operators();
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const auto& op = ops[i];
            if (i > 0) body << ',';
            body << "{\"name\":\"" << rest::jsonEscape(op->name()) << "\",\"plugin\":\""
                 << rest::jsonEscape(op->plugin()) << "\",\"mode\":\""
                 << (op->config().mode == OperatorMode::kOnline ? "online" : "ondemand")
                 << "\",\"enabled\":" << (op->enabled() ? "true" : "false")
                 << ",\"units\":" << op->units().size()
                 << ",\"computes\":" << op->computeCount()
                 << ",\"errors\":" << op->errorCount() << "}";
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });

    // GET /wintermute/units/:operator — the operator's unit names.
    router.route("GET", "/wintermute/units/:operator", [this](const rest::Request& request) {
        const OperatorPtr op = findOperator(request.path_params.at("operator"));
        if (!op) return rest::Response::notFound("unknown operator");
        std::ostringstream body;
        body << "{\"units\":[";
        const auto units = op->units();
        for (std::size_t i = 0; i < units.size(); ++i) {
            if (i > 0) body << ',';
            body << '"' << rest::jsonEscape(units[i].name) << '"';
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });

    // PUT /wintermute/operators/:operator/start|stop — lifecycle toggles.
    router.route("PUT", "/wintermute/operators/:operator/:action",
                 [this](const rest::Request& request) {
                     const OperatorPtr op = findOperator(request.path_params.at("operator"));
                     if (!op) return rest::Response::notFound("unknown operator");
                     const std::string& action = request.path_params.at("action");
                     if (action == "start") {
                         op->setEnabled(true);
                     } else if (action == "stop") {
                         op->setEnabled(false);
                     } else {
                         return rest::Response::badRequest("unknown action: " + action);
                     }
                     return rest::Response::ok("{\"status\":\"ok\"}");
                 });

    // POST /wintermute/load/:plugin — dynamic plugin loading (paper Section
    // V-A: "these requests can instruct the manager to start, stop, or load
    // plugins dynamically"). The request body is a plugin configuration in
    // the usual format; created operators start according to their mode.
    router.route("POST", "/wintermute/load/:plugin", [this](const rest::Request& request) {
        const std::string& plugin = request.path_params.at("plugin");
        const auto parsed = common::parseConfig(request.body);
        if (!parsed.ok) {
            return rest::Response::badRequest("config parse error at line " +
                                              std::to_string(parsed.error_line) + ": " +
                                              parsed.error);
        }
        const int created = loadPlugin(plugin, parsed.root);
        if (created < 0) return rest::Response::notFound("unknown plugin: " + plugin);
        return rest::Response::ok("{\"created\":" + std::to_string(created) + "}");
    });

    // PUT /wintermute/compute?operator=X&unit=Y — On-demand mode trigger.
    // Output data is propagated only as the response to this request.
    router.route("PUT", "/wintermute/compute", [this](const rest::Request& request) {
        const auto op_it = request.query.find("operator");
        const auto unit_it = request.query.find("unit");
        if (op_it == request.query.end() || unit_it == request.query.end()) {
            return rest::Response::badRequest("operator and unit query parameters required");
        }
        const auto outputs =
            computeOnDemand(op_it->second, unit_it->second, common::nowNs());
        if (!outputs) return rest::Response::notFound("unknown operator or unit");
        std::ostringstream body;
        body << "{\"outputs\":[";
        for (std::size_t i = 0; i < outputs->size(); ++i) {
            const auto& value = (*outputs)[i];
            if (i > 0) body << ',';
            body << "{\"sensor\":\"" << rest::jsonEscape(value.topic)
                 << "\",\"timestamp\":" << value.reading.timestamp
                 << ",\"value\":" << value.reading.value << "}";
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });
}

}  // namespace wm::core
