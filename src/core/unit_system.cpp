#include "core/unit_system.h"

#include <algorithm>

#include "common/string_utils.h"

namespace wm::core {

std::optional<std::size_t> PatternExpression::resolveDepth(std::size_t max_depth) const {
    // The root (depth 0) is excluded from pattern navigation: topdown is
    // depth 1, bottomup is the deepest component level.
    if (anchor == LevelAnchor::kAbsolute) return std::nullopt;
    long depth = 0;
    if (anchor == LevelAnchor::kTopDown) {
        depth = 1 + offset;
    } else {
        depth = static_cast<long>(max_depth) + offset;  // offset is <= 0 here
    }
    if (depth < 1 || depth > static_cast<long>(max_depth)) return std::nullopt;
    return static_cast<std::size_t>(depth);
}

std::string PatternExpression::toString() const {
    if (anchor == LevelAnchor::kAbsolute) return sensor_name;
    std::string out = "<";
    if (anchor == LevelAnchor::kTopDown) {
        out += "topdown";
        if (offset != 0) out += "+" + std::to_string(offset);
    } else {
        out += "bottomup";
        if (offset != 0) out += std::to_string(offset);  // negative, keeps the '-'
    }
    if (!filter.empty()) out += ", filter " + filter;
    out += ">" + sensor_name;
    return out;
}

std::optional<PatternExpression> parsePattern(const std::string& text) {
    const std::string trimmed = common::trim(text);
    if (trimmed.empty()) return std::nullopt;
    PatternExpression expr;
    if (trimmed[0] != '<') {
        // Absolute topic: must be a canonical path with at least one segment.
        if (trimmed[0] != '/') return std::nullopt;
        expr.anchor = LevelAnchor::kAbsolute;
        expr.sensor_name = common::normalizePath(trimmed);
        if (expr.sensor_name == "/") return std::nullopt;
        return expr;
    }
    const std::size_t close = trimmed.find('>');
    if (close == std::string::npos) return std::nullopt;
    expr.sensor_name = common::trim(trimmed.substr(close + 1));
    if (expr.sensor_name.empty() || expr.sensor_name.find('/') != std::string::npos) {
        return std::nullopt;
    }

    // Inside the angle brackets: "LEVELSPEC[, filter REGEX]".
    const std::string inner = trimmed.substr(1, close - 1);
    const auto parts = common::split(inner, ',');
    if (parts.empty()) return std::nullopt;

    const std::string level = common::trim(parts[0]);
    static const std::regex level_re(R"(^(topdown|bottomup)([+-]\d+)?$)");
    std::smatch match;
    if (!std::regex_match(level, match, level_re)) return std::nullopt;
    expr.anchor = match[1] == "topdown" ? LevelAnchor::kTopDown : LevelAnchor::kBottomUp;
    if (match[2].matched) {
        expr.offset = std::stoi(match[2].str());
    }
    // Direction sanity: topdown descends (+), bottomup ascends (-).
    if (expr.anchor == LevelAnchor::kTopDown && expr.offset < 0) return std::nullopt;
    if (expr.anchor == LevelAnchor::kBottomUp && expr.offset > 0) return std::nullopt;

    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string clause = common::trim(parts[i]);
        if (common::startsWith(clause, "filter")) {
            expr.filter = common::trim(clause.substr(6));
            if (expr.filter.empty()) return std::nullopt;
            // Validate the regex eagerly for a clear configuration error.
            try {
                std::regex probe(expr.filter);
            } catch (const std::regex_error&) {
                return std::nullopt;
            }
        } else {
            return std::nullopt;
        }
    }
    return expr;
}

std::optional<UnitTemplate> makeUnitTemplate(
    const std::vector<std::string>& input_patterns,
    const std::vector<std::string>& output_patterns) {
    UnitTemplate out;
    for (const auto& text : input_patterns) {
        auto expr = parsePattern(text);
        if (!expr) return std::nullopt;
        out.inputs.push_back(std::move(*expr));
    }
    for (const auto& text : output_patterns) {
        auto expr = parsePattern(text);
        if (!expr) return std::nullopt;
        out.outputs.push_back(std::move(*expr));
    }
    return out;
}

std::vector<std::string> UnitResolver::domain(const PatternExpression& expression,
                                              bool require_sensor) const {
    if (expression.anchor == LevelAnchor::kAbsolute) {
        // Absolute expressions have a single-node domain: the topic's parent.
        const std::string parent = common::pathParent(expression.sensor_name);
        const std::string name = common::pathLeaf(expression.sensor_name);
        if (!tree_.hasNode(parent)) return {};
        if (require_sensor && !tree_.hasSensor(parent, name)) return {};
        return {parent};
    }
    const auto depth = expression.resolveDepth(tree_.maxDepth());
    if (!depth) return {};
    std::vector<std::string> nodes = tree_.nodesAtDepth(*depth);
    std::vector<std::string> out;
    std::optional<std::regex> filter;
    if (!expression.filter.empty()) filter.emplace(expression.filter);
    for (auto& node : nodes) {
        if (filter && !std::regex_search(node, *filter)) continue;
        if (require_sensor && !tree_.hasSensor(node, expression.sensor_name)) continue;
        out.push_back(std::move(node));
    }
    return out;
}

std::vector<Unit> UnitResolver::resolveUnits(const UnitTemplate& unit_template) const {
    std::vector<Unit> units;
    if (unit_template.outputs.empty()) return units;
    // Step (a): the first output expression's domain defines the units.
    const std::vector<std::string> anchors =
        domain(unit_template.outputs.front(), /*require_sensor=*/false);
    // Steps (b)+(c): one unit per domain node, with all expressions resolved
    // relative to it. Each expression's domain is computed once (tree scan +
    // filter regex) and only the cheap hierarchy test runs per unit.
    struct PreparedExpression {
        const PatternExpression* expression;
        std::vector<std::string> domain;
        bool is_input;
    };
    std::vector<PreparedExpression> inputs;
    inputs.reserve(unit_template.inputs.size());
    for (const auto& expression : unit_template.inputs) {
        inputs.push_back({&expression, domain(expression, /*require_sensor=*/true), true});
    }
    std::vector<PreparedExpression> outputs;
    outputs.reserve(unit_template.outputs.size());
    for (const auto& expression : unit_template.outputs) {
        outputs.push_back(
            {&expression, domain(expression, /*require_sensor=*/false), false});
    }

    const auto resolveFromDomain = [](const PreparedExpression& prepared,
                                      const std::string& unit_node,
                                      std::vector<std::string>& sink) {
        if (prepared.expression->anchor == LevelAnchor::kAbsolute) {
            // Absolute inputs must exist; absolute outputs are created by
            // the operator and pass unconditionally.
            if (prepared.is_input && prepared.domain.empty()) return false;
            sink.push_back(prepared.expression->sensor_name);
            return true;
        }
        bool any = false;
        for (const auto& node : prepared.domain) {
            if (!SensorTree::hierarchicallyRelated(node, unit_node)) continue;
            sink.push_back(common::pathJoin(node, prepared.expression->sensor_name));
            any = true;
        }
        return any;
    };

    for (const auto& anchor : anchors) {
        Unit unit;
        unit.name = anchor;
        bool complete = true;
        for (const auto& prepared : inputs) {
            if (!resolveFromDomain(prepared, anchor, unit.inputs)) {
                complete = false;  // the unit cannot be built
                break;
            }
        }
        if (!complete) continue;
        for (const auto& prepared : outputs) {
            if (!resolveFromDomain(prepared, anchor, unit.outputs)) {
                complete = false;
                break;
            }
        }
        if (complete) {
            unit.bindHandles();
            units.push_back(std::move(unit));
        }
    }
    return units;
}

std::optional<Unit> UnitResolver::resolveUnitAt(const std::string& node_path,
                                                const UnitTemplate& unit_template) const {
    const std::string canonical = common::normalizePath(node_path);
    if (!tree_.hasNode(canonical)) return std::nullopt;
    Unit unit;
    unit.name = canonical;
    for (const auto& expression : unit_template.inputs) {
        const auto resolved = resolveExpression(expression, canonical, /*require_sensor=*/true);
        if (resolved.empty()) return std::nullopt;  // the unit cannot be built
        unit.inputs.insert(unit.inputs.end(), resolved.begin(), resolved.end());
    }
    for (const auto& expression : unit_template.outputs) {
        const auto resolved =
            resolveExpression(expression, canonical, /*require_sensor=*/false);
        if (resolved.empty()) return std::nullopt;
        unit.outputs.insert(unit.outputs.end(), resolved.begin(), resolved.end());
    }
    unit.bindHandles();
    return unit;
}

std::vector<std::string> UnitResolver::resolveExpression(
    const PatternExpression& expression, const std::string& unit_node,
    bool require_sensor) const {
    if (expression.anchor == LevelAnchor::kAbsolute) {
        // Absolute topics bypass hierarchy matching entirely.
        const std::string parent = common::pathParent(expression.sensor_name);
        const std::string name = common::pathLeaf(expression.sensor_name);
        if (require_sensor && !tree_.hasSensor(parent, name)) return {};
        return {expression.sensor_name};
    }
    std::vector<std::string> out;
    for (const auto& node : domain(expression, require_sensor)) {
        if (!SensorTree::hierarchicallyRelated(node, unit_node)) continue;
        out.push_back(common::pathJoin(node, expression.sensor_name));
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace wm::core
