#pragma once

// Job accounting, standing in for the SLURM-style resource manager DCDB
// queries for job-related data. Job operator plugins (e.g. persyst) resolve
// one unit per running job, using the job's node list to aggregate per-node
// or per-core sensors into job-level outputs.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/time_utils.h"

namespace wm::jobs {

struct JobRecord {
    std::string job_id;
    std::string user_id;
    /// Canonical node paths the job runs on ("/rack0/chassis1/server2").
    std::vector<std::string> nodes;
    common::TimestampNs start_time = 0;
    /// 0 while the job is running.
    common::TimestampNs end_time = 0;
    /// Free-form name (e.g. the application), for diagnostics.
    std::string name;

    bool runningAt(common::TimestampNs t) const {
        return start_time <= t && (end_time == 0 || t < end_time);
    }
};

class JobManager {
  public:
    /// Registers a job; rejects duplicate active job ids. Returns false on
    /// rejection or an empty node list.
    bool submit(const JobRecord& job);

    /// Marks a job as completed at `end_time`; false if unknown or ended.
    bool complete(const std::string& job_id, common::TimestampNs end_time);

    std::optional<JobRecord> find(const std::string& job_id) const;

    /// Jobs running at time `t`, ordered by job id.
    std::vector<JobRecord> runningAt(common::TimestampNs t) const;

    /// Jobs whose [start, end) interval intersects [t0, t1].
    std::vector<JobRecord> inInterval(common::TimestampNs t0, common::TimestampNs t1) const;

    /// All jobs a node participated in at time `t`.
    std::vector<JobRecord> jobsOnNode(const std::string& node_path,
                                      common::TimestampNs t) const;

    std::size_t jobCount() const;

  private:
    mutable common::Mutex mutex_{"JobManager", common::LockRank::kJobManager};
    std::vector<JobRecord> jobs_ WM_GUARDED_BY(mutex_);
};

}  // namespace wm::jobs
