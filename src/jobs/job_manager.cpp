#include "jobs/job_manager.h"

#include <algorithm>
#include <limits>

namespace wm::jobs {

bool JobManager::submit(const JobRecord& job) {
    if (job.job_id.empty() || job.nodes.empty()) return false;
    common::MutexLock lock(mutex_);
    for (const auto& existing : jobs_) {
        if (existing.job_id == job.job_id && existing.end_time == 0) return false;
    }
    jobs_.push_back(job);
    return true;
}

bool JobManager::complete(const std::string& job_id, common::TimestampNs end_time) {
    common::MutexLock lock(mutex_);
    for (auto& job : jobs_) {
        if (job.job_id == job_id && job.end_time == 0) {
            job.end_time = end_time;
            return true;
        }
    }
    return false;
}

std::optional<JobRecord> JobManager::find(const std::string& job_id) const {
    common::MutexLock lock(mutex_);
    // Prefer the running instance; fall back to the most recent.
    const JobRecord* found = nullptr;
    for (const auto& job : jobs_) {
        if (job.job_id != job_id) continue;
        found = &job;
        if (job.end_time == 0) break;
    }
    if (found == nullptr) return std::nullopt;
    return *found;
}

std::vector<JobRecord> JobManager::runningAt(common::TimestampNs t) const {
    common::MutexLock lock(mutex_);
    std::vector<JobRecord> out;
    for (const auto& job : jobs_) {
        if (job.runningAt(t)) out.push_back(job);
    }
    std::sort(out.begin(), out.end(),
              [](const JobRecord& a, const JobRecord& b) { return a.job_id < b.job_id; });
    return out;
}

std::vector<JobRecord> JobManager::inInterval(common::TimestampNs t0,
                                              common::TimestampNs t1) const {
    common::MutexLock lock(mutex_);
    std::vector<JobRecord> out;
    for (const auto& job : jobs_) {
        const common::TimestampNs end = job.end_time == 0
                                            ? std::numeric_limits<common::TimestampNs>::max()
                                            : job.end_time;
        if (job.start_time <= t1 && end > t0) out.push_back(job);
    }
    std::sort(out.begin(), out.end(),
              [](const JobRecord& a, const JobRecord& b) { return a.job_id < b.job_id; });
    return out;
}

std::vector<JobRecord> JobManager::jobsOnNode(const std::string& node_path,
                                              common::TimestampNs t) const {
    std::vector<JobRecord> out;
    for (const auto& job : runningAt(t)) {
        if (std::find(job.nodes.begin(), job.nodes.end(), node_path) != job.nodes.end()) {
            out.push_back(job);
        }
    }
    return out;
}

std::size_t JobManager::jobCount() const {
    common::MutexLock lock(mutex_);
    return jobs_.size();
}

}  // namespace wm::jobs
