#include "analytics/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wm::analytics {

namespace {

double squaredDistance(const Vector& a, const Vector& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

}  // namespace

KMeansResult kmeans(const std::vector<Vector>& points, const KMeansParams& params) {
    KMeansResult result;
    const std::size_t n = points.size();
    std::size_t k = std::min(params.k, n);
    if (n == 0 || k == 0) return result;
    common::Rng rng(params.seed);

    // k-means++ seeding: first centroid uniform, then proportional to the
    // squared distance to the nearest chosen centroid.
    result.centroids.push_back(points[rng.uniformInt(n)]);
    std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
    while (result.centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            dist2[i] = std::min(dist2[i], squaredDistance(points[i], result.centroids.back()));
            total += dist2[i];
        }
        if (total <= 0.0) break;  // all remaining points coincide with centroids
        double pick = rng.uniform() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            pick -= dist2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        result.centroids.push_back(points[chosen]);
    }
    k = result.centroids.size();

    result.labels.assign(n, 0);
    double prev_inertia = std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
        result.iterations = iter + 1;
        // Assignment step.
        result.inertia = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_k = 0;
            for (std::size_t c = 0; c < k; ++c) {
                const double d = squaredDistance(points[i], result.centroids[c]);
                if (d < best) {
                    best = d;
                    best_k = c;
                }
            }
            result.labels[i] = best_k;
            result.inertia += best;
        }
        // Update step.
        const std::size_t dim = points[0].size();
        std::vector<Vector> sums(k, Vector(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = result.labels[i];
            for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
            ++counts[c];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) continue;  // keep the old centroid for empty clusters
            for (std::size_t d = 0; d < dim; ++d) {
                result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
            }
        }
        // Convergence on relative inertia change.
        if (prev_inertia < std::numeric_limits<double>::infinity()) {
            const double change = std::abs(prev_inertia - result.inertia);
            if (change <= params.tolerance * std::max(prev_inertia, 1e-12)) {
                result.converged = true;
                break;
            }
        }
        prev_inertia = result.inertia;
    }
    return result;
}

}  // namespace wm::analytics
