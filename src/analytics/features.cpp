#include "analytics/features.h"

#include <algorithm>
#include <cmath>

#include "analytics/stats.h"
#include "common/time_utils.h"

namespace wm::analytics {

const char* featureName(Feature feature) {
    switch (feature) {
        case Feature::kMean: return "mean";
        case Feature::kStdDev: return "stddev";
        case Feature::kMin: return "min";
        case Feature::kMax: return "max";
        case Feature::kLast: return "last";
        case Feature::kDelta: return "delta";
        case Feature::kSlope: return "slope";
        case Feature::kMedian: return "median";
        case Feature::kCount_: break;
    }
    return "unknown";
}

std::vector<double> extractFeatures(const sensors::ReadingVector& window, bool monotonic) {
    std::vector<double> block(kFeaturesPerSensor, 0.0);
    if (window.empty()) return block;

    std::vector<double> values;
    values.reserve(window.size());
    if (monotonic && window.size() > 1) {
        for (std::size_t i = 1; i < window.size(); ++i) {
            values.push_back(window[i].value - window[i - 1].value);
        }
    } else {
        for (const auto& reading : window) values.push_back(reading.value);
    }
    if (values.empty()) values.push_back(0.0);

    block[static_cast<std::size_t>(Feature::kMean)] = mean(values).value_or(0.0);
    block[static_cast<std::size_t>(Feature::kStdDev)] = stddev(values).value_or(0.0);
    block[static_cast<std::size_t>(Feature::kMin)] = minimum(values).value_or(0.0);
    block[static_cast<std::size_t>(Feature::kMax)] = maximum(values).value_or(0.0);
    block[static_cast<std::size_t>(Feature::kLast)] = values.back();
    block[static_cast<std::size_t>(Feature::kDelta)] = values.back() - values.front();
    block[static_cast<std::size_t>(Feature::kMedian)] = median(values).value_or(0.0);

    // Least-squares slope in value units per second, over the window's
    // actual timestamps (robust to irregular sampling).
    if (window.size() >= 2) {
        const double t0 = static_cast<double>(window.front().timestamp);
        double st = 0.0;
        double sv = 0.0;
        double stt = 0.0;
        double stv = 0.0;
        const std::size_t n = values.size();
        for (std::size_t i = 0; i < n; ++i) {
            // When differencing, align value i with the i+1-th timestamp.
            const std::size_t ti = monotonic ? i + 1 : i;
            const double t = (static_cast<double>(window[ti].timestamp) - t0) /
                             static_cast<double>(common::kNsPerSec);
            st += t;
            sv += values[i];
            stt += t * t;
            stv += t * values[i];
        }
        const double denom = static_cast<double>(n) * stt - st * st;
        if (std::abs(denom) > 1e-12) {
            block[static_cast<std::size_t>(Feature::kSlope)] =
                (static_cast<double>(n) * stv - st * sv) / denom;
        }
    }
    return block;
}

std::vector<double> concatFeatures(const std::vector<std::vector<double>>& blocks) {
    std::vector<double> out;
    std::size_t total = 0;
    for (const auto& block : blocks) total += block.size();
    out.reserve(total);
    for (const auto& block : blocks) out.insert(out.end(), block.begin(), block.end());
    return out;
}

bool TrainingSet::add(std::vector<double> features, double response) {
    if (full()) return false;
    samples_.push_back(std::move(features));
    responses_.push_back(response);
    return true;
}

void TrainingSet::clear() {
    samples_.clear();
    responses_.clear();
}

}  // namespace wm::analytics
