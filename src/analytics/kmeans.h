#pragma once

// k-means with k-means++ seeding. Used to initialise the variational
// Bayesian GMM responsibilities and available stand-alone.

#include <cstddef>
#include <vector>

#include "analytics/linalg.h"
#include "common/rng.h"

namespace wm::analytics {

struct KMeansResult {
    std::vector<Vector> centroids;
    std::vector<std::size_t> labels;  // one per input point
    double inertia = 0.0;             // sum of squared distances to centroids
    std::size_t iterations = 0;
    bool converged = false;
};

struct KMeansParams {
    std::size_t k = 3;
    std::size_t max_iterations = 100;
    double tolerance = 1e-6;  // relative inertia change for convergence
    std::uint64_t seed = 42;
};

/// Runs k-means++ / Lloyd. Empty input or k == 0 yields an empty result.
/// If there are fewer points than k, k is reduced to the point count.
KMeansResult kmeans(const std::vector<Vector>& points, const KMeansParams& params = {});

}  // namespace wm::analytics
