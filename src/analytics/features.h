#pragma once

// Statistical feature extraction over sensor reading windows. This is the
// front end of the regressor plugin (Case Study 1): at each computation
// interval a fixed-length feature block is computed per input sensor, the
// per-sensor blocks are concatenated into one feature vector, and the vector
// is fed to the random forest.

#include <string>
#include <vector>

#include "sensors/reading.h"

namespace wm::analytics {

/// The features extracted per sensor window, in this order.
enum class Feature {
    kMean = 0,
    kStdDev,
    kMin,
    kMax,
    kLast,
    kDelta,       // last - first (captures trends and counter increments)
    kSlope,       // least-squares slope per second
    kMedian,
    kCount_,      // sentinel
};

constexpr std::size_t kFeaturesPerSensor = static_cast<std::size_t>(Feature::kCount_);

/// Human-readable feature names, index-aligned with the enum.
const char* featureName(Feature feature);

/// Computes the per-sensor feature block; an empty window yields zeros.
/// If `monotonic` is set, values are first differenced (counter semantics).
std::vector<double> extractFeatures(const sensors::ReadingVector& window,
                                    bool monotonic = false);

/// Concatenates per-sensor blocks into a single feature vector.
std::vector<double> concatFeatures(const std::vector<std::vector<double>>& blocks);

/// A growing training set of (feature vector, response) pairs with a cap,
/// as accumulated in memory by the regressor plugin until training size is
/// reached.
class TrainingSet {
  public:
    explicit TrainingSet(std::size_t capacity) : capacity_(capacity) {}

    /// Adds a sample; returns false (and drops it) when full.
    bool add(std::vector<double> features, double response);

    bool full() const { return samples_.size() >= capacity_; }
    std::size_t size() const { return samples_.size(); }
    std::size_t capacity() const { return capacity_; }
    void clear();

    const std::vector<std::vector<double>>& features() const { return samples_; }
    const std::vector<double>& responses() const { return responses_; }

  private:
    std::size_t capacity_;
    std::vector<std::vector<double>> samples_;
    std::vector<double> responses_;
};

}  // namespace wm::analytics
