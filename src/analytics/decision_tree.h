#pragma once

// CART regression tree: greedy binary splits minimising the weighted sum of
// child variances (equivalently, maximising variance reduction). The tree is
// the base learner of the random forest behind the regressor plugin; the
// paper's original used OpenCV's RTrees, which implements the same family.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::analytics {

struct TreeParams {
    std::size_t max_depth = 12;
    std::size_t min_samples_split = 4;
    std::size_t min_samples_leaf = 2;
    /// Number of candidate features per split; 0 = all (plain CART),
    /// otherwise a random subset (random-forest style decorrelation).
    std::size_t features_per_split = 0;
    /// Splits improving variance by less than this fraction are rejected.
    double min_impurity_decrease = 0.0;
};

class DecisionTree {
  public:
    /// Fits the tree on row-major samples; `rows` indexes into the dataset
    /// (callers pass bootstrap samples without copying the data). Pass all
    /// indices for a plain fit. `rng` drives feature subsampling.
    void fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& responses, const std::vector<std::size_t>& rows,
             const TreeParams& params, common::Rng& rng);

    /// Predicted response for one feature vector; 0.0 if the tree is empty.
    double predict(const std::vector<double>& features) const;

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t depth() const;
    bool trained() const { return !nodes_.empty(); }

    /// Checkpointing (docs/RESILIENCE.md): a deserialized tree predicts
    /// identically to the one serialized.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    struct Node {
        // Leaf when feature_index < 0.
        std::int32_t feature_index = -1;
        double threshold = 0.0;
        double value = 0.0;   // leaf prediction (mean of responses)
        std::int32_t left = -1;
        std::int32_t right = -1;
    };

    std::int32_t build(const std::vector<std::vector<double>>& features,
                       const std::vector<double>& responses, std::vector<std::size_t>& rows,
                       std::size_t begin, std::size_t end, std::size_t depth,
                       const TreeParams& params, common::Rng& rng);

    std::vector<Node> nodes_;
};

}  // namespace wm::analytics
