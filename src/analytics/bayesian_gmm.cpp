#include "analytics/bayesian_gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "analytics/kmeans.h"
#include "analytics/stats.h"
#include "persist/serializer.h"

namespace wm::analytics {

namespace {
constexpr double kLog2Pi = 1.8378770664093454836;
constexpr double kTinyResponsibility = 1e-10;
}  // namespace

double digamma(double x) {
    // Recurrence to push the argument above 6, then the asymptotic series.
    double result = 0.0;
    while (x < 6.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += std::log(x) - 0.5 * inv -
              inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 -
                      inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
    return result;
}

Vector BayesianGmm::standardizePoint(const Vector& point) const {
    Vector out(point.size());
    for (std::size_t d = 0; d < point.size(); ++d) {
        out[d] = (point[d] - feature_mean_[d]) / feature_scale_[d];
    }
    return out;
}

bool BayesianGmm::fit(const std::vector<Vector>& points, const BgmmParams& params) {
    components_.clear();
    internal_.clear();
    iterations_ = 0;
    converged_ = false;

    const std::size_t n = points.size();
    if (n < 2) return false;
    const std::size_t dim = points[0].size();
    if (dim == 0) return false;
    for (const auto& p : points) {
        if (p.size() != dim) return false;
    }

    // --- Standardisation ---------------------------------------------------
    feature_mean_.assign(dim, 0.0);
    feature_scale_.assign(dim, 1.0);
    if (params.standardize) {
        for (std::size_t d = 0; d < dim; ++d) {
            StreamingStats stats;
            for (const auto& p : points) stats.add(p[d]);
            feature_mean_[d] = stats.mean();
            feature_scale_[d] = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
        }
    }
    density_jacobian_ = 1.0;
    for (std::size_t d = 0; d < dim; ++d) density_jacobian_ /= feature_scale_[d];

    std::vector<Vector> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = standardizePoint(points[i]);

    const std::size_t K = std::max<std::size_t>(1, std::min(params.max_components, n));

    // --- Priors -------------------------------------------------------------
    const double alpha0 = params.weight_concentration_prior / static_cast<double>(K);
    const double beta0 = params.mean_precision_prior;
    const double nu0 = static_cast<double>(dim) + params.dof_offset;
    const Vector m0(dim, 0.0);  // standardized data is centred
    // E[Lambda] under the prior = nu0 * W0; choose W0 so that the prior
    // expected covariance is prior_covariance_scale * I.
    const double cov_scale = params.prior_covariance_scale > 0.0
                                 ? params.prior_covariance_scale
                                 : 0.15;
    const Matrix w0inv = Matrix::identity(dim) * (nu0 * cov_scale);

    // --- Initial responsibilities from k-means ------------------------------
    KMeansParams km;
    km.k = K;
    km.seed = params.seed;
    const KMeansResult init = kmeans(x, km);
    std::vector<Vector> resp(n, Vector(K, kTinyResponsibility));
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t label = init.labels.empty() ? 0 : init.labels[i];
        resp[i][std::min(label, K - 1)] = 1.0;
        // Renormalise after smoothing.
        const double total = std::accumulate(resp[i].begin(), resp[i].end(), 0.0);
        for (double& r : resp[i]) r /= total;
    }

    // --- Variational coordinate ascent --------------------------------------
    std::vector<double> nk(K), alpha(K), beta(K), nu(K);
    std::vector<Vector> mk(K, Vector(dim, 0.0));
    std::vector<Matrix> winv(K, Matrix(dim, dim));
    std::vector<std::optional<Cholesky>> winv_chol(K);

    double prev_bound = -std::numeric_limits<double>::infinity();
    for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
        iterations_ = iter + 1;

        // M-step: update the posterior parameters from responsibilities.
        for (std::size_t k = 0; k < K; ++k) {
            nk[k] = 0.0;
            Vector xbar(dim, 0.0);
            for (std::size_t i = 0; i < n; ++i) {
                nk[k] += resp[i][k];
                for (std::size_t d = 0; d < dim; ++d) xbar[d] += resp[i][k] * x[i][d];
            }
            const double nk_safe = nk[k] + 1e-10;
            for (double& v : xbar) v /= nk_safe;

            Matrix sk(dim, dim);
            for (std::size_t i = 0; i < n; ++i) {
                const double r = resp[i][k];
                if (r < kTinyResponsibility) continue;
                for (std::size_t a = 0; a < dim; ++a) {
                    const double da = x[i][a] - xbar[a];
                    for (std::size_t b = 0; b <= a; ++b) {
                        const double v = r * da * (x[i][b] - xbar[b]);
                        sk(a, b) += v;
                        if (a != b) sk(b, a) += v;
                    }
                }
            }
            sk = sk * (1.0 / nk_safe);

            alpha[k] = alpha0 + nk[k];
            beta[k] = beta0 + nk[k];
            nu[k] = nu0 + nk[k];
            for (std::size_t d = 0; d < dim; ++d) {
                mk[k][d] = (beta0 * m0[d] + nk[k] * xbar[d]) / beta[k];
            }
            const Vector dm = subtract(xbar, m0);
            winv[k] = w0inv + sk * nk[k] +
                      Matrix::outer(dm, beta0 * nk[k] / (beta0 + nk[k]));
            winv_chol[k] = Cholesky::decompose(winv[k]);
            if (!winv_chol[k]) {
                // Regularise a degenerate scatter and retry once.
                winv[k] += Matrix::identity(dim) * 1e-6;
                winv_chol[k] = Cholesky::decompose(winv[k]);
                if (!winv_chol[k]) return false;
            }
        }

        // E-step: recompute responsibilities.
        const double alpha_total = std::accumulate(alpha.begin(), alpha.end(), 0.0);
        std::vector<double> ln_pi(K), ln_lambda(K);
        for (std::size_t k = 0; k < K; ++k) {
            ln_pi[k] = digamma(alpha[k]) - digamma(alpha_total);
            double acc = static_cast<double>(dim) * std::log(2.0) - winv_chol[k]->logDet();
            for (std::size_t d = 0; d < dim; ++d) {
                acc += digamma(0.5 * (nu[k] - static_cast<double>(d)));
            }
            ln_lambda[k] = acc;
        }

        double bound = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            Vector ln_rho(K);
            double max_ln = -std::numeric_limits<double>::infinity();
            for (std::size_t k = 0; k < K; ++k) {
                // (x - m)^T W (x - m) computed via the Cholesky of W^{-1}.
                const double maha = winv_chol[k]->mahalanobis2(x[i], mk[k]);
                ln_rho[k] = ln_pi[k] + 0.5 * ln_lambda[k] -
                            0.5 * static_cast<double>(dim) * kLog2Pi -
                            0.5 * (static_cast<double>(dim) / beta[k] + nu[k] * maha);
                max_ln = std::max(max_ln, ln_rho[k]);
            }
            double norm = 0.0;
            for (std::size_t k = 0; k < K; ++k) norm += std::exp(ln_rho[k] - max_ln);
            const double ln_norm = max_ln + std::log(norm);
            bound += ln_norm;
            for (std::size_t k = 0; k < K; ++k) {
                resp[i][k] = std::max(std::exp(ln_rho[k] - ln_norm), kTinyResponsibility);
            }
        }
        bound /= static_cast<double>(n);
        if (std::abs(bound - prev_bound) < params.tolerance) {
            converged_ = true;
            break;
        }
        prev_bound = bound;
    }

    // --- Extract fitted components ------------------------------------------
    const double alpha_total = std::accumulate(alpha.begin(), alpha.end(), 0.0);
    struct Extracted {
        double weight;
        std::size_t k;
    };
    std::vector<Extracted> order;
    for (std::size_t k = 0; k < K; ++k) {
        order.push_back({alpha[k] / alpha_total, k});
    }
    std::sort(order.begin(), order.end(),
              [](const Extracted& a, const Extracted& b) { return a.weight > b.weight; });

    for (const auto& [weight, k] : order) {
        if (weight < params.weight_floor) continue;
        if (weight * static_cast<double>(n) < params.min_cluster_points) continue;
        // Expected covariance of the Gaussian-Wishart posterior:
        // E[Sigma] = W^{-1} / (nu - D - 1).
        const double dof = std::max(nu[k] - static_cast<double>(dim) - 1.0, 1e-6);
        Matrix expected_cov = winv[k] * (1.0 / dof);

        const auto chol = Cholesky::decompose(expected_cov);
        if (!chol) continue;

        InternalComponent internal{
            weight, mk[k], *chol,
            -0.5 * (static_cast<double>(dim) * kLog2Pi + chol->logDet())};
        internal_.push_back(std::move(internal));

        BgmmComponent comp;
        comp.weight = weight;
        comp.mean.resize(dim);
        for (std::size_t d = 0; d < dim; ++d) {
            comp.mean[d] = mk[k][d] * feature_scale_[d] + feature_mean_[d];
        }
        comp.covariance = Matrix(dim, dim);
        for (std::size_t a = 0; a < dim; ++a) {
            for (std::size_t b = 0; b < dim; ++b) {
                comp.covariance(a, b) =
                    expected_cov(a, b) * feature_scale_[a] * feature_scale_[b];
            }
        }
        components_.push_back(std::move(comp));
    }
    return !components_.empty();
}

double BayesianGmm::componentLogPdf(std::size_t k, const Vector& x_std) const {
    const InternalComponent& comp = internal_[k];
    return comp.log_norm - 0.5 * comp.cov_chol.mahalanobis2(x_std, comp.mean);
}

std::size_t BayesianGmm::predictLabel(const Vector& point) const {
    const Vector probs = predictProbabilities(point);
    return static_cast<std::size_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

Vector BayesianGmm::predictProbabilities(const Vector& point) const {
    Vector out(internal_.size(), 0.0);
    if (internal_.empty()) return out;
    const Vector x = standardizePoint(point);
    double max_ln = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < internal_.size(); ++k) {
        out[k] = std::log(internal_[k].weight) + componentLogPdf(k, x);
        max_ln = std::max(max_ln, out[k]);
    }
    double total = 0.0;
    for (double& v : out) {
        v = std::exp(v - max_ln);
        total += v;
    }
    for (double& v : out) v /= total;
    return out;
}

double BayesianGmm::maxComponentDensity(const Vector& point) const {
    // Mode-relative density: exp(-1/2 * Mahalanobis^2) against the closest
    // component, i.e. the component's PDF normalised to 1 at its mode. This
    // makes the paper's p < 0.001 outlier threshold scale-free (raw
    // densities over e.g. watts x degC x counter-rates shrink with the units
    // and the tightness of the clusters); 0.001 corresponds to lying more
    // than ~3.7 sigma from every fitted component.
    if (internal_.empty()) return 0.0;
    const Vector x = standardizePoint(point);
    double best_maha2 = std::numeric_limits<double>::infinity();
    for (const auto& comp : internal_) {
        best_maha2 = std::min(best_maha2, comp.cov_chol.mahalanobis2(x, comp.mean));
    }
    return std::exp(-0.5 * best_maha2);
}

bool BayesianGmm::isOutlier(const Vector& point, double threshold) const {
    return maxComponentDensity(point) < threshold;
}

double BayesianGmm::scoreLogLikelihood(const Vector& point) const {
    if (internal_.empty()) return -std::numeric_limits<double>::infinity();
    const Vector x = standardizePoint(point);
    double max_ln = -std::numeric_limits<double>::infinity();
    Vector ln(internal_.size());
    for (std::size_t k = 0; k < internal_.size(); ++k) {
        ln[k] = std::log(internal_[k].weight) + componentLogPdf(k, x);
        max_ln = std::max(max_ln, ln[k]);
    }
    double total = 0.0;
    for (double v : ln) total += std::exp(v - max_ln);
    return max_ln + std::log(total) + std::log(density_jacobian_);
}

namespace {

void encodeVector(persist::Encoder& encoder, const Vector& v) {
    encoder.putSize(v.size());
    for (double x : v) encoder.putF64(x);
}

bool decodeVector(persist::Decoder& decoder, Vector* v) {
    std::size_t n = 0;
    decoder.getSize(&n);
    Vector out(decoder.ok() ? n : 0, 0.0);
    for (std::size_t i = 0; i < out.size(); ++i) decoder.getF64(&out[i]);
    if (!decoder.ok()) return false;
    *v = std::move(out);
    return true;
}

void encodeMatrix(persist::Encoder& encoder, const Matrix& m) {
    encoder.putSize(m.rows());
    encoder.putSize(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) encoder.putF64(m(r, c));
    }
}

bool decodeMatrix(persist::Decoder& decoder, Matrix* m) {
    std::size_t rows = 0;
    std::size_t cols = 0;
    decoder.getSize(&rows);
    decoder.getSize(&cols);
    if (!decoder.ok()) return false;
    Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) decoder.getF64(&out(r, c));
    }
    if (!decoder.ok()) return false;
    *m = std::move(out);
    return true;
}

}  // namespace

void BayesianGmm::serialize(persist::Encoder& encoder) const {
    encoder.putSize(components_.size());
    for (const BgmmComponent& component : components_) {
        encoder.putF64(component.weight);
        encodeVector(encoder, component.mean);
        encodeMatrix(encoder, component.covariance);
    }
    encoder.putSize(internal_.size());
    for (const InternalComponent& component : internal_) {
        encoder.putF64(component.weight);
        encodeVector(encoder, component.mean);
        encodeMatrix(encoder, component.cov_chol.lower());
        encoder.putF64(component.log_norm);
    }
    encodeVector(encoder, feature_mean_);
    encodeVector(encoder, feature_scale_);
    encoder.putF64(density_jacobian_);
    encoder.putSize(iterations_);
    encoder.putBool(converged_);
}

bool BayesianGmm::deserialize(persist::Decoder& decoder) {
    std::size_t count = 0;
    decoder.getSize(&count);
    std::vector<BgmmComponent> components;
    for (std::size_t i = 0; i < count && decoder.ok(); ++i) {
        BgmmComponent component;
        decoder.getF64(&component.weight);
        if (!decodeVector(decoder, &component.mean)) break;
        if (!decodeMatrix(decoder, &component.covariance)) break;
        components.push_back(std::move(component));
    }
    std::size_t internal_count = 0;
    decoder.getSize(&internal_count);
    std::vector<InternalComponent> internal;
    for (std::size_t i = 0; i < internal_count && decoder.ok(); ++i) {
        double weight = 0.0;
        Vector mean;
        Matrix lower;
        double log_norm = 0.0;
        decoder.getF64(&weight);
        if (!decodeVector(decoder, &mean)) break;
        if (!decodeMatrix(decoder, &lower)) break;
        decoder.getF64(&log_norm);
        internal.push_back(InternalComponent{weight, std::move(mean),
                                             Cholesky::fromLower(std::move(lower)),
                                             log_norm});
    }
    Vector feature_mean;
    Vector feature_scale;
    if (!decodeVector(decoder, &feature_mean)) return false;
    if (!decodeVector(decoder, &feature_scale)) return false;
    double density_jacobian = 1.0;
    std::size_t iterations = 0;
    bool converged = false;
    decoder.getF64(&density_jacobian);
    decoder.getSize(&iterations);
    decoder.getBool(&converged);
    if (!decoder.ok()) return false;
    if (components.size() != count || internal.size() != internal_count) return false;
    components_ = std::move(components);
    internal_ = std::move(internal);
    feature_mean_ = std::move(feature_mean);
    feature_scale_ = std::move(feature_scale);
    density_jacobian_ = density_jacobian;
    iterations_ = iterations;
    converged_ = converged;
    return true;
}

}  // namespace wm::analytics
