#include "analytics/linalg.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace wm::analytics {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ > 0 ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_) throw std::invalid_argument("ragged initializer");
        for (double v : row) data_.push_back(v);
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

Matrix Matrix::outer(const Vector& v, double scale) {
    Matrix m(v.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        for (std::size_t j = 0; j < v.size(); ++j) m(i, j) = scale * v[i] * v[j];
    }
    return m;
}

Matrix Matrix::transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c) {
                out(r, c) += a * other(k, c);
            }
        }
    }
    return out;
}

Matrix Matrix::operator*(double scalar) const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
    return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Vector Matrix::multiply(const Vector& v) const {
    assert(cols_ == v.size());
    Vector out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

double Matrix::trace() const {
    double acc = 0.0;
    const std::size_t n = std::min(rows_, cols_);
    for (std::size_t i = 0; i < n; ++i) acc += (*this)(i, i);
    return acc;
}

double Matrix::maxAbsDiff(const Matrix& other) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
    }
    return worst;
}

std::optional<Cholesky> Cholesky::decompose(const Matrix& a) {
    if (a.rows() != a.cols()) return std::nullopt;
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0 || !std::isfinite(acc)) return std::nullopt;
                l(i, i) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
    const std::size_t n = dim();
    assert(b.size() == n);
    // Forward substitution: L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
        y[i] = acc / l_(i, i);
    }
    // Backward substitution: L^T x = y.
    Vector x(n);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double acc = y[i];
        for (std::size_t k = i + 1; k < n; ++k) acc -= l_(k, i) * x[k];
        x[i] = acc / l_(i, i);
    }
    return x;
}

double Cholesky::logDet() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
    return 2.0 * acc;
}

double Cholesky::mahalanobis2(const Vector& x, const Vector& mu) const {
    const std::size_t n = dim();
    assert(x.size() == n && mu.size() == n);
    // Solve L z = (x - mu); the squared distance is ||z||^2.
    Vector z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = x[i] - mu[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * z[k];
        z[i] = acc / l_(i, i);
    }
    double acc = 0.0;
    for (double v : z) acc += v * v;
    return acc;
}

Matrix Cholesky::inverse() const {
    const std::size_t n = dim();
    Matrix inv(n, n);
    Vector e(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        e[c] = 1.0;
        const Vector col = solve(e);
        for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
        e[c] = 0.0;
    }
    return inv;
}

double dot(const Vector& a, const Vector& b) {
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

Vector add(const Vector& a, const Vector& b) {
    assert(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
}

Vector subtract(const Vector& a, const Vector& b) {
    assert(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
    return out;
}

Vector scale(const Vector& a, double s) {
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
    return out;
}

double norm2(const Vector& a) {
    return std::sqrt(dot(a, a));
}

}  // namespace wm::analytics
