#include "analytics/linear_regression.h"

#include <cmath>

#include "analytics/stats.h"
#include "persist/serializer.h"

namespace wm::analytics {

bool LinearRegression::fit(const std::vector<std::vector<double>>& features,
                           const std::vector<double>& responses,
                           const LinearRegressionParams& params) {
    trained_ = false;
    const std::size_t n = features.size();
    if (n < 2 || responses.size() != n) return false;
    const std::size_t dim = features[0].size();
    if (dim == 0) return false;
    for (const auto& row : features) {
        if (row.size() != dim) return false;
    }

    // Standardisation (applied internally; weights are mapped back).
    Vector mean(dim, 0.0);
    Vector scale(dim, 1.0);
    if (params.standardize) {
        for (std::size_t d = 0; d < dim; ++d) {
            StreamingStats stats;
            for (const auto& row : features) stats.add(row[d]);
            mean[d] = stats.mean();
            scale[d] = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
        }
    }
    double y_mean = 0.0;
    for (double y : responses) y_mean += y;
    y_mean /= static_cast<double>(n);

    // Normal equations on centred data: (X^T X + l2 I) w = X^T y.
    Matrix xtx(dim, dim);
    Vector xty(dim, 0.0);
    Vector x(dim);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < dim; ++d) {
            x[d] = (features[i][d] - mean[d]) / scale[d];
        }
        const double y = responses[i] - y_mean;
        for (std::size_t a = 0; a < dim; ++a) {
            xty[a] += x[a] * y;
            for (std::size_t b = 0; b <= a; ++b) {
                xtx(a, b) += x[a] * x[b];
            }
        }
    }
    for (std::size_t a = 0; a < dim; ++a) {
        for (std::size_t b = a + 1; b < dim; ++b) xtx(a, b) = xtx(b, a);
        xtx(a, a) += std::max(params.l2, 1e-10) * static_cast<double>(n);
    }
    const auto chol = Cholesky::decompose(xtx);
    if (!chol) return false;
    const Vector w_std = chol->solve(xty);

    // Map the standardized weights back to original feature space.
    weights_.assign(dim, 0.0);
    intercept_ = y_mean;
    for (std::size_t d = 0; d < dim; ++d) {
        weights_[d] = w_std[d] / scale[d];
        intercept_ -= weights_[d] * mean[d];
    }
    trained_ = true;

    double sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double err = predict(features[i]) - responses[i];
        sse += err * err;
    }
    train_rmse_ = std::sqrt(sse / static_cast<double>(n));
    return true;
}

double LinearRegression::predict(const std::vector<double>& features) const {
    if (!trained_) return 0.0;
    double acc = intercept_;
    const std::size_t dim = std::min(features.size(), weights_.size());
    for (std::size_t d = 0; d < dim; ++d) acc += weights_[d] * features[d];
    return acc;
}

void LinearRegression::serialize(persist::Encoder& encoder) const {
    encoder.putBool(trained_);
    encoder.putSize(weights_.size());
    for (double w : weights_) encoder.putF64(w);
    encoder.putF64(intercept_);
    encoder.putF64(train_rmse_);
}

bool LinearRegression::deserialize(persist::Decoder& decoder) {
    bool trained = false;
    std::size_t dim = 0;
    decoder.getBool(&trained);
    decoder.getSize(&dim);
    Vector weights(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) decoder.getF64(&weights[d]);
    double intercept = 0.0;
    double train_rmse = 0.0;
    decoder.getF64(&intercept);
    decoder.getF64(&train_rmse);
    if (!decoder.ok()) return false;
    trained_ = trained;
    weights_ = std::move(weights);
    intercept_ = intercept;
    train_rmse_ = train_rmse;
    return true;
}

}  // namespace wm::analytics
