#pragma once

// Ridge-regularised linear least squares — the classical baseline for the
// power-prediction case study (the supervised-learning family of Ozer et
// al., which the paper's regressor builds on). Solved via the normal
// equations with a Cholesky factorisation; the ridge term keeps the system
// well-posed under collinear features (common with per-core counters).

#include <cstddef>
#include <vector>

#include "analytics/linalg.h"

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::analytics {

struct LinearRegressionParams {
    /// Ridge penalty on the (standardized) coefficients; 0 = plain OLS.
    double l2 = 1e-3;
    /// Standardise features before fitting (recommended: the penalty is
    /// scale-sensitive and counters span many orders of magnitude).
    bool standardize = true;
};

class LinearRegression {
  public:
    /// Fits y ~ w.x + b. Returns false on empty/inconsistent input or a
    /// numerically degenerate system.
    bool fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& responses,
             const LinearRegressionParams& params = {});

    double predict(const std::vector<double>& features) const;

    bool trained() const { return trained_; }
    /// Coefficients in original feature space (index-aligned with inputs).
    const Vector& coefficients() const { return weights_; }
    double intercept() const { return intercept_; }

    /// In-sample root mean squared error recorded at fit time.
    double trainRmse() const { return train_rmse_; }

    /// Checkpointing: coefficients round-trip exactly.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    bool trained_ = false;
    Vector weights_;
    double intercept_ = 0.0;
    double train_rmse_ = 0.0;
};

}  // namespace wm::analytics
