#include "analytics/stats.h"

#include <algorithm>
#include <cmath>

#include "persist/serializer.h"

namespace wm::analytics {

double sum(const std::vector<double>& values) {
    double total = 0.0;
    for (double v : values) total += v;
    return total;
}

std::optional<double> mean(const std::vector<double>& values) {
    if (values.empty()) return std::nullopt;
    return sum(values) / static_cast<double>(values.size());
}

std::optional<double> variance(const std::vector<double>& values) {
    if (values.empty()) return std::nullopt;
    if (values.size() < 2) return 0.0;
    const double m = *mean(values);
    double acc = 0.0;
    for (double v : values) acc += (v - m) * (v - m);
    return acc / static_cast<double>(values.size() - 1);
}

std::optional<double> stddev(const std::vector<double>& values) {
    const auto var = variance(values);
    if (!var) return std::nullopt;
    return std::sqrt(*var);
}

std::optional<double> minimum(const std::vector<double>& values) {
    if (values.empty()) return std::nullopt;
    return *std::min_element(values.begin(), values.end());
}

std::optional<double> maximum(const std::vector<double>& values) {
    if (values.empty()) return std::nullopt;
    return *std::max_element(values.begin(), values.end());
}

std::optional<double> median(const std::vector<double>& values) {
    return quantile(values, 0.5);
}

std::optional<double> quantile(const std::vector<double>& values, double q) {
    if (values.empty()) return std::nullopt;
    std::vector<double> sorted(values);
    std::sort(sorted.begin(), sorted.end());
    const auto result = quantilesSorted(sorted, {q});
    return result.empty() ? std::nullopt : std::optional<double>(result[0]);
}

std::vector<double> quantilesSorted(const std::vector<double>& sorted,
                                    const std::vector<double>& qs) {
    std::vector<double> out;
    if (sorted.empty()) return out;
    out.reserve(qs.size());
    for (double q : qs) {
        q = std::clamp(q, 0.0, 1.0);
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out.push_back(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
    }
    return out;
}

std::vector<double> deciles(std::vector<double> values) {
    if (values.empty()) return {};
    std::sort(values.begin(), values.end());
    std::vector<double> qs;
    qs.reserve(11);
    for (int i = 0; i <= 10; ++i) qs.push_back(static_cast<double>(i) / 10.0);
    return quantilesSorted(values, qs);
}

std::optional<double> pearson(const std::vector<double>& x, const std::vector<double>& y) {
    if (x.size() != y.size() || x.size() < 2) return std::nullopt;
    const double mx = *mean(x);
    const double my = *mean(y);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0) return std::nullopt;
    return sxy / std::sqrt(sxx * syy);
}

void StreamingStats::add(double value) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void StreamingStats::reset() {
    *this = StreamingStats{};
}

double StreamingStats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const {
    return std::sqrt(variance());
}

void StreamingStats::serialize(persist::Encoder& encoder) const {
    encoder.putSize(count_);
    encoder.putF64(mean_);
    encoder.putF64(m2_);
    encoder.putF64(min_);
    encoder.putF64(max_);
}

bool StreamingStats::deserialize(persist::Decoder& decoder) {
    StreamingStats restored;
    decoder.getSize(&restored.count_);
    decoder.getF64(&restored.mean_);
    decoder.getF64(&restored.m2_);
    decoder.getF64(&restored.min_);
    decoder.getF64(&restored.max_);
    if (!decoder.ok()) return false;
    *this = restored;
    return true;
}

void Ewma::serialize(persist::Encoder& encoder) const {
    encoder.putF64(alpha_);
    encoder.putF64(value_);
    encoder.putBool(initialized_);
}

bool Ewma::deserialize(persist::Decoder& decoder) {
    Ewma restored;
    decoder.getF64(&restored.alpha_);
    decoder.getF64(&restored.value_);
    decoder.getBool(&restored.initialized_);
    if (!decoder.ok()) return false;
    *this = restored;
    return true;
}

double Ewma::update(double value) {
    if (!initialized_) {
        value_ = value;
        initialized_ = true;
    } else {
        value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
    return value_;
}

}  // namespace wm::analytics
