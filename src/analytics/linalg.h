#pragma once

// Small dense linear algebra for the analytics substrate. The Bayesian GMM
// works on low-dimensional feature spaces (Case Study 3 uses D=3), so a
// straightforward row-major matrix with Cholesky-based factorisation is both
// sufficient and cache-friendly. No external BLAS dependency.

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <vector>

namespace wm::analytics {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);
    /// Diagonal matrix from a vector.
    static Matrix diagonal(const Vector& d);
    /// Outer product v * v^T scaled by `scale`.
    static Matrix outer(const Vector& v, double scale = 1.0);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    Matrix transpose() const;
    Matrix operator+(const Matrix& other) const;
    Matrix operator-(const Matrix& other) const;
    Matrix operator*(const Matrix& other) const;
    Matrix operator*(double scalar) const;
    Matrix& operator+=(const Matrix& other);

    Vector multiply(const Vector& v) const;
    double trace() const;

    /// Maximum absolute element-wise difference (for tests).
    double maxAbsDiff(const Matrix& other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Exposes the solve/determinant operations the VB-GMM needs without ever
/// forming an explicit inverse.
class Cholesky {
  public:
    /// Factorises `a` (must be square, symmetric, positive definite).
    /// Returns std::nullopt when the matrix is not positive definite.
    static std::optional<Cholesky> decompose(const Matrix& a);

    /// Rebuilds a factor from a previously computed lower-triangular matrix
    /// (model deserialization); `l` is taken as-is, not re-validated.
    static Cholesky fromLower(Matrix l) { return Cholesky(std::move(l)); }

    const Matrix& lower() const { return l_; }
    std::size_t dim() const { return l_.rows(); }

    /// Solves A x = b.
    Vector solve(const Vector& b) const;

    /// log(det(A)) = 2 * sum(log(L_ii)).
    double logDet() const;

    /// Squared Mahalanobis distance: (x-mu)^T A^{-1} (x-mu).
    double mahalanobis2(const Vector& x, const Vector& mu) const;

    /// Explicit inverse of A (small matrices only; used by tests).
    Matrix inverse() const;

  private:
    explicit Cholesky(Matrix l) : l_(std::move(l)) {}
    Matrix l_;
};

// Vector helpers.
double dot(const Vector& a, const Vector& b);
Vector add(const Vector& a, const Vector& b);
Vector subtract(const Vector& a, const Vector& b);
Vector scale(const Vector& a, double s);
double norm2(const Vector& a);

}  // namespace wm::analytics
