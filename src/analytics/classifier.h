#pragma once

// Classification counterpart of the regression forest: CART trees with Gini
// impurity and a bagged majority-vote ensemble. Substrate for the
// application-fingerprinting taxonomy class (paper Section II-A: predicting
// the behaviour/identity of user jobs from monitoring data).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::analytics {

struct ClassifierTreeParams {
    std::size_t max_depth = 12;
    std::size_t min_samples_split = 4;
    std::size_t min_samples_leaf = 1;
    /// Candidate features per split; 0 = all.
    std::size_t features_per_split = 0;
};

class ClassificationTree {
  public:
    /// Fits on rows indexing into the dataset; labels are class ids in
    /// [0, num_classes).
    void fit(const std::vector<std::vector<double>>& features,
             const std::vector<std::size_t>& labels, const std::vector<std::size_t>& rows,
             std::size_t num_classes, const ClassifierTreeParams& params,
             common::Rng& rng);

    /// Predicted class id; 0 if untrained.
    std::size_t predict(const std::vector<double>& features) const;

    bool trained() const { return !nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }

    /// Checkpointing: a deserialized tree predicts identically.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    struct Node {
        std::int32_t feature_index = -1;  // leaf when negative
        double threshold = 0.0;
        std::uint32_t label = 0;  // majority class at this node
        std::int32_t left = -1;
        std::int32_t right = -1;
    };

    std::int32_t build(const std::vector<std::vector<double>>& features,
                       const std::vector<std::size_t>& labels,
                       std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
                       std::size_t depth, std::size_t num_classes,
                       const ClassifierTreeParams& params, common::Rng& rng);

    std::vector<Node> nodes_;
};

struct ClassifierForestParams {
    std::size_t num_trees = 32;
    ClassifierTreeParams tree;
    double bootstrap_fraction = 1.0;
    std::uint64_t seed = 42;
};

class RandomForestClassifier {
  public:
    /// Fits the ensemble; features_per_split of 0 resolves to sqrt(dim).
    /// Returns false on empty/inconsistent input.
    bool fit(const std::vector<std::vector<double>>& features,
             const std::vector<std::size_t>& labels,
             const ClassifierForestParams& params = {});

    /// Majority-vote class; 0 when untrained.
    std::size_t predict(const std::vector<double>& features) const;

    /// Vote distribution over classes (sums to 1 when trained).
    std::vector<double> predictProbabilities(const std::vector<double>& features) const;

    /// Out-of-bag accuracy estimated during fit (NaN when unavailable).
    double oobAccuracy() const { return oob_accuracy_; }

    bool trained() const { return !trees_.empty(); }
    std::size_t classCount() const { return num_classes_; }

    /// Checkpointing: a deserialized ensemble votes identically without
    /// retraining (the property the crash-recovery tests pin).
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    std::vector<ClassificationTree> trees_;
    std::size_t num_classes_ = 0;
    double oob_accuracy_ = 0.0;
};

}  // namespace wm::analytics
