#pragma once

// Descriptive statistics shared by the operator plugins: batch summaries
// over reading windows (perfmetrics/aggregator), quantiles and deciles
// (the persyst plugin's job-level indicators), and a numerically stable
// streaming accumulator (Welford) for operator-level outputs such as the
// running error of a model.

#include <cstddef>
#include <optional>
#include <vector>

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::analytics {

/// Batch helpers. All functions return std::nullopt / empty for empty input.
double sum(const std::vector<double>& values);
std::optional<double> mean(const std::vector<double>& values);
/// Sample variance (n-1 denominator); 0 for fewer than 2 values.
std::optional<double> variance(const std::vector<double>& values);
std::optional<double> stddev(const std::vector<double>& values);
std::optional<double> minimum(const std::vector<double>& values);
std::optional<double> maximum(const std::vector<double>& values);
std::optional<double> median(const std::vector<double>& values);

/// Quantile with linear interpolation between order statistics, q in [0,1].
/// Sorts a copy of the input; use quantilesSorted for repeated queries.
std::optional<double> quantile(const std::vector<double>& values, double q);

/// Multiple quantiles over pre-sorted data (ascending).
std::vector<double> quantilesSorted(const std::vector<double>& sorted,
                                    const std::vector<double>& qs);

/// The 11 deciles (0.0, 0.1, ..., 1.0): minimum, 9 inner deciles, maximum.
/// This is the quantity the persyst plugin transports per job and metric.
std::vector<double> deciles(std::vector<double> values);

/// Pearson correlation coefficient; nullopt if either side is constant.
std::optional<double> pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Numerically stable streaming mean/variance (Welford's algorithm).
class StreamingStats {
  public:
    void add(double value);
    void reset();

    std::size_t count() const { return count_; }
    double mean() const { return count_ > 0 ? mean_ : 0.0; }
    /// Sample variance; 0 with fewer than 2 observations.
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    /// Checkpointing: the accumulator state round-trips exactly, so a
    /// restored operator's running error continues where it left off.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Exponential moving average with configurable smoothing factor.
class Ewma {
  public:
    explicit Ewma(double alpha = 0.1) : alpha_(alpha) {}
    double update(double value);
    double value() const { return value_; }
    bool initialized() const { return initialized_; }

    /// Checkpointing: smoothing factor and running value round-trip.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace wm::analytics
