#pragma once

// Variational Bayesian Gaussian mixture model (Bishop, PRML §10.2; the model
// family of Roberts et al. cited by the paper for Case Study 3). Unlike an
// EM-fitted GMM, the Dirichlet prior over mixture weights drives superfluous
// components towards zero weight, so the model determines the effective
// number of clusters from data — the property the paper relies on for
// unattended online operation.
//
// Full-covariance components with Gaussian-Wishart priors. Fitting maximises
// the evidence lower bound by coordinate ascent; initial responsibilities
// come from k-means++. Points whose density is below a threshold under every
// fitted component's (expected) Gaussian PDF are labelled outliers, matching
// the paper's p < 0.001 rule.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "analytics/linalg.h"

namespace wm::persist {
class Encoder;
class Decoder;
}

namespace wm::analytics {

struct BgmmParams {
    /// Upper bound on the number of components (the model prunes from here).
    std::size_t max_components = 10;
    std::size_t max_iterations = 200;
    double tolerance = 1e-4;  // convergence threshold on mean log-responsibility change
    /// Dirichlet concentration prior; small values favour few clusters.
    double weight_concentration_prior = 1.0;
    /// Prior degrees of freedom offset; nu0 = dim + dof_offset.
    double dof_offset = 0.0;
    /// Gaussian mean prior precision scaling.
    double mean_precision_prior = 0.05;
    /// Scale of the prior expected covariance in standardized feature space:
    /// E[Sigma] under the Wishart prior is `prior_covariance_scale * I`.
    /// Individual clusters occupy a fraction of the overall data spread, so
    /// values well below 1 keep the prior from inflating tight clusters
    /// (which would merge neighbours and mask outliers).
    double prior_covariance_scale = 0.15;
    /// Standardise features to zero mean / unit variance before fitting.
    bool standardize = true;
    /// Components with weight below this are dropped from the fitted model.
    /// Superfluous components keep a residual weight of roughly
    /// alpha0 / (N + K * alpha0) under the Dirichlet prior, so the floor
    /// must sit above that but below the smallest real cluster's share.
    double weight_floor = 0.02;
    /// Components whose effective membership (weight * N) falls below this
    /// are also dropped: a component latched onto one stray point is an
    /// outlier, not a cluster.
    double min_cluster_points = 2.0;
    std::uint64_t seed = 42;
};

struct BgmmComponent {
    double weight = 0.0;       // normalised posterior mixing weight
    Vector mean;               // posterior mean (original feature space)
    Matrix covariance;         // expected covariance (original feature space)
};

class BayesianGmm {
  public:
    /// Fits the model. Returns false for empty/degenerate input (fewer than
    /// 2 points, inconsistent dimensions).
    bool fit(const std::vector<Vector>& points, const BgmmParams& params = {});

    bool trained() const { return !components_.empty(); }

    /// Fitted (pruned) components, ordered by decreasing weight.
    const std::vector<BgmmComponent>& components() const { return components_; }
    std::size_t effectiveComponents() const { return components_.size(); }

    /// Index of the most likely component for a point.
    std::size_t predictLabel(const Vector& point) const;

    /// Per-component posterior probabilities (responsibilities) for a point.
    Vector predictProbabilities(const Vector& point) const;

    /// Mode-relative density of the closest component: exp(-Mahalanobis^2/2)
    /// in standardized feature space, i.e. 1 at a component's mode and
    /// ~0.001 at 3.7 sigma. Scale-free, so the paper's outlier rule can
    /// threshold it directly.
    double maxComponentDensity(const Vector& point) const;

    /// True when every fitted component assigns density < threshold.
    bool isOutlier(const Vector& point, double threshold = 1e-3) const;

    /// Mixture log-likelihood of a point.
    double scoreLogLikelihood(const Vector& point) const;

    std::size_t iterationsRun() const { return iterations_; }
    bool converged() const { return converged_; }

    /// Checkpointing: the full fitted state (components, standardization
    /// parameters, Cholesky factors) round-trips, so a restored model
    /// labels, scores and outlier-tests identically without refitting a
    /// two-week window (docs/RESILIENCE.md).
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    /// Gaussian log-pdf under component k (in standardized space).
    double componentLogPdf(std::size_t k, const Vector& x_std) const;
    Vector standardizePoint(const Vector& point) const;

    std::vector<BgmmComponent> components_;  // original-space parameters
    // Standardized-space parameters used for density evaluation.
    struct InternalComponent {
        double weight;
        Vector mean;
        Cholesky cov_chol;
        double log_norm;  // -0.5 * (D log 2pi + log|Sigma|)
    };
    std::vector<InternalComponent> internal_;
    Vector feature_mean_;
    Vector feature_scale_;
    /// Density Jacobian factor between standardized and original space.
    double density_jacobian_ = 1.0;
    std::size_t iterations_ = 0;
    bool converged_ = false;
};

/// Digamma function (psi), needed by the variational updates. Accurate to
/// ~1e-12 for positive arguments via recurrence + asymptotic expansion.
double digamma(double x);

}  // namespace wm::analytics
