#include "analytics/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "persist/serializer.h"

namespace wm::analytics {

namespace {

struct SplitCandidate {
    bool valid = false;
    std::size_t feature = 0;
    double threshold = 0.0;
    double score = std::numeric_limits<double>::infinity();  // weighted SSE
};

/// Finds the best threshold on one feature for rows [begin, end).
/// Uses the sorted-prefix trick: O(n log n) per feature.
SplitCandidate bestSplitOnFeature(const std::vector<std::vector<double>>& features,
                                  const std::vector<double>& responses,
                                  const std::vector<std::size_t>& rows, std::size_t begin,
                                  std::size_t end, std::size_t feature,
                                  std::size_t min_samples_leaf) {
    SplitCandidate best;
    best.feature = feature;
    const std::size_t n = end - begin;
    // Sort row indices by the feature value.
    std::vector<std::size_t> order(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                   rows.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return features[a][feature] < features[b][feature];
    });
    // Prefix sums of responses and squared responses.
    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sum = 0.0;
    double total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double y = responses[order[i]];
        total_sum += y;
        total_sq += y * y;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double y = responses[order[i]];
        left_sum += y;
        left_sq += y * y;
        const double x_here = features[order[i]][feature];
        const double x_next = features[order[i + 1]][feature];
        if (x_here == x_next) continue;  // cannot split between equal values
        const std::size_t left_n = i + 1;
        const std::size_t right_n = n - left_n;
        if (left_n < min_samples_leaf || right_n < min_samples_leaf) continue;
        // SSE = sum(y^2) - n*mean^2 per side.
        const double right_sum = total_sum - left_sum;
        const double right_sq = total_sq - left_sq;
        const double sse_left = left_sq - left_sum * left_sum / static_cast<double>(left_n);
        const double sse_right =
            right_sq - right_sum * right_sum / static_cast<double>(right_n);
        const double score = sse_left + sse_right;
        if (score < best.score) {
            best.valid = true;
            best.score = score;
            best.threshold = 0.5 * (x_here + x_next);
        }
    }
    return best;
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<double>>& features,
                       const std::vector<double>& responses,
                       const std::vector<std::size_t>& rows, const TreeParams& params,
                       common::Rng& rng) {
    nodes_.clear();
    if (rows.empty() || features.empty()) return;
    std::vector<std::size_t> work(rows);
    build(features, responses, work, 0, work.size(), 0, params, rng);
}

std::int32_t DecisionTree::build(const std::vector<std::vector<double>>& features,
                                 const std::vector<double>& responses,
                                 std::vector<std::size_t>& rows, std::size_t begin,
                                 std::size_t end, std::size_t depth,
                                 const TreeParams& params, common::Rng& rng) {
    const std::size_t n = end - begin;
    const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    // Leaf prediction: mean response over the node's rows.
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
        const double y = responses[rows[i]];
        sum += y;
        sq += y * y;
    }
    nodes_[static_cast<std::size_t>(index)].value = sum / static_cast<double>(n);
    const double node_sse = sq - sum * sum / static_cast<double>(n);

    if (depth >= params.max_depth || n < params.min_samples_split || node_sse <= 1e-12) {
        return index;
    }

    // Candidate features: all, or a uniform random subset.
    const std::size_t num_features = features[rows[begin]].size();
    std::vector<std::size_t> candidates;
    if (params.features_per_split == 0 || params.features_per_split >= num_features) {
        candidates.resize(num_features);
        std::iota(candidates.begin(), candidates.end(), std::size_t{0});
    } else {
        candidates = rng.sampleWithoutReplacement(num_features, params.features_per_split);
    }

    SplitCandidate best;
    for (std::size_t feature : candidates) {
        const SplitCandidate cand = bestSplitOnFeature(features, responses, rows, begin, end,
                                                       feature, params.min_samples_leaf);
        if (cand.valid && cand.score < best.score) best = cand;
    }
    if (!best.valid) return index;
    const double improvement = node_sse - best.score;
    if (improvement < params.min_impurity_decrease * node_sse) return index;

    // Partition rows in place around the threshold.
    auto middle = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(begin),
        rows.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::size_t r) { return features[r][best.feature] <= best.threshold; });
    const std::size_t mid = static_cast<std::size_t>(middle - rows.begin());
    if (mid == begin || mid == end) return index;  // degenerate partition

    nodes_[static_cast<std::size_t>(index)].feature_index =
        static_cast<std::int32_t>(best.feature);
    nodes_[static_cast<std::size_t>(index)].threshold = best.threshold;
    const std::int32_t left =
        build(features, responses, rows, begin, mid, depth + 1, params, rng);
    nodes_[static_cast<std::size_t>(index)].left = left;
    const std::int32_t right =
        build(features, responses, rows, mid, end, depth + 1, params, rng);
    nodes_[static_cast<std::size_t>(index)].right = right;
    return index;
}

double DecisionTree::predict(const std::vector<double>& features) const {
    if (nodes_.empty()) return 0.0;
    std::size_t index = 0;
    for (;;) {
        const Node& node = nodes_[index];
        if (node.feature_index < 0) return node.value;
        const std::size_t f = static_cast<std::size_t>(node.feature_index);
        const double x = f < features.size() ? features[f] : 0.0;
        index = static_cast<std::size_t>(x <= node.threshold ? node.left : node.right);
    }
}

std::size_t DecisionTree::depth() const {
    if (nodes_.empty()) return 0;
    // Iterative depth computation over the node array.
    std::vector<std::size_t> depth_of(nodes_.size(), 0);
    std::size_t worst = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];
        if (node.left >= 0) depth_of[static_cast<std::size_t>(node.left)] = depth_of[i] + 1;
        if (node.right >= 0) depth_of[static_cast<std::size_t>(node.right)] = depth_of[i] + 1;
        worst = std::max(worst, depth_of[i]);
    }
    return worst;
}

void DecisionTree::serialize(persist::Encoder& encoder) const {
    encoder.putSize(nodes_.size());
    for (const Node& node : nodes_) {
        encoder.putI64(node.feature_index);
        encoder.putF64(node.threshold);
        encoder.putF64(node.value);
        encoder.putI64(node.left);
        encoder.putI64(node.right);
    }
}

bool DecisionTree::deserialize(persist::Decoder& decoder) {
    std::size_t count = 0;
    decoder.getSize(&count);
    std::vector<Node> nodes;
    for (std::size_t i = 0; i < count && decoder.ok(); ++i) {
        Node node;
        std::int64_t feature_index = 0;
        std::int64_t left = 0;
        std::int64_t right = 0;
        decoder.getI64(&feature_index);
        decoder.getF64(&node.threshold);
        decoder.getF64(&node.value);
        decoder.getI64(&left);
        decoder.getI64(&right);
        node.feature_index = static_cast<std::int32_t>(feature_index);
        node.left = static_cast<std::int32_t>(left);
        node.right = static_cast<std::int32_t>(right);
        nodes.push_back(node);
    }
    if (!decoder.ok()) return false;
    nodes_ = std::move(nodes);
    return true;
}

}  // namespace wm::analytics
