#include "analytics/classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "persist/serializer.h"

namespace wm::analytics {

namespace {

/// Gini impurity of a class histogram with `total` samples.
double gini(const std::vector<double>& histogram, double total) {
    if (total <= 0.0) return 0.0;
    double acc = 1.0;
    for (double count : histogram) {
        const double p = count / total;
        acc -= p * p;
    }
    return acc;
}

struct SplitCandidate {
    bool valid = false;
    std::size_t feature = 0;
    double threshold = 0.0;
    double score = std::numeric_limits<double>::infinity();  // weighted Gini
};

SplitCandidate bestSplitOnFeature(const std::vector<std::vector<double>>& features,
                                  const std::vector<std::size_t>& labels,
                                  const std::vector<std::size_t>& rows, std::size_t begin,
                                  std::size_t end, std::size_t feature,
                                  std::size_t num_classes,
                                  std::size_t min_samples_leaf) {
    SplitCandidate best;
    best.feature = feature;
    const std::size_t n = end - begin;
    std::vector<std::size_t> order(rows.begin() + static_cast<std::ptrdiff_t>(begin),
                                   rows.begin() + static_cast<std::ptrdiff_t>(end));
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return features[a][feature] < features[b][feature];
    });
    std::vector<double> left(num_classes, 0.0);
    std::vector<double> right(num_classes, 0.0);
    for (std::size_t i = 0; i < n; ++i) right[labels[order[i]]] += 1.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const std::size_t label = labels[order[i]];
        left[label] += 1.0;
        right[label] -= 1.0;
        const double x_here = features[order[i]][feature];
        const double x_next = features[order[i + 1]][feature];
        if (x_here == x_next) continue;
        const std::size_t left_n = i + 1;
        const std::size_t right_n = n - left_n;
        if (left_n < min_samples_leaf || right_n < min_samples_leaf) continue;
        const double score = gini(left, static_cast<double>(left_n)) *
                                 static_cast<double>(left_n) +
                             gini(right, static_cast<double>(right_n)) *
                                 static_cast<double>(right_n);
        if (score < best.score) {
            best.valid = true;
            best.score = score;
            best.threshold = 0.5 * (x_here + x_next);
        }
    }
    return best;
}

}  // namespace

void ClassificationTree::fit(const std::vector<std::vector<double>>& features,
                             const std::vector<std::size_t>& labels,
                             const std::vector<std::size_t>& rows,
                             std::size_t num_classes, const ClassifierTreeParams& params,
                             common::Rng& rng) {
    nodes_.clear();
    if (rows.empty() || features.empty() || num_classes == 0) return;
    std::vector<std::size_t> work(rows);
    build(features, labels, work, 0, work.size(), 0, num_classes, params, rng);
}

std::int32_t ClassificationTree::build(const std::vector<std::vector<double>>& features,
                                       const std::vector<std::size_t>& labels,
                                       std::vector<std::size_t>& rows, std::size_t begin,
                                       std::size_t end, std::size_t depth,
                                       std::size_t num_classes,
                                       const ClassifierTreeParams& params,
                                       common::Rng& rng) {
    const std::size_t n = end - begin;
    const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();

    std::vector<double> histogram(num_classes, 0.0);
    for (std::size_t i = begin; i < end; ++i) histogram[labels[rows[i]]] += 1.0;
    nodes_[static_cast<std::size_t>(index)].label = static_cast<std::uint32_t>(
        std::max_element(histogram.begin(), histogram.end()) - histogram.begin());
    const double node_gini = gini(histogram, static_cast<double>(n));
    if (depth >= params.max_depth || n < params.min_samples_split || node_gini <= 0.0) {
        return index;
    }

    const std::size_t num_features = features[rows[begin]].size();
    std::vector<std::size_t> candidates;
    if (params.features_per_split == 0 || params.features_per_split >= num_features) {
        candidates.resize(num_features);
        std::iota(candidates.begin(), candidates.end(), std::size_t{0});
    } else {
        candidates = rng.sampleWithoutReplacement(num_features, params.features_per_split);
    }
    SplitCandidate best;
    for (std::size_t feature : candidates) {
        const SplitCandidate cand =
            bestSplitOnFeature(features, labels, rows, begin, end, feature, num_classes,
                               params.min_samples_leaf);
        if (cand.valid && cand.score < best.score) best = cand;
    }
    if (!best.valid) return index;

    auto middle = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(begin),
        rows.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::size_t r) { return features[r][best.feature] <= best.threshold; });
    const std::size_t mid = static_cast<std::size_t>(middle - rows.begin());
    if (mid == begin || mid == end) return index;

    nodes_[static_cast<std::size_t>(index)].feature_index =
        static_cast<std::int32_t>(best.feature);
    nodes_[static_cast<std::size_t>(index)].threshold = best.threshold;
    const std::int32_t left =
        build(features, labels, rows, begin, mid, depth + 1, num_classes, params, rng);
    nodes_[static_cast<std::size_t>(index)].left = left;
    const std::int32_t right =
        build(features, labels, rows, mid, end, depth + 1, num_classes, params, rng);
    nodes_[static_cast<std::size_t>(index)].right = right;
    return index;
}

std::size_t ClassificationTree::predict(const std::vector<double>& features) const {
    if (nodes_.empty()) return 0;
    std::size_t index = 0;
    for (;;) {
        const Node& node = nodes_[index];
        if (node.feature_index < 0) return node.label;
        const auto f = static_cast<std::size_t>(node.feature_index);
        const double x = f < features.size() ? features[f] : 0.0;
        index = static_cast<std::size_t>(x <= node.threshold ? node.left : node.right);
    }
}

bool RandomForestClassifier::fit(const std::vector<std::vector<double>>& features,
                                 const std::vector<std::size_t>& labels,
                                 const ClassifierForestParams& params) {
    trees_.clear();
    num_classes_ = 0;
    oob_accuracy_ = std::numeric_limits<double>::quiet_NaN();
    const std::size_t n = features.size();
    if (n == 0 || labels.size() != n || params.num_trees == 0) return false;
    const std::size_t dim = features[0].size();
    for (const auto& row : features) {
        if (row.size() != dim) return false;
    }
    for (std::size_t label : labels) num_classes_ = std::max(num_classes_, label + 1);

    ClassifierTreeParams tree_params = params.tree;
    if (tree_params.features_per_split == 0) {
        tree_params.features_per_split =
            static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(dim))));
    }
    const std::size_t samples_per_tree = std::max<std::size_t>(
        1, static_cast<std::size_t>(params.bootstrap_fraction * static_cast<double>(n)));

    common::Rng rng(params.seed);
    trees_.resize(params.num_trees);
    std::vector<std::vector<double>> oob_votes(n, std::vector<double>(num_classes_, 0.0));
    std::vector<char> in_bag(n);
    for (auto& tree : trees_) {
        std::fill(in_bag.begin(), in_bag.end(), 0);
        std::vector<std::size_t> bag(samples_per_tree);
        for (auto& row : bag) {
            row = static_cast<std::size_t>(rng.uniformInt(n));
            in_bag[row] = 1;
        }
        tree.fit(features, labels, bag, num_classes_, tree_params, rng);
        for (std::size_t i = 0; i < n; ++i) {
            if (!in_bag[i]) oob_votes[i][tree.predict(features[i])] += 1.0;
        }
    }
    std::size_t correct = 0;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double total = 0.0;
        for (double v : oob_votes[i]) total += v;
        if (total == 0.0) continue;
        const std::size_t vote = static_cast<std::size_t>(
            std::max_element(oob_votes[i].begin(), oob_votes[i].end()) -
            oob_votes[i].begin());
        if (vote == labels[i]) ++correct;
        ++covered;
    }
    if (covered > 0) {
        oob_accuracy_ = static_cast<double>(correct) / static_cast<double>(covered);
    }
    return true;
}

std::size_t RandomForestClassifier::predict(const std::vector<double>& features) const {
    const auto probabilities = predictProbabilities(features);
    if (probabilities.empty()) return 0;
    return static_cast<std::size_t>(
        std::max_element(probabilities.begin(), probabilities.end()) -
        probabilities.begin());
}

std::vector<double> RandomForestClassifier::predictProbabilities(
    const std::vector<double>& features) const {
    std::vector<double> votes(num_classes_, 0.0);
    if (trees_.empty() || num_classes_ == 0) return votes;
    for (const auto& tree : trees_) votes[tree.predict(features)] += 1.0;
    for (double& v : votes) v /= static_cast<double>(trees_.size());
    return votes;
}

void ClassificationTree::serialize(persist::Encoder& encoder) const {
    encoder.putSize(nodes_.size());
    for (const Node& node : nodes_) {
        encoder.putI64(node.feature_index);
        encoder.putF64(node.threshold);
        encoder.putU32(node.label);
        encoder.putI64(node.left);
        encoder.putI64(node.right);
    }
}

bool ClassificationTree::deserialize(persist::Decoder& decoder) {
    std::size_t count = 0;
    decoder.getSize(&count);
    std::vector<Node> nodes;
    for (std::size_t i = 0; i < count && decoder.ok(); ++i) {
        Node node;
        std::int64_t feature_index = 0;
        std::int64_t left = 0;
        std::int64_t right = 0;
        decoder.getI64(&feature_index);
        decoder.getF64(&node.threshold);
        decoder.getU32(&node.label);
        decoder.getI64(&left);
        decoder.getI64(&right);
        node.feature_index = static_cast<std::int32_t>(feature_index);
        node.left = static_cast<std::int32_t>(left);
        node.right = static_cast<std::int32_t>(right);
        nodes.push_back(node);
    }
    if (!decoder.ok()) return false;
    nodes_ = std::move(nodes);
    return true;
}

void RandomForestClassifier::serialize(persist::Encoder& encoder) const {
    encoder.putSize(num_classes_);
    encoder.putF64(oob_accuracy_);
    encoder.putSize(trees_.size());
    for (const ClassificationTree& tree : trees_) tree.serialize(encoder);
}

bool RandomForestClassifier::deserialize(persist::Decoder& decoder) {
    std::size_t num_classes = 0;
    double oob_accuracy = 0.0;
    std::size_t count = 0;
    decoder.getSize(&num_classes);
    decoder.getF64(&oob_accuracy);
    decoder.getSize(&count);
    std::vector<ClassificationTree> trees(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!trees[i].deserialize(decoder)) return false;
    }
    if (!decoder.ok()) return false;
    num_classes_ = num_classes;
    oob_accuracy_ = oob_accuracy;
    trees_ = std::move(trees);
    return true;
}

}  // namespace wm::analytics
