#pragma once

// Random forest regressor: bagged CART trees with per-split feature
// subsampling. The model behind the regressor operator plugin (Case Study 1,
// power prediction). Deterministic given the seed.

#include <cstddef>
#include <vector>

#include "analytics/decision_tree.h"
#include "common/rng.h"

namespace wm::analytics {

struct ForestParams {
    std::size_t num_trees = 32;
    TreeParams tree;
    /// Fraction of the training set drawn (with replacement) per tree.
    double bootstrap_fraction = 1.0;
    std::uint64_t seed = 42;

    ForestParams() {
        // Forest defaults differ from a single CART: decorrelate via
        // sqrt-style feature subsampling (resolved at fit time when 0).
        tree.features_per_split = 0;
    }
};

class RandomForest {
  public:
    /// Fits on row-major data. If params.tree.features_per_split is 0 it is
    /// resolved to ceil(sqrt(num_features)). Returns false on empty or
    /// inconsistent input.
    bool fit(const std::vector<std::vector<double>>& features,
             const std::vector<double>& responses, const ForestParams& params = {});

    /// Mean prediction over all trees; 0.0 when untrained.
    double predict(const std::vector<double>& features) const;

    /// Per-sample predictions.
    std::vector<double> predictBatch(const std::vector<std::vector<double>>& features) const;

    /// Out-of-bag RMSE estimated during fit (NaN when unavailable).
    double oobRmse() const { return oob_rmse_; }

    bool trained() const { return !trees_.empty(); }
    std::size_t treeCount() const { return trees_.size(); }

    /// Checkpointing: a deserialized forest predicts identically without
    /// retraining.
    void serialize(persist::Encoder& encoder) const;
    bool deserialize(persist::Decoder& decoder);

  private:
    std::vector<DecisionTree> trees_;
    double oob_rmse_ = 0.0;
};

}  // namespace wm::analytics
