#include "analytics/random_forest.h"

#include <cmath>
#include <limits>

#include "persist/serializer.h"

namespace wm::analytics {

bool RandomForest::fit(const std::vector<std::vector<double>>& features,
                       const std::vector<double>& responses, const ForestParams& params) {
    trees_.clear();
    oob_rmse_ = std::numeric_limits<double>::quiet_NaN();
    const std::size_t n = features.size();
    if (n == 0 || responses.size() != n || params.num_trees == 0) return false;
    const std::size_t num_features = features[0].size();
    for (const auto& row : features) {
        if (row.size() != num_features) return false;
    }

    TreeParams tree_params = params.tree;
    if (tree_params.features_per_split == 0) {
        tree_params.features_per_split = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(num_features))));
    }
    const std::size_t samples_per_tree = std::max<std::size_t>(
        1, static_cast<std::size_t>(params.bootstrap_fraction * static_cast<double>(n)));

    common::Rng rng(params.seed);
    trees_.resize(params.num_trees);

    // Out-of-bag bookkeeping: accumulate predictions from trees that did not
    // see each sample.
    std::vector<double> oob_sum(n, 0.0);
    std::vector<std::size_t> oob_count(n, 0);
    std::vector<char> in_bag(n);

    for (auto& tree : trees_) {
        std::fill(in_bag.begin(), in_bag.end(), 0);
        std::vector<std::size_t> bag(samples_per_tree);
        for (auto& row : bag) {
            row = static_cast<std::size_t>(rng.uniformInt(n));
            in_bag[row] = 1;
        }
        tree.fit(features, responses, bag, tree_params, rng);
        for (std::size_t i = 0; i < n; ++i) {
            if (in_bag[i]) continue;
            oob_sum[i] += tree.predict(features[i]);
            ++oob_count[i];
        }
    }

    double sse = 0.0;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (oob_count[i] == 0) continue;
        const double err = oob_sum[i] / static_cast<double>(oob_count[i]) - responses[i];
        sse += err * err;
        ++covered;
    }
    if (covered > 0) oob_rmse_ = std::sqrt(sse / static_cast<double>(covered));
    return true;
}

double RandomForest::predict(const std::vector<double>& features) const {
    if (trees_.empty()) return 0.0;
    double acc = 0.0;
    for (const auto& tree : trees_) acc += tree.predict(features);
    return acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predictBatch(
    const std::vector<std::vector<double>>& features) const {
    std::vector<double> out;
    out.reserve(features.size());
    for (const auto& row : features) out.push_back(predict(row));
    return out;
}

void RandomForest::serialize(persist::Encoder& encoder) const {
    encoder.putF64(oob_rmse_);
    encoder.putSize(trees_.size());
    for (const DecisionTree& tree : trees_) tree.serialize(encoder);
}

bool RandomForest::deserialize(persist::Decoder& decoder) {
    double oob_rmse = 0.0;
    std::size_t count = 0;
    decoder.getF64(&oob_rmse);
    decoder.getSize(&count);
    std::vector<DecisionTree> trees(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!trees[i].deserialize(decoder)) return false;
    }
    if (!decoder.ok()) return false;
    oob_rmse_ = oob_rmse;
    trees_ = std::move(trees);
    return true;
}

}  // namespace wm::analytics
