// wm_query — command-line client for a running wintermuted (the dcdbquery
// equivalent): queries the daemon's REST API and prints the results.
//
// Usage:
//   wm_query [--host 127.0.0.1] [--port 8080] COMMAND [ARGS]
//
// Commands:
//   sensors                          list sensor topics
//   latest  TOPIC                    newest reading of a sensor
//   series  TOPIC [WINDOW]           recent readings (default window 10s)
//   status                           entity statistics
//   operators                        Wintermute operator list
//   units   OPERATOR                 units of an operator
//   compute OPERATOR UNIT            trigger an on-demand computation
//   load    PLUGIN CONFIG-FILE       load a plugin configuration dynamically

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "rest/http_server.h"

using wm::rest::httpRequest;
using wm::rest::HttpResult;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--host H] [--port N] "
                 "sensors|latest|series|status|operators|units|compute|load [args]\n",
                 argv0);
    return 2;
}

/// URL-encodes a path value for use inside a query string.
std::string urlEncode(const std::string& text) {
    std::ostringstream out;
    for (unsigned char c : text) {
        if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
            out << c;
        } else {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "%%%02X", c);
            out << buf;
        }
    }
    return out.str();
}

int show(const HttpResult& result) {
    if (!result.ok) {
        std::fprintf(stderr, "error: %s\n", result.error.c_str());
        return 1;
    }
    std::printf("%s\n", result.body.c_str());
    return result.status == 200 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string host = "127.0.0.1";
    std::uint16_t port = 8080;
    int arg = 1;
    while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
        if (std::strcmp(argv[arg], "--host") == 0 && arg + 1 < argc) {
            host = argv[++arg];
        } else if (std::strcmp(argv[arg], "--port") == 0 && arg + 1 < argc) {
            port = static_cast<std::uint16_t>(std::atoi(argv[++arg]));
        } else {
            return usage(argv[0]);
        }
        ++arg;
    }
    if (arg >= argc) return usage(argv[0]);
    const std::string command = argv[arg++];

    if (command == "sensors") {
        return show(httpRequest(host, port, "GET", "/sensors"));
    }
    if (command == "status") {
        return show(httpRequest(host, port, "GET", "/status"));
    }
    if (command == "operators") {
        return show(httpRequest(host, port, "GET", "/wintermute/operators"));
    }
    if (command == "latest" && arg < argc) {
        return show(httpRequest(host, port, "GET",
                                "/sensors/latest?topic=" + urlEncode(argv[arg])));
    }
    if (command == "series" && arg < argc) {
        const std::string window = arg + 1 < argc ? argv[arg + 1] : "10s";
        return show(httpRequest(host, port, "GET",
                                "/sensors/series?topic=" + urlEncode(argv[arg]) +
                                    "&window=" + urlEncode(window)));
    }
    if (command == "units" && arg < argc) {
        return show(httpRequest(host, port, "GET",
                                std::string("/wintermute/units/") + argv[arg]));
    }
    if (command == "compute" && arg + 1 < argc) {
        return show(httpRequest(host, port, "PUT",
                                std::string("/wintermute/compute?operator=") +
                                    urlEncode(argv[arg]) +
                                    "&unit=" + urlEncode(argv[arg + 1])));
    }
    if (command == "load" && arg + 1 < argc) {
        std::ifstream in(argv[arg + 1]);
        if (!in.is_open()) {
            std::fprintf(stderr, "error: cannot open %s\n", argv[arg + 1]);
            return 1;
        }
        std::ostringstream body;
        body << in.rdbuf();
        return show(httpRequest(host, port, "POST",
                                std::string("/wintermute/load/") + argv[arg],
                                body.str()));
    }
    return usage(argv[0]);
}
