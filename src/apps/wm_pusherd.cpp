// wm_pusherd — standalone per-host Pusher daemon speaking the wire
// transport (src/net/) to a remote wintermuted. This is the multi-process
// deployment shape of the paper's Fig. 3: one pusherd per (simulated)
// host, a TCP connection to the collect-agent plane, exactly-once storage
// guaranteed end to end by per-topic sequence dedup + replay-on-reconnect
// (docs/RESILIENCE.md, "Wire transport").
//
// Usage:
//   wm_pusherd --config configs/pusherd.cfg
//              [--name NAME]          # client name in CONNECT (logs)
//              [--prefix /p0]         # prepended to every topic, so several
//                                     # pusherd processes never collide
//              [--remote-port N]      # overrides remote { port } (the
//                                     # chaos driver learns the server's
//                                     # ephemeral port at runtime)
//              [--publish-log FILE]   # ground-truth log for the chaos
//                                     # driver (PUB/ACK lines, see below)
//              [--duration SEC]       # 0 = run until SIGINT/SIGTERM
//
// Publish-log format (one record per line, flushed line-by-line):
//   PUB <topic> <sequence> <timestamp> <value>   intent-logged BEFORE the
//                                                wire write; duplicates
//                                                (retries, replays) are
//                                                expected — dedup by
//                                                (topic, sequence)
//   ACK <topic> <sequence>                       cumulative server ack
//                                                watermark at log time
// The driver's exactly-once check: every PUB with sequence <= the final
// ACK watermark of its topic must appear in the server's storage dump
// exactly once, and no (topic, timestamp) may appear twice at all.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/thread.h"
#include "common/time_utils.h"
#include "net/connection.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/pusher.h"
#include "simulator/topology.h"

using namespace wm;
using common::kNsPerMs;
using common::kNsPerSec;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) {
    g_stop = 1;
}

/// Ground-truth publish log: PUB lines from pusher worker threads and the
/// reconnect-replay hook, ACK lines from the main stats loop. Values are
/// written with default ostream formatting — the same the storage dump
/// uses — so the driver can compare rows as strings.
class PublishLog {
  public:
    explicit PublishLog(const std::string& path) {
        if (!path.empty()) out_.open(path, std::ios::app);
    }

    void logPublish(const mqtt::Message& message) {
        if (!out_.is_open()) return;
        common::MutexLock lock(mutex_);
        for (const auto& reading : message.readings) {
            out_ << "PUB " << message.topic << ' ' << message.sequence << ' '
                 << reading.timestamp << ' ' << reading.value << '\n';
        }
        out_.flush();
    }

    void logAcks(const std::map<std::string, std::uint64_t>& watermarks) {
        if (!out_.is_open()) return;
        common::MutexLock lock(mutex_);
        for (const auto& [topic, sequence] : watermarks) {
            out_ << "ACK " << topic << ' ' << sequence << '\n';
        }
        out_.flush();
    }

  private:
    // Held while a pusher tick holds its buffer lock (rank 13) — kLogger
    // (99) nests safely under nothing and over everything.
    common::Mutex mutex_{"pusherd.publishlog", common::LockRank::kLogger};
    std::ofstream out_;
};

struct PusherdOptions {
    std::string config_path = "configs/pusherd.cfg";
    std::string name = "pusherd";
    std::string prefix;
    std::string publish_log;
    int duration_sec = 0;
    int remote_port_override = 0;
};

bool installFaults(const common::ConfigNode& root,
                   std::unique_ptr<common::fault::FaultInjector>* injector) {
    const common::ConfigNode* block = root.child("faults");
    if (block == nullptr) return true;
    const auto seed = static_cast<std::uint64_t>(block->getInt("seed", 0xFA171EC7LL));
    *injector = std::make_unique<common::fault::FaultInjector>(seed);
    for (const auto* point : block->childrenOf("point")) {
        const std::string spec_text = point->getString("spec");
        if (!(*injector)->armFromText(point->value(), spec_text)) {
            std::fprintf(stderr, "wm_pusherd: bad fault spec for point '%s': %s\n",
                         point->value().c_str(), spec_text.c_str());
            return false;
        }
    }
    common::fault::FaultInjector::installGlobal(injector->get());
    return true;
}

net::ConnectionConfig readRemote(const common::ConfigNode& root,
                                 const PusherdOptions& options,
                                 std::uint64_t epoch) {
    net::ConnectionConfig config;
    config.client_name = options.name;
    config.epoch = epoch;
    if (const common::ConfigNode* remote = root.child("remote")) {
        config.host = remote->getString("host", "127.0.0.1");
        config.port = static_cast<std::uint16_t>(remote->getInt("port", 0));
        config.max_frame_bytes =
            static_cast<std::size_t>(remote->getInt("maxFrameBytes", 1 << 20));
        config.heartbeat_ns = remote->getDurationNs("heartbeatMs", 500 * kNsPerMs);
        config.max_inflight =
            static_cast<std::size_t>(remote->getInt("maxInflight", 256));
        if (const common::ConfigNode* reconnect = remote->child("reconnect")) {
            config.reconnect.initial_backoff_ns =
                reconnect->getDurationNs("initialMs", 100 * kNsPerMs);
            config.reconnect.max_backoff_ns =
                reconnect->getDurationNs("maxMs", 2 * kNsPerSec);
            config.reconnect.multiplier = reconnect->getDouble("multiplier", 2.0);
        }
    }
    if (options.remote_port_override > 0) {
        config.port = static_cast<std::uint16_t>(options.remote_port_override);
    }
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    PusherdOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
            options.config_path = argv[++i];
        } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
            options.name = argv[++i];
        } else if (std::strcmp(argv[i], "--prefix") == 0 && i + 1 < argc) {
            options.prefix = argv[++i];
        } else if (std::strcmp(argv[i], "--publish-log") == 0 && i + 1 < argc) {
            options.publish_log = argv[++i];
        } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
            options.duration_sec = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--remote-port") == 0 && i + 1 < argc) {
            options.remote_port_override = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--config FILE] [--name NAME] [--prefix /pN] "
                         "[--remote-port N] [--publish-log FILE] [--duration SEC]\n",
                         argv[0]);
            return 2;
        }
    }

    const auto config = common::parseConfigFile(options.config_path);
    if (!config.ok) {
        std::fprintf(stderr, "wm_pusherd: config error in %s: %s (line %zu)\n",
                     options.config_path.c_str(), config.error.c_str(),
                     config.error_line);
        return 1;
    }

    std::unique_ptr<common::fault::FaultInjector> fault_injector;
    if (!installFaults(config.root, &fault_injector)) return 1;

    if (options.prefix.empty()) {
        if (const common::ConfigNode* remote_cfg = config.root.child("remote")) {
            options.prefix = remote_cfg->getString("prefix", "");
        }
    }

    // Cluster shape: same knobs as wintermuted's `cluster` block, but every
    // topic gets the per-process prefix so N pusherd processes feeding one
    // server never collide.
    simulator::Topology topology;
    if (const common::ConfigNode* cluster = config.root.child("cluster")) {
        topology.racks = static_cast<std::size_t>(cluster->getInt("racks", 1));
        topology.chassis_per_rack =
            static_cast<std::size_t>(cluster->getInt("chassisPerRack", 1));
        topology.nodes_per_chassis =
            static_cast<std::size_t>(cluster->getInt("nodesPerChassis", 2));
        topology.cpus_per_node =
            static_cast<std::size_t>(cluster->getInt("cpusPerNode", 4));
        topology.max_nodes = static_cast<std::size_t>(cluster->getInt("maxNodes", 0));
    }
    const simulator::AppKind app = simulator::appFromName(
        config.root.child("cluster") != nullptr
            ? config.root.child("cluster")->getString("app", "lammps")
            : "lammps");

    common::TimestampNs sampling = kNsPerSec;
    common::TimestampNs window = 180 * kNsPerSec;
    std::size_t buffer_max = 65536;
    if (const common::ConfigNode* pusher_cfg = config.root.child("pusher")) {
        sampling = pusher_cfg->getDurationNs("samplingInterval", kNsPerSec);
        window = pusher_cfg->getDurationNs("cacheWindow", 180 * kNsPerSec);
        buffer_max =
            static_cast<std::size_t>(pusher_cfg->getInt("bufferMax", 65536));
    }

    PublishLog publish_log(options.publish_log);

    // The wire. The on_connected hook replays every pusher's ring BEFORE
    // the publish gate opens (net::Connection header comment) — replayed
    // old sequences must hit the wire before freshly buffered new ones.
    std::vector<std::unique_ptr<pusher::Pusher>> pushers;
    net::ConnectionConfig remote = readRemote(
        config.root, options, static_cast<std::uint64_t>(common::nowNs()));
    if (remote.port == 0) {
        std::fprintf(stderr,
                     "wm_pusherd: no remote port (remote { port } or "
                     "--remote-port)\n");
        return 1;
    }
    net::Connection connection(remote, [&pushers] {
        for (auto& p : pushers) p->replayRecent();
    });
    net::RemoteBroker broker(
        connection,
        [&publish_log](const mqtt::Message& message) {
            publish_log.logPublish(message);
        });

    // Buffered readings must flush promptly after a reconnect: a snappy
    // retry cap, not the in-process default.
    common::RetryPolicy publish_retry;
    publish_retry.initial_backoff_ns = 50 * kNsPerMs;
    publish_retry.max_backoff_ns = 500 * kNsPerMs;

    std::vector<std::shared_ptr<pusher::SimulatedNode>> nodes;
    for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
        const std::string node_path = options.prefix + topology.nodePath(n);
        auto node = std::make_shared<pusher::SimulatedNode>(topology.cpus_per_node,
                                                            1000 + n);
        node->startApp(app);
        nodes.push_back(node);
        pusher::PusherConfig pusher_config{node_path, window, 2};
        pusher_config.publish_buffer_max = buffer_max;
        pusher_config.publish_retry = publish_retry;
        auto p = std::make_unique<pusher::Pusher>(std::move(pusher_config), &broker);
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        perf.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
        pusher::SysfssimGroupConfig sys;
        sys.node_path = node_path;
        sys.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
        pusher::ProcfssimGroupConfig proc;
        proc.node_path = node_path;
        proc.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::ProcfssimGroup>(proc, node));
        pushers.push_back(std::move(p));
    }
    if (pushers.empty()) {
        std::fprintf(stderr, "wm_pusherd: empty cluster topology\n");
        return 1;
    }

    connection.start();
    for (auto& p : pushers) p->start();
    std::fprintf(stderr, "wm_pusherd %s: %zu nodes -> %s:%u (prefix '%s')\n",
                 options.name.c_str(), nodes.size(), remote.host.c_str(),
                 remote.port, options.prefix.c_str());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const common::TimestampNs started = common::nowNs();
    common::TimestampNs next_stats = started + kNsPerSec;
    while (g_stop == 0) {
        common::Thread::sleepFor(std::chrono::milliseconds(100));
        const common::TimestampNs now = common::nowNs();
        if (now >= next_stats) {
            next_stats = now + kNsPerSec;
            publish_log.logAcks(connection.ackedWatermarks());
            const net::ConnectionCounters wire = connection.counters();
            std::size_t buffered = 0;
            std::uint64_t dropped = 0;
            for (const auto& p : pushers) {
                buffered += p->bufferedReadings();
                dropped += p->readingsDropped();
            }
            // Stable one-line stats contract for the chaos driver.
            std::fprintf(stderr,
                         "pusherd-stats name=%s connected=%d sent=%llu "
                         "acked=%llu refused=%llu reconnects=%llu "
                         "heartbeat_timeouts=%llu buffered=%zu dropped=%llu "
                         "inflight=%zu\n",
                         options.name.c_str(), connection.connected() ? 1 : 0,
                         static_cast<unsigned long long>(wire.publishes_sent),
                         static_cast<unsigned long long>(wire.messages_acked),
                         static_cast<unsigned long long>(wire.publishes_refused),
                         static_cast<unsigned long long>(wire.reconnects),
                         static_cast<unsigned long long>(wire.heartbeat_timeouts),
                         buffered, static_cast<unsigned long long>(dropped),
                         connection.inflight());
            std::fflush(stderr);
        }
        if (options.duration_sec > 0 &&
            now - started >=
                static_cast<common::TimestampNs>(options.duration_sec) * kNsPerSec) {
            break;
        }
    }

    std::fprintf(stderr, "wm_pusherd %s: shutting down\n", options.name.c_str());
    for (auto& p : pushers) p->stop();
    // Drain: give outstanding publishes a moment to be acked so the final
    // ACK watermark is as complete as possible (the driver only requires
    // acked readings to be stored).
    const common::TimestampNs drain_deadline = common::nowNs() + 3 * kNsPerSec;
    while (connection.connected() && connection.inflight() > 0 &&
           common::nowNs() < drain_deadline) {
        common::Thread::sleepFor(std::chrono::milliseconds(50));
    }
    publish_log.logAcks(connection.ackedWatermarks());
    connection.stop();
    const net::ConnectionCounters wire = connection.counters();
    std::fprintf(stderr,
                 "pusherd-final name=%s sent=%llu acked=%llu reconnects=%llu\n",
                 options.name.c_str(),
                 static_cast<unsigned long long>(wire.publishes_sent),
                 static_cast<unsigned long long>(wire.messages_acked),
                 static_cast<unsigned long long>(wire.reconnects));
    return 0;
}
