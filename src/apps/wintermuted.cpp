// wintermuted — all-in-one DCDB/Wintermute daemon over the simulated
// cluster. It stands up the full data path of Fig. 3 in one process
// (per-node Pushers -> in-process MQTT broker -> Collect Agent -> storage
// backend), hosts Wintermute operators on both sides, and serves the
// control + data REST API over real HTTP. Configuration uses the DCDB-style
// INFO format (see configs/wintermuted.cfg).
//
// Usage:
//   wintermuted --config configs/wintermuted.cfg [--port 8080]
//               [--duration 60]     # seconds; 0 = run until SIGINT
//               [--check [--json]]  # static analysis only (wm-check); no
//                                   # threads are started, exit 1 on errors
//
// REST endpoints (on top of the Wintermute API of OperatorManager::bindRest):
//   GET /sensors                     list all sensor topics
//   GET /sensors/latest?topic=T      latest reading of a sensor
//   GET /sensors/series?topic=T&window=10s   recent readings
//   GET /status                      entity statistics

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/analyzer.h"
#include "collectagent/collect_agent.h"
#include "common/config.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/thread.h"
#include "core/hosting.h"
#include "core/operator_manager.h"
#include "core/supervisor.h"
#include "net/listener.h"
#include "plugins/registry.h"
#include "pusher/plugins/facilitysim_group.h"
#include "pusher/plugins/perfsim_group.h"
#include "pusher/plugins/procfssim_group.h"
#include "pusher/plugins/sysfssim_group.h"
#include "pusher/plugins/tester_group.h"
#include "pusher/pusher.h"
#include "rest/http_server.h"
#include "simulator/topology.h"
#include "storage/shard_map.h"
#include "storage/sharded_storage_backend.h"
#include "storage/storage_backend.h"

using namespace wm;
using common::kNsPerSec;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) {
    g_stop = 1;
}

/// Reads the `persistence` block (docs/RESILIENCE.md, "Durability model").
/// Durability is opt-in: it activates when the block names a directory.
struct PersistenceKnobs {
    bool enabled = false;
    std::string directory;
    std::string wal_file = "storage.wal";
    std::string snapshot_file = "storage.snap";
    std::string quarantine_wal_file = "quarantine.wal";
    std::uint64_t snapshot_every = 4096;
    common::TimestampNs checkpoint_interval_ns = 10 * kNsPerSec;
    bool quarantine_journal = true;
};

struct Daemon {
    simulator::Topology topology;
    pusher::SimulatedFacilityPtr facility;
    mqtt::AsyncBroker broker;
    /// `collectagent { shards N }` with N > 1 builds a ShardedStorageBackend
    /// (per-shard lock + WAL) and one Collect Agent per shard, each owning a
    /// disjoint set of top-level topic subtrees. shards 1 (the default) keeps
    /// the plain StorageBackend and its on-disk layout byte-compatible.
    std::size_t shard_count = 1;
    std::unique_ptr<storage::Storage> storage;
    std::vector<std::unique_ptr<collectagent::CollectAgent>> agents;
    jobs::JobManager jobs;
    std::vector<std::shared_ptr<pusher::SimulatedNode>> nodes;
    std::vector<std::unique_ptr<pusher::Pusher>> pushers;
    std::vector<std::unique_ptr<core::QueryEngine>> pusher_engines;
    std::vector<std::unique_ptr<core::OperatorManager>> pusher_managers;
    core::QueryEngine agent_engine;
    std::unique_ptr<core::OperatorManager> agent_manager;
    rest::Router router;
    std::unique_ptr<rest::HttpServer> server;
    std::unique_ptr<common::fault::FaultInjector> fault_injector;
    PersistenceKnobs persistence;
    std::unique_ptr<core::Supervisor> supervisor;
    /// Wire transport (`transport { listen true }`): remote wm_pusherd
    /// processes stream PUBLISH frames into the same AsyncBroker the local
    /// pushers use, so the sharded agent plane and dedup work unchanged.
    std::unique_ptr<net::Listener> listener;
};

/// Reads the `transport` block; the listener activates on `listen true`.
std::unique_ptr<net::Listener> buildTransport(Daemon& daemon,
                                              const common::ConfigNode& root) {
    const common::ConfigNode* block = root.child("transport");
    if (block == nullptr || !block->getBool("listen", false)) return nullptr;
    net::ListenerConfig config;
    config.port = static_cast<std::uint16_t>(block->getInt("port", 0));
    config.max_frame_bytes =
        static_cast<std::size_t>(block->getInt("maxFrameBytes", 1 << 20));
    config.heartbeat_ns =
        block->getDurationNs("heartbeatMs", 500 * common::kNsPerMs);
    config.max_inflight =
        static_cast<std::size_t>(block->getInt("maxInflight", 4096));
    config.max_connections =
        static_cast<std::size_t>(block->getInt("maxConnections", 64));
    return std::make_unique<net::Listener>(config, daemon.broker);
}

/// Per-agent quarantine journal path for sharded runs: inserts "-<index>"
/// before the file extension ("…/quarantine.wal" -> "…/quarantine-2.wal"),
/// so every agent replays exactly its own journal after a restart.
std::string shardQuarantineWal(const std::string& base, std::size_t index) {
    if (base.empty()) return base;
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
        return base + "-" + std::to_string(index);
    }
    return base.substr(0, dot) + "-" + std::to_string(index) + base.substr(dot);
}

PersistenceKnobs readPersistence(const common::ConfigNode& root) {
    PersistenceKnobs knobs;
    const common::ConfigNode* block = root.child("persistence");
    if (block == nullptr) return knobs;
    knobs.directory = block->getString("directory");
    knobs.enabled = !knobs.directory.empty();
    knobs.wal_file = block->getString("walFile", "storage.wal");
    knobs.snapshot_file = block->getString("snapshotFile", "storage.snap");
    knobs.quarantine_wal_file = block->getString("quarantineWal", "quarantine.wal");
    knobs.snapshot_every =
        static_cast<std::uint64_t>(block->getInt("snapshotEvery", 4096));
    knobs.checkpoint_interval_ns =
        block->getDurationNs("checkpointInterval", 10 * kNsPerSec);
    knobs.quarantine_journal = block->getBool("quarantineJournal", true);
    if (!knobs.enabled) {
        WM_LOG(kWarning, "wintermuted")
            << "persistence block without a directory; durability disabled";
    }
    return knobs;
}

/// Writes one operator-state snapshot set per hosting manager under
/// `<directory>/operators/`. Returns how many snapshots were written.
std::size_t checkpointOperators(Daemon& daemon) {
    const std::string base = daemon.persistence.directory + "/operators";
    std::size_t written = daemon.agent_manager->saveOperatorStates(base + "/collectagent");
    for (std::size_t i = 0; i < daemon.pusher_managers.size(); ++i) {
        written += daemon.pusher_managers[i]->saveOperatorStates(
            base + "/pusher" + std::to_string(i));
    }
    return written;
}

/// Builds the component supervisor from the `supervisor` block (opt-in:
/// absent block = no supervision) and registers every hosting entity.
void buildSupervisor(Daemon& daemon, const common::ConfigNode& root) {
    const common::ConfigNode* block = root.child("supervisor");
    if (block == nullptr) return;
    core::SupervisorConfig config;
    config.check_interval_ns = block->getDurationNs("checkInterval", kNsPerSec);
    config.restart_backoff.max_attempts =
        static_cast<std::size_t>(block->getInt("maxRestarts", 5));
    config.restart_backoff.initial_backoff_ns =
        block->getDurationNs("restartInitialBackoff", 100 * common::kNsPerMs);
    config.restart_backoff.max_backoff_ns =
        block->getDurationNs("restartMaxBackoff", 5 * kNsPerSec);
    config.rng_seed = static_cast<std::uint64_t>(block->getInt("seed", 42));
    daemon.supervisor = std::make_unique<core::Supervisor>(config);
    Daemon* self = &daemon;
    // Dependencies first: a recovered storage backend lets the agent's
    // quarantine drain instead of refilling.
    daemon.supervisor->registerComponent(
        {"storage", [self] { return self->storage->healthy(); },
         // A checkpoint compacts the WAL into a fresh snapshot + journal;
         // success proves the persistence directory is writable again.
         [self] { return self->storage->checkpointNow(); }});
    for (auto& agent_ptr : daemon.agents) {
        collectagent::CollectAgent* agent = agent_ptr.get();
        daemon.supervisor->registerComponent(
            {agent->name(), [agent] { return agent->running(); },
             [agent, self] {
                 agent->stop();
                 agent->start();
                 if (!agent->running()) return false;
                 // The agent may have missed publishes while unsubscribed:
                 // at-least-once replay from every pusher's ring, deduplicated
                 // downstream by per-topic sequence numbers (each replayed
                 // message reaches exactly one agent — filters are disjoint).
                 for (auto& p : self->pushers) p->replayRecent();
                 return true;
             }});
    }
    for (auto& pusher : daemon.pushers) {
        pusher::Pusher* p = pusher.get();
        daemon.supervisor->registerComponent(
            {p->name(), [p] { return p->running(); },
             [p] {
                 p->stop();
                 p->start();
                 return p->running();
             }});
    }
    daemon.supervisor->registerComponent(
        {"operator-manager", [self] { return self->agent_manager->running(); },
         [self] {
             self->agent_manager->stop();
             self->agent_manager->start();
             return self->agent_manager->running();
         }});
}

/// Reads the `resilience` block into per-entity knobs (docs/RESILIENCE.md).
struct ResilienceKnobs {
    std::size_t publish_buffer_max = 4096;
    common::RetryPolicy publish_retry{};
    std::size_t subscriber_failure_budget = 0;
    std::size_t quarantine_max = 4096;
};

ResilienceKnobs readResilience(const common::ConfigNode& root) {
    ResilienceKnobs knobs;
    const common::ConfigNode* block = root.child("resilience");
    if (block == nullptr) return knobs;
    knobs.publish_buffer_max =
        static_cast<std::size_t>(block->getInt("publishBufferMax", 4096));
    knobs.publish_retry.initial_backoff_ns =
        block->getDurationNs("retryInitialBackoff", 100 * common::kNsPerMs);
    knobs.publish_retry.max_backoff_ns =
        block->getDurationNs("retryMaxBackoff", 5 * kNsPerSec);
    knobs.publish_retry.multiplier = block->getDouble("retryMultiplier", 2.0);
    knobs.publish_retry.jitter = block->getDouble("retryJitter", 0.1);
    knobs.subscriber_failure_budget =
        static_cast<std::size_t>(block->getInt("subscriberFailureBudget", 0));
    knobs.quarantine_max = static_cast<std::size_t>(block->getInt("quarantineMax", 4096));
    return knobs;
}

/// Arms the global fault injector from the `faults` block:
///   faults {
///       seed 1234
///       point "broker.deliver" { spec "drop prob=0.01" }
///   }
bool installFaults(Daemon& daemon, const common::ConfigNode& root) {
    const common::ConfigNode* block = root.child("faults");
    if (block == nullptr) return true;
    const auto seed = static_cast<std::uint64_t>(block->getInt("seed", 0xFA171EC7LL));
    daemon.fault_injector = std::make_unique<common::fault::FaultInjector>(seed);
    for (const auto* point : block->childrenOf("point")) {
        const std::string spec_text = point->getString("spec");
        if (!daemon.fault_injector->armFromText(point->value(), spec_text)) {
            WM_LOG(kError, "wintermuted")
                << "bad fault spec for point '" << point->value() << "': " << spec_text;
            return false;
        }
        WM_LOG(kInfo, "wintermuted")
            << "fault point armed: " << point->value() << " (" << spec_text << ")";
    }
    common::fault::FaultInjector::installGlobal(daemon.fault_injector.get());
    return true;
}

/// Builds the cluster from the `cluster` and `pusher` config blocks.
void buildCluster(Daemon& daemon, const common::ConfigNode& root) {
    const common::ConfigNode* cluster = root.child("cluster");
    simulator::Topology& topology = daemon.topology;
    if (cluster != nullptr) {
        topology.racks = static_cast<std::size_t>(cluster->getInt("racks", 2));
        topology.chassis_per_rack =
            static_cast<std::size_t>(cluster->getInt("chassisPerRack", 2));
        topology.nodes_per_chassis =
            static_cast<std::size_t>(cluster->getInt("nodesPerChassis", 2));
        topology.cpus_per_node =
            static_cast<std::size_t>(cluster->getInt("cpusPerNode", 8));
        topology.max_nodes = static_cast<std::size_t>(cluster->getInt("maxNodes", 0));
    }
    const simulator::AppKind app = simulator::appFromName(
        cluster != nullptr ? cluster->getString("app", "lammps") : "lammps");

    const common::ConfigNode* pusher_cfg = root.child("pusher");
    common::TimestampNs sampling = kNsPerSec;
    common::TimestampNs window = 180 * kNsPerSec;
    if (pusher_cfg != nullptr) {
        sampling = pusher_cfg->getDurationNs("samplingInterval", kNsPerSec);
        window = pusher_cfg->getDurationNs("cacheWindow", 180 * kNsPerSec);
    }

    const ResilienceKnobs knobs = readResilience(root);
    daemon.broker.setSubscriberFailureBudget(knobs.subscriber_failure_budget);

    // `collectagent { filter "..." }` narrows what the agent subscribes to
    // (default "#", everything). wm-check validates the filter statically
    // (WM0205) and warns when it can never match a published topic (WM0206).
    // `storageTtl` bounds storage retention; without it the backend grows
    // without limit (wm-check flags that against a memory budget, WM0904).
    // `shards N` (default 1) partitions both planes: storage becomes N
    // hash-sharded stores and the ingest plane becomes N agents, each owning
    // the topic subtrees assignSubtreeShards() deals to it — the same rule
    // wm-check applies for its per-shard load prediction (WM0910).
    std::string agent_filter = "#";
    common::TimestampNs storage_ttl = 0;
    if (const common::ConfigNode* agent_cfg = root.child("collectagent")) {
        agent_filter = agent_cfg->getString("filter", "#");
        storage_ttl = agent_cfg->getDurationNs("storageTtl", 0);
        daemon.shard_count = std::clamp<std::size_t>(
            static_cast<std::size_t>(agent_cfg->getInt("shards", 1)), 1,
            storage::ShardedStorageBackend::kMaxShards);
    }
    if (daemon.shard_count > 1) {
        daemon.storage =
            std::make_unique<storage::ShardedStorageBackend>(daemon.shard_count);
    } else {
        daemon.storage = std::make_unique<storage::StorageBackend>();
    }
    if (storage_ttl > 0) daemon.storage->setDefaultTtl(storage_ttl);

    // Durability first: the storage backend must finish crash recovery
    // (snapshot load + WAL replay) before the agents start inserting. The
    // sharded backend fans this out into per-shard `shard-NNN/` directories.
    daemon.persistence = readPersistence(root);
    std::string quarantine_wal_path;
    if (daemon.persistence.enabled) {
        storage::DurabilityOptions durability;
        durability.directory = daemon.persistence.directory;
        durability.wal_file = daemon.persistence.wal_file;
        durability.snapshot_file = daemon.persistence.snapshot_file;
        durability.snapshot_every = daemon.persistence.snapshot_every;
        if (!daemon.storage->enableDurability(durability)) {
            WM_LOG(kError, "wintermuted")
                << "cannot enable storage durability under "
                << daemon.persistence.directory << "; running volatile";
        } else if (daemon.persistence.quarantine_journal) {
            const std::string& file = daemon.persistence.quarantine_wal_file;
            quarantine_wal_path = (!file.empty() && file.front() == '/')
                                      ? file
                                      : daemon.persistence.directory + "/" + file;
        }
    }

    const bool facility_enabled = root.child("facility") == nullptr ||
                                  root.child("facility")->getBool("enabled", true);
    if (daemon.shard_count == 1) {
        collectagent::CollectAgentConfig agent_config;
        agent_config.name = "collectagent";
        agent_config.filter = agent_filter;
        agent_config.cache_window_ns = window;
        agent_config.quarantine_max = knobs.quarantine_max;
        agent_config.quarantine_wal_path = quarantine_wal_path;
        daemon.agents.push_back(std::make_unique<collectagent::CollectAgent>(
            std::move(agent_config), daemon.broker, *daemon.storage));
    } else {
        // Subtree ownership: the sorted unique top-level prefixes of every
        // published topic, dealt round-robin. Derived from the topology the
        // pushers will publish under, so the assignment is reproducible
        // across restarts and matches the static capacity analysis.
        std::vector<std::string> prefixes;
        for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
            const std::string node_path = topology.nodePath(n);
            prefixes.push_back(node_path.substr(0, node_path.find('/', 1)));
        }
        if (facility_enabled) prefixes.push_back("/facility");
        const auto assignment =
            storage::assignSubtreeShards(std::move(prefixes), daemon.shard_count);
        std::vector<std::vector<std::string>> filters(daemon.shard_count);
        for (const auto& [prefix, shard] : assignment) {
            filters[shard].push_back(prefix + "/#");
        }
        for (std::size_t i = 0; i < daemon.shard_count; ++i) {
            if (filters[i].empty()) continue;  // more shards than subtrees
            collectagent::CollectAgentConfig agent_config;
            agent_config.name = "collectagent-" + std::to_string(i);
            agent_config.filters = std::move(filters[i]);
            agent_config.cache_window_ns = window;
            agent_config.quarantine_max = knobs.quarantine_max;
            agent_config.quarantine_wal_path =
                shardQuarantineWal(quarantine_wal_path, i);
            daemon.agents.push_back(std::make_unique<collectagent::CollectAgent>(
                std::move(agent_config), daemon.broker, *daemon.storage));
        }
    }
    for (auto& agent : daemon.agents) agent->start();

    for (std::size_t n = 0; n < topology.nodeCount(); ++n) {
        const std::string node_path = topology.nodePath(n);
        auto node =
            std::make_shared<pusher::SimulatedNode>(topology.cpus_per_node, 1000 + n);
        node->startApp(app);
        daemon.nodes.push_back(node);
        pusher::PusherConfig pusher_config{node_path, window, 2};
        pusher_config.publish_buffer_max = knobs.publish_buffer_max;
        pusher_config.publish_retry = knobs.publish_retry;
        auto p = std::make_unique<pusher::Pusher>(std::move(pusher_config),
                                                  &daemon.broker);
        pusher::PerfsimGroupConfig perf;
        perf.node_path = node_path;
        perf.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::PerfsimGroup>(perf, node));
        pusher::SysfssimGroupConfig sys;
        sys.node_path = node_path;
        sys.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::SysfssimGroup>(sys, node));
        pusher::ProcfssimGroupConfig proc;
        proc.node_path = node_path;
        proc.interval_ns = sampling;
        p->addGroup(std::make_unique<pusher::ProcfssimGroup>(proc, node));
        daemon.pushers.push_back(std::move(p));
    }

    // Facility level (holistic monitoring): one cooling circuit fed by the
    // sum of the nodes' most recent power readings.
    if (facility_enabled) {
        Daemon* self = &daemon;
        daemon.facility = std::make_shared<pusher::SimulatedFacility>(
            simulator::FacilityCharacteristics{}, [self] {
                double total = 0.0;
                for (const auto& p : self->pushers) {
                    const auto* cache =
                        p->cacheStore().find(p->name() + "/power");
                    if (cache != nullptr) {
                        const auto latest = cache->latest();
                        if (latest) total += latest->value;
                    }
                }
                return total;
            });
        pusher::PusherConfig facility_config{"/facility", window, 2};
        facility_config.publish_buffer_max = knobs.publish_buffer_max;
        facility_config.publish_retry = knobs.publish_retry;
        auto facility_pusher = std::make_unique<pusher::Pusher>(
            std::move(facility_config), &daemon.broker);
        pusher::FacilitysimGroupConfig facility_group;
        facility_group.interval_ns = sampling;
        facility_pusher->addGroup(std::make_unique<pusher::FacilitysimGroup>(
            facility_group, daemon.facility));
        daemon.pushers.push_back(std::move(facility_pusher));
    }
}

/// Creates the Wintermute hosts and loads the configured plugins.
bool loadWintermute(Daemon& daemon, const common::ConfigNode& root) {
    for (auto& p : daemon.pushers) {
        auto engine = std::make_unique<core::QueryEngine>();
        engine->setCacheStore(&p->cacheStore());
        auto manager = std::make_unique<core::OperatorManager>(core::makeHostContext(
            *engine, &p->cacheStore(), &daemon.broker, nullptr));
        plugins::registerBuiltinPlugins(*manager);
        daemon.pusher_engines.push_back(std::move(engine));
        daemon.pusher_managers.push_back(std::move(manager));
    }
    // The agent-side engine fans reads out across every agent's cache store
    // (a topic lives in exactly one — filters are disjoint) with the sharded
    // storage as fallback. Operator outputs land in the first agent's store.
    daemon.agent_engine.setCacheStore(&daemon.agents.front()->cacheStore());
    for (std::size_t i = 1; i < daemon.agents.size(); ++i) {
        daemon.agent_engine.addCacheStore(&daemon.agents[i]->cacheStore());
    }
    daemon.agent_engine.setStorage(daemon.storage.get());
    auto agent_context = core::makeHostContext(
        daemon.agent_engine, &daemon.agents.front()->cacheStore(), nullptr,
        daemon.storage.get(), &daemon.jobs);
    // Control authority: feedback-loop operators in the Collect Agent can
    // actuate the facility's inlet setpoint and per-node DVFS.
    Daemon* self = &daemon;
    agent_context.actuate = [self](const std::string& knob, const std::string& target,
                                   double value) {
        if (knob == "inlet-setpoint" && target == "/facility" && self->facility) {
            self->facility->setInletSetpoint(value);
            return true;
        }
        if (knob == "dvfs") {
            for (std::size_t n = 0; n < self->nodes.size(); ++n) {
                if (self->topology.nodePath(n) == target) {
                    self->nodes[n]->setFrequencyScale(value);
                    return true;
                }
            }
        }
        return false;
    };
    daemon.agent_manager = std::make_unique<core::OperatorManager>(std::move(agent_context));
    plugins::registerBuiltinPlugins(*daemon.agent_manager);

    // One initial sampling pass so unit resolution sees the sensors.
    for (auto& p : daemon.pushers) p->sampleOnce(common::nowNs());
    daemon.broker.flush();
    for (auto& engine : daemon.pusher_engines) engine->rebuildTree();
    daemon.agent_engine.rebuildTree();

    // Plugin blocks: `plugin <name> { host pusher|collectagent; operator .. }`.
    for (const auto* plugin : root.childrenOf("plugin")) {
        const std::string name = plugin->value();
        const std::string host = plugin->getString("host", "collectagent");
        int created = 0;
        if (host == "pusher") {
            for (auto& manager : daemon.pusher_managers) {
                const int n = manager->loadPlugin(name, *plugin);
                if (n < 0) {
                    WM_LOG(kError, "wintermuted") << "unknown plugin: " << name;
                    return false;
                }
                created += n;
            }
        } else {
            created = daemon.agent_manager->loadPlugin(name, *plugin);
            if (created < 0) {
                WM_LOG(kError, "wintermuted") << "unknown plugin: " << name;
                return false;
            }
        }
        WM_LOG(kInfo, "wintermuted")
            << "plugin " << name << " on " << host << ": " << created << " operators";
    }

    // Model recovery: restore checkpointed operator state (trained forests,
    // mixture models, EWMA maps, ...) written by a previous incarnation.
    if (daemon.persistence.enabled) {
        const std::string base = daemon.persistence.directory + "/operators";
        std::size_t restored =
            daemon.agent_manager->restoreOperatorStates(base + "/collectagent");
        for (std::size_t i = 0; i < daemon.pusher_managers.size(); ++i) {
            restored += daemon.pusher_managers[i]->restoreOperatorStates(
                base + "/pusher" + std::to_string(i));
        }
        if (restored > 0) {
            WM_LOG(kInfo, "wintermuted")
                << "restored " << restored << " operator state snapshot(s)";
        }
    }
    return true;
}

void bindDataRest(Daemon& daemon) {
    daemon.router.route("GET", "/sensors", [&daemon](const rest::Request&) {
        std::ostringstream body;
        body << "{\"sensors\":[";
        // Union across the agents' cache stores (disjoint by construction),
        // sorted so the listing is shard-count independent.
        std::vector<std::string> topics;
        for (const auto& agent : daemon.agents) {
            auto part = agent->cacheStore().topics();
            topics.insert(topics.end(), std::make_move_iterator(part.begin()),
                          std::make_move_iterator(part.end()));
        }
        std::sort(topics.begin(), topics.end());
        for (std::size_t i = 0; i < topics.size(); ++i) {
            if (i > 0) body << ',';
            body << '"' << rest::jsonEscape(topics[i]) << '"';
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });
    daemon.router.route("GET", "/sensors/latest", [&daemon](const rest::Request& request) {
        auto it = request.query.find("topic");
        if (it == request.query.end()) return rest::Response::badRequest("topic required");
        const auto reading = daemon.agent_engine.latest(it->second);
        if (!reading) return rest::Response::notFound("no data for " + it->second);
        std::ostringstream body;
        body << "{\"topic\":\"" << rest::jsonEscape(it->second)
             << "\",\"timestamp\":" << reading->timestamp
             << ",\"value\":" << reading->value << "}";
        return rest::Response::ok(body.str());
    });
    daemon.router.route("GET", "/sensors/series", [&daemon](const rest::Request& request) {
        auto topic_it = request.query.find("topic");
        if (topic_it == request.query.end()) {
            return rest::Response::badRequest("topic required");
        }
        common::TimestampNs window = 10 * kNsPerSec;
        auto window_it = request.query.find("window");
        if (window_it != request.query.end()) {
            const auto parsed = common::parseDuration(window_it->second);
            if (!parsed) return rest::Response::badRequest("bad window");
            window = *parsed;
        }
        const auto readings = daemon.agent_engine.queryRelative(topic_it->second, window);
        std::ostringstream body;
        body << "{\"topic\":\"" << rest::jsonEscape(topic_it->second)
             << "\",\"readings\":[";
        for (std::size_t i = 0; i < readings.size(); ++i) {
            if (i > 0) body << ',';
            body << "{\"t\":" << readings[i].timestamp << ",\"v\":" << readings[i].value
                 << "}";
        }
        body << "]}";
        return rest::Response::ok(body.str());
    });
    daemon.router.route("GET", "/storage/dump", [&daemon](const rest::Request&) {
        // Full storage dump as CSV (topic,timestamp,value) — the chaos
        // driver diffs this against its ground-truth publish logs. The
        // backend only dumps to a file, so round-trip through a temp file.
        char path[] = "/tmp/wm_dump_XXXXXX";
        const int fd = ::mkstemp(path);
        if (fd < 0) return rest::Response::error("cannot create dump file");
        ::close(fd);
        std::string csv;
        if (daemon.storage->dumpCsv(path)) {
            std::ifstream in(path);
            std::ostringstream content;
            content << in.rdbuf();
            csv = content.str();
        }
        ::unlink(path);
        if (csv.empty()) return rest::Response::error("storage dump failed");
        rest::Response response = rest::Response::ok(std::move(csv));
        response.content_type = "text/csv";
        return response;
    });
    daemon.router.route("GET", "/status", [&daemon](const rest::Request&) {
        std::uint64_t sampled = 0;
        std::uint64_t buffered = 0;
        std::uint64_t pusher_dropped = 0;
        for (const auto& p : daemon.pushers) {
            sampled += p->readingsSampled();
            buffered += p->bufferedReadings();
            pusher_dropped += p->readingsDropped();
        }
        std::uint64_t messages_received = 0;
        std::uint64_t sensor_count = 0;
        std::uint64_t quarantined = 0;
        std::uint64_t storage_errors = 0;
        std::uint64_t dedup_drops = 0;
        std::uint64_t quarantine_wal_replayed = 0;
        for (const auto& agent : daemon.agents) {
            messages_received += agent->messagesReceived();
            sensor_count += agent->cacheStore().sensorCount();
            quarantined += agent->quarantinedReadings();
            storage_errors += agent->storageErrorsTotal();
            dedup_drops += agent->dedupDrops();
            quarantine_wal_replayed += agent->quarantineWalReplayed();
        }
        const auto stats = daemon.storage->stats();
        std::ostringstream body;
        body << "{\"nodes\":" << daemon.nodes.size()
             << ",\"shards\":" << daemon.shard_count
             << ",\"agents\":" << daemon.agents.size()
             << ",\"readingsSampled\":" << sampled
             << ",\"messagesReceived\":" << messages_received
             << ",\"storedReadings\":" << stats.reading_count
             << ",\"sensors\":" << sensor_count
             << ",\"storageMemoryBytes\":" << daemon.storage->memoryBytes()
             << ",\"resilience\":{"
             << "\"pusherBuffered\":" << buffered
             << ",\"pusherDropped\":" << pusher_dropped
             << ",\"brokerDropped\":" << daemon.broker.droppedCount()
             << ",\"evictedSubscribers\":" << daemon.broker.evictedSubscribers()
             << ",\"quarantined\":" << quarantined
             << ",\"storageErrors\":" << storage_errors
             << ",\"rejectedInserts\":" << stats.rejected_inserts
             << ",\"duplicateDrops\":" << stats.duplicate_drops << "}";
        body << ",\"transport\":{";
        if (daemon.listener) {
            const auto wire = daemon.listener->counters();
            body << "\"enabled\":true"
                 << ",\"port\":" << daemon.listener->port()
                 << ",\"connectionsAccepted\":" << wire.connections_accepted
                 << ",\"connectionsActive\":" << wire.connections_active
                 << ",\"framesIn\":" << wire.frames_in
                 << ",\"framesOut\":" << wire.frames_out
                 << ",\"crcRejects\":" << wire.crc_rejects
                 << ",\"decodeErrors\":" << wire.decode_errors
                 << ",\"oversizedRejects\":" << wire.oversized_rejects
                 << ",\"publishesForwarded\":" << wire.publishes_forwarded
                 << ",\"frameGaps\":" << wire.frame_gaps
                 << ",\"heartbeatTimeouts\":" << wire.heartbeat_timeouts
                 << ",\"evictedSlow\":" << wire.evicted_slow
                 << ",\"evictedInflight\":" << wire.evicted_inflight
                 << ",\"acceptFaults\":" << wire.accept_faults;
        } else {
            body << "\"enabled\":false";
        }
        body << "}";
        const auto durability = daemon.storage->durabilityStats();
        std::uint64_t messages_replayed = 0;
        for (const auto& p : daemon.pushers) messages_replayed += p->messagesReplayed();
        std::uint64_t op_snapshots_written =
            daemon.agent_manager->operatorSnapshotsWritten();
        std::uint64_t op_snapshots_restored =
            daemon.agent_manager->operatorSnapshotsRestored();
        for (const auto& manager : daemon.pusher_managers) {
            op_snapshots_written += manager->operatorSnapshotsWritten();
            op_snapshots_restored += manager->operatorSnapshotsRestored();
        }
        body << ",\"durability\":{"
             << "\"enabled\":" << (durability.enabled ? "true" : "false")
             << ",\"recoveredFromSnapshot\":"
             << (durability.recovered_from_snapshot ? "true" : "false")
             << ",\"walRecordsLogged\":" << durability.wal_records_logged
             << ",\"walRecordsReplayed\":" << durability.wal_records_replayed
             << ",\"walAppendFailures\":" << durability.wal_append_failures
             << ",\"tornTailTruncations\":" << durability.torn_tail_truncations
             << ",\"snapshotsWritten\":" << durability.snapshots_written
             << ",\"snapshotFailures\":" << durability.snapshot_failures
             << ",\"operatorSnapshotsWritten\":" << op_snapshots_written
             << ",\"operatorSnapshotsRestored\":" << op_snapshots_restored
             << ",\"componentRestarts\":"
             << (daemon.supervisor ? daemon.supervisor->restartsTotal() : 0)
             << ",\"failedRestarts\":"
             << (daemon.supervisor ? daemon.supervisor->failedRestartsTotal() : 0)
             << ",\"dedupDrops\":" << dedup_drops
             << ",\"messagesReplayed\":" << messages_replayed
             << ",\"quarantineWalReplayed\":" << quarantine_wal_replayed
             << "}}";
        return rest::Response::ok(body.str());
    });
}

}  // namespace

int main(int argc, char** argv) {
    std::string config_path = "configs/wintermuted.cfg";
    std::uint16_t port = 8080;
    int duration_sec = 0;
    bool check_only = false;
    bool check_json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
            config_path = argv[++i];
        } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
            duration_sec = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check_only = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            check_json = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--config FILE] [--port N] [--duration SEC] "
                         "[--check [--json]]\n",
                         argv[0]);
            return 2;
        }
    }

    if (check_only) {
        // Dry-run static analysis (wm-check): validate the configuration and
        // its dataflow without bringing up any entity or thread. Exit 2 on
        // errors — the same contract as the standalone wm_check binary.
        analysis::DiagnosticSink sink;
        analysis::analyzeConfigFile(config_path, sink);
        std::fputs((check_json ? analysis::renderJson(sink) + "\n"
                               : analysis::renderText(sink))
                       .c_str(),
                   stdout);
        return sink.hasErrors() ? 2 : 0;
    }

    const auto config = common::parseConfigFile(config_path);
    if (!config.ok) {
        std::fprintf(stderr, "wintermuted: config error in %s: %s (line %zu)\n",
                     config_path.c_str(), config.error.c_str(), config.error_line);
        return 1;
    }

    Daemon daemon;
    if (!installFaults(daemon, config.root)) return 1;
    buildCluster(daemon, config.root);
    if (!loadWintermute(daemon, config.root)) return 1;
    bindDataRest(daemon);
    daemon.agent_manager->bindRest(daemon.router);

    daemon.server = std::make_unique<rest::HttpServer>(daemon.router);
    if (!daemon.server->start(port)) {
        std::fprintf(stderr, "wintermuted: cannot bind port %u\n", port);
        return 1;
    }
    daemon.listener = buildTransport(daemon, config.root);
    if (daemon.listener && !daemon.listener->start()) {
        std::fprintf(stderr, "wintermuted: cannot bind transport port\n");
        return 1;
    }
    if (daemon.listener) {
        std::printf("wintermuted: transport on 127.0.0.1:%u\n",
                    daemon.listener->port());
        std::fflush(stdout);
    }
    for (auto& p : daemon.pushers) p->start();
    for (auto& manager : daemon.pusher_managers) manager->start();
    daemon.agent_manager->start();
    buildSupervisor(daemon, config.root);
    if (daemon.supervisor) daemon.supervisor->start();
    std::printf("wintermuted: %zu nodes, REST on 127.0.0.1:%u, %s\n",
                daemon.nodes.size(), daemon.server->port(),
                duration_sec > 0 ? "timed run" : "Ctrl-C to stop");

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto started = std::chrono::steady_clock::now();
    common::TimestampNs last_checkpoint_ns = common::nowNs();
    while (g_stop == 0) {
        common::Thread::sleepFor(std::chrono::milliseconds(200));
        // Drain readings parked by storage outages once the backend accepts
        // inserts again (graceful-degradation loop, docs/RESILIENCE.md).
        for (auto& agent : daemon.agents) agent->retryQuarantined();
        if (daemon.persistence.enabled) {
            const common::TimestampNs now = common::nowNs();
            if (now - last_checkpoint_ns >= daemon.persistence.checkpoint_interval_ns) {
                last_checkpoint_ns = now;
                checkpointOperators(daemon);
            }
        }
        if (duration_sec > 0 &&
            std::chrono::steady_clock::now() - started >=
                std::chrono::seconds(duration_sec)) {
            break;
        }
    }

    std::printf("wintermuted: shutting down\n");
    // Supervisor first: a stopped component must read as "shut down", not
    // as a fault to restart.
    if (daemon.supervisor) daemon.supervisor->stop();
    if (daemon.listener) daemon.listener->stop();
    daemon.agent_manager->stop();
    for (auto& manager : daemon.pusher_managers) manager->stop();
    for (auto& p : daemon.pushers) p->stop();
    daemon.server->stop();
    for (auto& agent : daemon.agents) agent->stop();
    if (daemon.persistence.enabled) {
        // Final checkpoint after every producer stopped: the snapshot pair
        // (storage + operator state) is the exact shutdown state.
        checkpointOperators(daemon);
        daemon.storage->checkpointNow();
    }
    return 0;
}
