// wm_eval — end-to-end operator quality evaluation over scenario campaigns.
// Runs every `scenario` block of the given `.scn` files (or directories of
// them) through the full in-process pipeline (simulated nodes -> Pushers ->
// broker -> Collect Agent -> operators) on the virtual clock, scores the
// configured detectors against the ground-truth label stream, and writes
// the per-operator precision/recall/F1 and detection-lag report.
//
// Usage:
//   wm_eval [--output BENCH_quality.json] FILE_OR_DIR...
//
// The output is byte-stable across runs at the same seeds: everything runs
// on virtual time with seeded generators and fixed-precision rendering.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/config.h"
#include "scenario/runner.h"

using namespace wm;

namespace {

std::vector<std::string> collectInputs(const std::vector<std::string>& args) {
    std::vector<std::string> files;
    for (const std::string& arg : args) {
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            std::vector<std::string> dir_files;
            for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
                if (entry.path().extension() == ".scn") {
                    dir_files.push_back(entry.path().string());
                }
            }
            std::sort(dir_files.begin(), dir_files.end());
            files.insert(files.end(), dir_files.begin(), dir_files.end());
        } else {
            files.push_back(arg);
        }
    }
    return files;
}

}  // namespace

int main(int argc, char** argv) {
    std::string output = "BENCH_quality.json";
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
            output = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "usage: %s [--output FILE] FILE_OR_DIR...\n", argv[0]);
            return 2;
        } else {
            args.emplace_back(argv[i]);
        }
    }
    const std::vector<std::string> files = collectInputs(args);
    if (files.empty()) {
        std::fprintf(stderr, "wm_eval: no .scn inputs\n");
        return 2;
    }

    std::vector<scenario::EvaluationReport> reports;
    for (const std::string& file : files) {
        const auto parsed = common::parseConfigFile(file);
        if (!parsed.ok) {
            std::fprintf(stderr, "wm_eval: %s: %s (line %zu)\n", file.c_str(),
                         parsed.error.c_str(), parsed.error_line);
            return 1;
        }
        auto file_reports = scenario::runScenarios(parsed.root);
        if (file_reports.empty()) {
            std::fprintf(stderr, "wm_eval: %s: no runnable scenario blocks\n",
                         file.c_str());
            return 1;
        }
        for (auto& report : file_reports) {
            std::printf("%s: %zu detector(s), truncated_windows=%zu\n",
                        report.scenario.c_str(), report.detectors.size(),
                        report.truncated_windows);
            reports.push_back(std::move(report));
        }
    }

    const std::string json = scenario::renderQualityJson(reports);
    std::FILE* out = std::fopen(output.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "wm_eval: cannot write %s\n", output.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wm_eval: %zu scenario(s) -> %s\n", reports.size(), output.c_str());
    return 0;
}
