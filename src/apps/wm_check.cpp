// wm_check — standalone static configuration analyzer (wm-check). Performs
// the full dry run of src/analysis over one or more configuration files and
// renders the findings, without starting threads, sockets, or operators.
// The same analysis is available as `wintermuted --check`.
//
// Usage:
//   wm_check [--json] [--werror] [--capacity-report=<file>] <config>...
//
//   --json                    machine-readable output, one document per file
//   --werror                  warnings fail the exit status (alias: --strict)
//   --capacity-report=<file>  write the wintermute-capacity-v1 JSON report
//                             for the (single) config; "-" writes to stdout
//
// Exit status contract (tools/config_check.py and CI depend on it):
//   0 = clean, or warnings only without --werror
//   1 = warnings only, under --werror
//   2 = errors
//   3 = usage error

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/capacity.h"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: wm_check [--json] [--werror] "
                 "[--capacity-report=<file>] <config>...\n");
    return 3;
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    bool werror = false;
    std::string capacity_path;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--werror") == 0 ||
                   std::strcmp(argv[i], "--strict") == 0) {
            werror = true;
        } else if (std::strncmp(argv[i], "--capacity-report=", 18) == 0) {
            capacity_path = argv[i] + 18;
            if (capacity_path.empty()) {
                std::fprintf(stderr, "wm_check: --capacity-report needs a file\n");
                return usage();
            }
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "wm_check: unknown option %s\n", argv[i]);
            return usage();
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty()) return usage();
    if (!capacity_path.empty() && paths.size() != 1) {
        std::fprintf(stderr,
                     "wm_check: --capacity-report applies to exactly one config\n");
        return usage();
    }

    bool errors = false;
    bool warnings = false;
    for (const std::string& path : paths) {
        wm::analysis::DiagnosticSink sink;
        wm::analysis::CapacityReport report;
        wm::analysis::analyzeConfigFile(path, sink, &report);
        if (json) {
            std::printf("%s\n", wm::analysis::renderJson(sink).c_str());
        } else {
            if (paths.size() > 1) std::printf("== %s ==\n", path.c_str());
            std::fputs(wm::analysis::renderText(sink).c_str(), stdout);
        }
        errors = errors || sink.hasErrors();
        warnings = warnings || sink.warningCount() > 0;
        if (!capacity_path.empty()) {
            const std::string rendered =
                wm::analysis::renderCapacityJson(report, path);
            if (capacity_path == "-") {
                std::fputs(rendered.c_str(), stdout);
            } else {
                std::ofstream out(capacity_path, std::ios::binary | std::ios::trunc);
                if (!out) {
                    std::fprintf(stderr, "wm_check: cannot write %s\n",
                                 capacity_path.c_str());
                    return 3;
                }
                out << rendered;
            }
        }
    }
    if (errors) return 2;
    if (warnings && werror) return 1;
    return 0;
}
