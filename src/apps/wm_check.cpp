// wm_check — standalone static configuration analyzer (wm-check). Performs
// the full dry run of src/analysis over one or more configuration files and
// renders the findings, without starting threads, sockets, or operators.
// The same analysis is available as `wintermuted --check`.
//
// Usage:
//   wm_check [--json] [--strict] <config>...
//
//   --json     machine-readable output, one JSON document per file
//   --strict   treat warnings as errors for the exit status
//
// Exit status: 0 = no errors (and no warnings with --strict), 1 = findings,
// 2 = usage error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

int main(int argc, char** argv) {
    bool json = false;
    bool strict = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--strict") == 0) {
            strict = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "wm_check: unknown option %s\n", argv[i]);
            std::fprintf(stderr, "usage: wm_check [--json] [--strict] <config>...\n");
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "usage: wm_check [--json] [--strict] <config>...\n");
        return 2;
    }

    bool failed = false;
    for (const std::string& path : paths) {
        wm::analysis::DiagnosticSink sink;
        wm::analysis::analyzeConfigFile(path, sink);
        if (json) {
            std::printf("%s\n", wm::analysis::renderJson(sink).c_str());
        } else {
            if (paths.size() > 1) std::printf("== %s ==\n", path.c_str());
            std::fputs(wm::analysis::renderText(sink).c_str(), stdout);
        }
        failed = failed || sink.hasErrors() || (strict && sink.warningCount() > 0);
    }
    return failed ? 1 : 0;
}
