#pragma once

// Minimal HTTP/1.1 server over POSIX sockets, standing in for the
// Boost.Asio-based HTTPS server DCDB embeds in every component (see
// DESIGN.md, substitutions). One acceptor thread, one handler thread per
// connection, connection-close semantics. Dispatch goes through a Router,
// so the same handlers serve in-process and over-the-wire requests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "rest/router.h"

namespace wm::rest {

class HttpServer {
  public:
    /// The server dispatches into `router`; the caller keeps ownership and
    /// must keep the router alive while the server runs.
    explicit HttpServer(Router& router);
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
    /// acceptor thread. Returns false on bind/listen failure.
    bool start(std::uint16_t port = 0);

    /// Stops accepting, closes the listener and joins worker threads.
    void stop();

    bool running() const { return running_.load(); }
    std::uint16_t port() const { return port_; }
    std::uint64_t requestCount() const { return requests_.load(); }

  private:
    void acceptLoop();
    void handleConnection(int fd);

    Router& router_;
    std::atomic<bool> running_{false};
    // Atomic: stop() closes and invalidates the fd while acceptLoop() reads
    // it for accept(); accept() on the closed fd then fails and the loop
    // observes running_ == false.
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;
    common::Thread acceptor_;
    common::Mutex workers_mutex_{"HttpServer.workers", common::LockRank::kHttpServer};
    std::vector<common::Thread> workers_ WM_GUARDED_BY(workers_mutex_);
    std::atomic<std::uint64_t> requests_{0};
};

/// Blocking HTTP/1.1 client for tests and examples.
struct HttpResult {
    bool ok = false;        // transport-level success
    int status = 0;
    std::string body;
    std::string error;      // transport error description when !ok
};

HttpResult httpRequest(const std::string& host, std::uint16_t port,
                       const std::string& method, const std::string& target,
                       const std::string& body = "", int timeout_ms = 5000);

}  // namespace wm::rest
