#pragma once

// REST request routing for the control API every DCDB component exposes.
// Routes are registered as "METHOD /path/:param/..." patterns; ':name'
// segments capture path parameters. The router is transport-agnostic — the
// in-process API and the HTTP server (http_server.h) both dispatch through
// it, so on-demand operators can be triggered either way.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace wm::rest {

struct Request {
    std::string method;  // "GET", "POST", "PUT", "DELETE"
    std::string path;    // path component, no query string
    std::map<std::string, std::string> query;        // parsed query parameters
    std::map<std::string, std::string> path_params;  // ':name' captures
    std::string body;
};

struct Response {
    int status = 200;
    std::string body;
    std::string content_type = "application/json";

    static Response ok(std::string body) { return {200, std::move(body), "application/json"}; }
    static Response text(std::string body) { return {200, std::move(body), "text/plain"}; }
    static Response notFound(const std::string& what = "not found");
    static Response badRequest(const std::string& what);
    static Response error(const std::string& what);
};

using Handler = std::function<Response(const Request&)>;

class Router {
  public:
    /// Registers a handler for `method` + `pattern`. Pattern segments may be
    /// literals or ':name' captures. Later registrations win on exact
    /// duplicates. Returns false for malformed patterns.
    bool route(const std::string& method, const std::string& pattern, Handler handler);

    /// Dispatches a request; fills `path_params` on a match. Unmatched
    /// requests yield 404.
    Response dispatch(Request request) const;

    /// Parses "a=1&b=2" into a map (no URL decoding beyond '%xx' and '+').
    static std::map<std::string, std::string> parseQuery(const std::string& query);

    std::size_t routeCount() const;

  private:
    struct Route {
        std::string method;
        std::vector<std::string> segments;
        Handler handler;
    };

    mutable common::SharedMutex mutex_{"Router", common::LockRank::kRouter};
    std::vector<Route> routes_ WM_GUARDED_BY(mutex_);
};

/// Minimal JSON-ish escaping for string values embedded in responses.
std::string jsonEscape(const std::string& text);

}  // namespace wm::rest
