#include "rest/router.h"

#include <sstream>

#include "common/string_utils.h"

namespace wm::rest {

Response Response::notFound(const std::string& what) {
    return {404, "{\"error\":\"" + jsonEscape(what) + "\"}", "application/json"};
}

Response Response::badRequest(const std::string& what) {
    return {400, "{\"error\":\"" + jsonEscape(what) + "\"}", "application/json"};
}

Response Response::error(const std::string& what) {
    return {500, "{\"error\":\"" + jsonEscape(what) + "\"}", "application/json"};
}

bool Router::route(const std::string& method, const std::string& pattern, Handler handler) {
    if (method.empty() || pattern.empty() || pattern[0] != '/') return false;
    Route entry;
    entry.method = method;
    entry.segments = common::split(pattern, '/');
    entry.handler = std::move(handler);
    common::WriteLock lock(mutex_);
    routes_.push_back(std::move(entry));
    return true;
}

Response Router::dispatch(Request request) const {
    const auto segments = common::split(request.path, '/');
    // Resolve the handler under the shared lock, then invoke it outside so
    // handlers may register routes or dispatch recursively without deadlock.
    Handler handler;
    {
        common::ReadLock lock(mutex_);
        // Later routes win: iterate in reverse registration order.
        for (auto it = routes_.rbegin(); it != routes_.rend(); ++it) {
            const Route& route = *it;
            if (route.method != request.method) continue;
            if (route.segments.size() != segments.size()) continue;
            std::map<std::string, std::string> params;
            bool match = true;
            for (std::size_t i = 0; i < segments.size(); ++i) {
                const std::string& pat = route.segments[i];
                if (!pat.empty() && pat[0] == ':') {
                    params[pat.substr(1)] = segments[i];
                } else if (pat != segments[i]) {
                    match = false;
                    break;
                }
            }
            if (!match) continue;
            handler = route.handler;
            request.path_params = std::move(params);
            break;
        }
    }
    if (!handler) {
        return Response::notFound("no route for " + request.method + " " + request.path);
    }
    try {
        return handler(request);
    } catch (const std::exception& e) {
        return Response::error(e.what());
    }
}

std::map<std::string, std::string> Router::parseQuery(const std::string& query) {
    std::map<std::string, std::string> out;
    for (const auto& pair : common::split(query, '&')) {
        const std::size_t eq = pair.find('=');
        std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
        std::string value = eq == std::string::npos ? "" : pair.substr(eq + 1);
        auto decode = [](std::string& text) {
            std::string decoded;
            for (std::size_t i = 0; i < text.size(); ++i) {
                if (text[i] == '+') {
                    decoded.push_back(' ');
                } else if (text[i] == '%' && i + 2 < text.size()) {
                    decoded.push_back(static_cast<char>(
                        std::stoi(text.substr(i + 1, 2), nullptr, 16)));
                    i += 2;
                } else {
                    decoded.push_back(text[i]);
                }
            }
            text = decoded;
        };
        decode(key);
        decode(value);
        if (!key.empty()) out[key] = value;
    }
    return out;
}

std::size_t Router::routeCount() const {
    common::ReadLock lock(mutex_);
    return routes_.size();
}

std::string jsonEscape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace wm::rest
