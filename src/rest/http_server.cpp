#include "rest/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "common/fault.h"
#include "common/logging.h"
#include "common/string_utils.h"

namespace wm::rest {

namespace {

constexpr std::size_t kMaxRequestBytes = 1 << 20;  // 1 MiB

/// Reads until the full request (headers + Content-Length body) is buffered.
/// Returns false on timeout, overflow or connection error.
bool readRequest(int fd, std::string& raw, int timeout_ms) {
    char chunk[4096];
    std::size_t header_end = std::string::npos;
    std::size_t content_length = 0;
    for (;;) {
        if (header_end != std::string::npos &&
            raw.size() >= header_end + 4 + content_length) {
            return true;
        }
        struct pollfd pfd{fd, POLLIN, 0};
        const int rv = ::poll(&pfd, 1, timeout_ms);
        if (rv <= 0) return false;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) return false;
        raw.append(chunk, static_cast<std::size_t>(n));
        if (raw.size() > kMaxRequestBytes) return false;
        if (header_end == std::string::npos) {
            header_end = raw.find("\r\n\r\n");
            if (header_end != std::string::npos) {
                // Extract Content-Length, if present.
                const std::string headers = common::toLower(raw.substr(0, header_end));
                const std::size_t pos = headers.find("content-length:");
                if (pos != std::string::npos) {
                    try {
                        content_length = static_cast<std::size_t>(
                            std::stoul(headers.substr(pos + 15)));
                    } catch (...) {
                        return false;
                    }
                    if (content_length > kMaxRequestBytes) return false;
                }
            }
        }
    }
}

bool writeAll(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

const char* statusText(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 500: return "Internal Server Error";
        default: return "Unknown";
    }
}

}  // namespace

HttpServer::HttpServer(Router& router) : router_(router) {}

HttpServer::~HttpServer() {
    stop();
}

bool HttpServer::start(std::uint16_t port) {
    if (running_.load()) return false;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listen_fd_.store(fd);
    running_.store(true);
    acceptor_ = common::Thread([this] { acceptLoop(); }, "HttpServer.acceptor");
    WM_LOG(kInfo, "rest") << "HTTP server listening on 127.0.0.1:" << port_;
    return true;
}

void HttpServer::stop() {
    if (!running_.exchange(false)) return;
    // Closing the listening socket unblocks accept().
    const int fd = listen_fd_.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (acceptor_.joinable()) acceptor_.join();
    common::MutexLock lock(workers_mutex_);
    for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
    }
    workers_.clear();
}

void HttpServer::acceptLoop() {
    while (running_.load()) {
        const int listen_fd = listen_fd_.load();
        if (listen_fd < 0) return;
        sockaddr_in peer{};
        socklen_t len = sizeof(peer);
        const int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
        if (fd < 0) {
            if (!running_.load()) return;
            continue;
        }
        common::MutexLock lock(workers_mutex_);
        // Reap finished workers opportunistically to bound the vector.
        if (workers_.size() > 64) {
            for (auto& worker : workers_) {
                if (worker.joinable()) worker.join();
            }
            workers_.clear();
        }
        workers_.emplace_back([this, fd] { handleConnection(fd); },
                              "HttpServer.worker");
    }
}

void HttpServer::handleConnection(int fd) {
    std::string raw;
    Response response;
    if (!readRequest(fd, raw, 5000)) {
        ::close(fd);
        return;
    }
    // Fault point "rest.request": kDrop severs the connection without a
    // response (a crashed handler thread), kFail answers 500, kDelay stalls
    // the response like an overloaded server.
    bool fault_fail = false;
    if (const auto fault = common::fault::check("rest.request")) {
        switch (fault.action) {
            case common::fault::Action::kDrop:
                ::shutdown(fd, SHUT_RDWR);
                ::close(fd);
                return;
            case common::fault::Action::kFail:
                fault_fail = true;
                break;
            case common::fault::Action::kDelay:
                common::fault::applyDelay(fault.delay_ns);
                break;
        }
    }
    if (fault_fail) {
        response = Response::error("injected fault");
        std::ostringstream out;
        out << "HTTP/1.1 " << response.status << ' ' << statusText(response.status)
            << "\r\nContent-Type: " << response.content_type
            << "\r\nContent-Length: " << response.body.size()
            << "\r\nConnection: close\r\n\r\n"
            << response.body;
        writeAll(fd, out.str());
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
        return;
    }
    // Parse the request line: METHOD SP target SP version.
    const std::size_t line_end = raw.find("\r\n");
    const auto parts = common::split(raw.substr(0, line_end), ' ');
    if (parts.size() < 3) {
        response = Response::badRequest("malformed request line");
    } else {
        Request request;
        request.method = parts[0];
        std::string target = parts[1];
        const std::size_t qpos = target.find('?');
        if (qpos != std::string::npos) {
            request.query = Router::parseQuery(target.substr(qpos + 1));
            target = target.substr(0, qpos);
        }
        request.path = target;
        const std::size_t header_end = raw.find("\r\n\r\n");
        if (header_end != std::string::npos) request.body = raw.substr(header_end + 4);
        requests_.fetch_add(1, std::memory_order_relaxed);
        response = router_.dispatch(std::move(request));
    }
    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << ' ' << statusText(response.status) << "\r\n"
        << "Content-Type: " << response.content_type << "\r\n"
        << "Content-Length: " << response.body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << response.body;
    writeAll(fd, out.str());
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

HttpResult httpRequest(const std::string& host, std::uint16_t port,
                       const std::string& method, const std::string& target,
                       const std::string& body, int timeout_ms) {
    HttpResult result;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        result.error = "socket() failed";
        return result;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        result.error = "invalid host address";
        ::close(fd);
        return result;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
        result.error = "connect() failed";
        ::close(fd);
        return result;
    }
    std::ostringstream request;
    request << method << ' ' << target << " HTTP/1.1\r\n"
            << "Host: " << host << "\r\n"
            << "Content-Length: " << body.size() << "\r\n"
            << "Connection: close\r\n\r\n"
            << body;
    if (!writeAll(fd, request.str())) {
        result.error = "send() failed";
        ::close(fd);
        return result;
    }
    std::string raw;
    char chunk[4096];
    for (;;) {
        struct pollfd pfd{fd, POLLIN, 0};
        const int rv = ::poll(&pfd, 1, timeout_ms);
        if (rv <= 0) break;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t line_end = raw.find("\r\n");
    if (line_end == std::string::npos) {
        result.error = "malformed response";
        return result;
    }
    const auto parts = common::split(raw.substr(0, line_end), ' ');
    if (parts.size() < 2) {
        result.error = "malformed status line";
        return result;
    }
    try {
        result.status = std::stoi(parts[1]);
    } catch (...) {
        result.error = "malformed status code";
        return result;
    }
    const std::size_t header_end = raw.find("\r\n\r\n");
    if (header_end != std::string::npos) result.body = raw.substr(header_end + 4);
    result.ok = true;
    return result;
}

}  // namespace wm::rest
