#pragma once

// Crash-consistent snapshot files: the compaction counterpart of the WAL.
// A snapshot is written to "<path>.tmp" and atomically renamed over the
// final path, so a crash mid-write leaves the previous snapshot (or no
// snapshot) fully intact — never a half-written one. The file carries a
// magic, a format version chosen by the caller, the payload length and a
// CRC-32, all validated on read.
//
// Fault point "persist.snapshot_write" aborts the write before the rename
// (a crash mid-snapshot), leaving the previous state untouched.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wm::persist {

struct SnapshotData {
    std::uint32_t version = 0;
    std::string payload;
};

/// Atomically replaces the snapshot at `path`. Returns false on I/O errors
/// or an injected "persist.snapshot_write" fault; on failure any previous
/// snapshot at `path` is preserved.
bool writeSnapshot(const std::string& path, std::uint32_t version,
                   std::string_view payload);

/// Reads and validates a snapshot. Nullopt when the file is missing,
/// truncated, or fails its checksum.
std::optional<SnapshotData> readSnapshot(const std::string& path);

}  // namespace wm::persist
