#pragma once

// Crash-consistent write-ahead log. The log is an append-only sequence of
// framed records:
//
//   [u32 payload length][u32 crc32(payload)][payload bytes]
//
// Appends flush to the OS after every record, so a torn write — the daemon
// killed mid-append — can only leave an incomplete *final* frame. Replay
// walks the frames, validates each checksum, and truncates the file at the
// first incomplete or corrupt frame (the torn tail), after which the log is
// consistent again and new appends continue from the truncation point.
// Replaying the same log twice therefore always yields the same record
// sequence (the idempotence the recovery tests pin).
//
// WalWriter is not thread-safe: the owning component serialises access with
// its own lock (StorageBackend under kStorage, the Collect Agent quarantine
// under kCollectAgentQuarantine).
//
// Fault points (docs/RESILIENCE.md):
//   persist.wal_append  — kFail writes a deliberately torn partial frame and
//                         reports failure (a crash mid-write); kDrop skips
//                         the write entirely (a lost write); kDelay stalls.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace wm::persist {

struct WalReplayStats {
    /// Intact records handed to the callback.
    std::uint64_t records_applied = 0;
    /// True when a torn/corrupt tail was cut off.
    bool torn_tail_truncated = false;
    /// Bytes removed by the truncation.
    std::uint64_t truncated_bytes = 0;
    /// False only when the file exists but cannot be read or truncated
    /// (a missing file is a valid empty log: ok, 0 records).
    bool ok = true;
};

class WalWriter {
  public:
    WalWriter() = default;
    ~WalWriter();

    WalWriter(const WalWriter&) = delete;
    WalWriter& operator=(const WalWriter&) = delete;

    /// Opens `path` for appending, creating it if absent. Replay the file
    /// *before* opening a writer on it — truncating a torn tail must happen
    /// while no writer holds an append offset past it.
    bool open(const std::string& path);
    bool isOpen() const { return file_ != nullptr; }
    const std::string& path() const { return path_; }
    void close();

    /// Appends one framed record and flushes it to the OS. Returns false on
    /// an I/O error or an injected "persist.wal_append" fault; the caller
    /// must treat the logged operation as not durable (reject the insert).
    bool append(std::string_view payload);

    /// Truncates the log to zero length after a snapshot compaction; the
    /// writer stays open and appends continue on the empty log.
    bool reset();

    std::uint64_t recordsAppended() const { return records_; }
    std::uint64_t appendFailures() const { return failures_; }

  private:
    std::FILE* file_ = nullptr;
    std::string path_;
    std::uint64_t records_ = 0;
    std::uint64_t failures_ = 0;
};

using WalRecordFn = std::function<void(std::string_view payload)>;

/// Replays the log at `path`, invoking `fn` once per intact record in append
/// order, and truncates any torn tail in place. A missing file is an empty
/// log. Safe to call repeatedly; a replayed log replays identically.
WalReplayStats replayWal(const std::string& path, const WalRecordFn& fn);

}  // namespace wm::persist
