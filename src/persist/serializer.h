#pragma once

// Portable binary encoding for WAL records and snapshot payloads. Fixed-width
// little-endian integers and IEEE-754 doubles, length-prefixed strings; no
// varints, no alignment, no host-endianness leakage, so a snapshot written on
// one machine replays bit-identically on another. The Decoder is fully
// bounds-checked: any read past the end (or a malformed length) latches a
// failure flag instead of throwing, which lets replay code treat a corrupt
// record as "stop and report" rather than unwinding mid-apply.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wm::persist {

/// Append-only encoder; the buffer is a plain byte string so payloads drop
/// straight into WalWriter::append / writeSnapshot.
class Encoder {
  public:
    void putU8(std::uint8_t value);
    void putU32(std::uint32_t value);
    void putU64(std::uint64_t value);
    void putI64(std::int64_t value);
    void putF64(double value);
    void putBool(bool value);
    /// Length-prefixed (u32) byte string.
    void putString(std::string_view value);
    /// std::size_t as u64 (portable across 32/64-bit size_t).
    void putSize(std::size_t value);

    const std::string& data() const { return buffer_; }
    std::string take() { return std::move(buffer_); }
    std::size_t size() const { return buffer_.size(); }

  private:
    std::string buffer_;
};

/// Bounds-checked reader over an encoded buffer. Every get*() returns false
/// (and latches ok() == false) on underflow; values read after a failure are
/// zero/empty. Callers check ok() once at the end of a record.
class Decoder {
  public:
    explicit Decoder(std::string_view data) : data_(data) {}

    bool getU8(std::uint8_t* out);
    bool getU32(std::uint32_t* out);
    bool getU64(std::uint64_t* out);
    bool getI64(std::int64_t* out);
    bool getF64(double* out);
    bool getBool(bool* out);
    bool getString(std::string* out);
    bool getSize(std::size_t* out);

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    bool take(std::size_t n, const char** out);

    std::string_view data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace wm::persist
