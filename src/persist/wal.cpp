#include "persist/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "persist/checksum.h"
#include "persist/serializer.h"

namespace wm::persist {

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

void encodeFrameHeader(std::string* out, std::uint32_t length, std::uint32_t crc) {
    Encoder encoder;
    encoder.putU32(length);
    encoder.putU32(crc);
    *out = encoder.take();
}

}  // namespace

WalWriter::~WalWriter() {
    close();
}

bool WalWriter::open(const std::string& path) {
    close();
    std::FILE* file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
        WM_LOG(kError, "persist") << "cannot open WAL " << path << ": "
                                  << std::strerror(errno);
        return false;
    }
    file_ = file;
    path_ = path;
    return true;
}

void WalWriter::close() {
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool WalWriter::append(std::string_view payload) {
    if (file_ == nullptr) return false;
    const std::uint32_t crc = crc32(payload);
    std::string header;
    encodeFrameHeader(&header, static_cast<std::uint32_t>(payload.size()), crc);
    if (const auto fault = common::fault::check("persist.wal_append")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else if (fault.action == common::fault::Action::kFail) {
            // Simulated crash mid-write: the frame header plus half the
            // payload reach the file, then the process "dies". Replay must
            // recognise and truncate this torn tail.
            std::fwrite(header.data(), 1, header.size(), file_);
            std::fwrite(payload.data(), 1, payload.size() / 2, file_);
            std::fflush(file_);
            ++failures_;
            return false;
        } else {  // kDrop: the write is lost before reaching the file
            ++failures_;
            return false;
        }
    }
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size() ||
        std::fflush(file_) != 0) {
        WM_LOG(kError, "persist") << "WAL append failed on " << path_ << ": "
                                  << std::strerror(errno);
        ++failures_;
        return false;
    }
    ++records_;
    return true;
}

bool WalWriter::reset() {
    if (file_ == nullptr) return false;
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
        WM_LOG(kError, "persist") << "cannot reset WAL " << path_ << ": "
                                  << std::strerror(errno);
        return false;
    }
    return true;
}

WalReplayStats replayWal(const std::string& path, const WalRecordFn& fn) {
    WalReplayStats stats;
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return stats;  // missing file: a valid empty log

    long good_offset = 0;
    std::string payload;
    for (;;) {
        unsigned char header[kFrameHeaderBytes];
        const std::size_t header_read = std::fread(header, 1, sizeof(header), file);
        if (header_read == 0) break;          // clean end of log
        if (header_read < sizeof(header)) {   // torn mid-header
            stats.torn_tail_truncated = true;
            break;
        }
        std::uint32_t length = 0;
        std::uint32_t crc = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
            crc |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
        }
        payload.resize(length);
        const std::size_t payload_read =
            length == 0 ? 0 : std::fread(payload.data(), 1, length, file);
        if (payload_read < length || crc32(payload) != crc) {
            // Torn mid-payload, or a corrupt record: everything from this
            // frame on is unusable.
            stats.torn_tail_truncated = true;
            break;
        }
        fn(std::string_view(payload.data(), payload.size()));
        ++stats.records_applied;
        good_offset = std::ftell(file);
    }
    std::fseek(file, 0, SEEK_END);
    const long end_offset = std::ftell(file);
    std::fclose(file);

    if (stats.torn_tail_truncated && end_offset > good_offset) {
        stats.truncated_bytes = static_cast<std::uint64_t>(end_offset - good_offset);
        if (::truncate(path.c_str(), good_offset) != 0) {
            WM_LOG(kError, "persist") << "cannot truncate torn WAL tail of " << path
                                      << ": " << std::strerror(errno);
            stats.ok = false;
            return stats;
        }
        WM_LOG(kWarning, "persist")
            << "WAL " << path << ": truncated torn tail (" << stats.truncated_bytes
            << " bytes) after " << stats.records_applied << " intact record(s)";
    }
    return stats;
}

}  // namespace wm::persist
