#include "persist/serializer.h"

#include <cstring>

namespace wm::persist {

namespace {

template <typename T>
void putLittleEndian(std::string& buffer, T value) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        buffer.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
    }
}

template <typename T>
T readLittleEndian(const char* bytes) {
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(static_cast<unsigned char>(bytes[i])) << (8 * i);
    }
    return value;
}

}  // namespace

void Encoder::putU8(std::uint8_t value) {
    buffer_.push_back(static_cast<char>(value));
}

void Encoder::putU32(std::uint32_t value) {
    putLittleEndian(buffer_, value);
}

void Encoder::putU64(std::uint64_t value) {
    putLittleEndian(buffer_, value);
}

void Encoder::putI64(std::int64_t value) {
    putLittleEndian(buffer_, static_cast<std::uint64_t>(value));
}

void Encoder::putF64(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    putLittleEndian(buffer_, bits);
}

void Encoder::putBool(bool value) {
    putU8(value ? 1 : 0);
}

void Encoder::putString(std::string_view value) {
    putU32(static_cast<std::uint32_t>(value.size()));
    buffer_.append(value.data(), value.size());
}

void Encoder::putSize(std::size_t value) {
    putU64(static_cast<std::uint64_t>(value));
}

bool Decoder::take(std::size_t n, const char** out) {
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return false;
    }
    *out = data_.data() + pos_;
    pos_ += n;
    return true;
}

bool Decoder::getU8(std::uint8_t* out) {
    const char* bytes = nullptr;
    *out = 0;
    if (!take(1, &bytes)) return false;
    *out = static_cast<std::uint8_t>(static_cast<unsigned char>(bytes[0]));
    return true;
}

bool Decoder::getU32(std::uint32_t* out) {
    const char* bytes = nullptr;
    *out = 0;
    if (!take(4, &bytes)) return false;
    *out = readLittleEndian<std::uint32_t>(bytes);
    return true;
}

bool Decoder::getU64(std::uint64_t* out) {
    const char* bytes = nullptr;
    *out = 0;
    if (!take(8, &bytes)) return false;
    *out = readLittleEndian<std::uint64_t>(bytes);
    return true;
}

bool Decoder::getI64(std::int64_t* out) {
    std::uint64_t raw = 0;
    if (!getU64(&raw)) {
        *out = 0;
        return false;
    }
    *out = static_cast<std::int64_t>(raw);
    return true;
}

bool Decoder::getF64(double* out) {
    std::uint64_t bits = 0;
    if (!getU64(&bits)) {
        *out = 0.0;
        return false;
    }
    std::memcpy(out, &bits, sizeof(bits));
    return true;
}

bool Decoder::getBool(bool* out) {
    std::uint8_t raw = 0;
    if (!getU8(&raw)) {
        *out = false;
        return false;
    }
    *out = raw != 0;
    return true;
}

bool Decoder::getString(std::string* out) {
    out->clear();
    std::uint32_t length = 0;
    if (!getU32(&length)) return false;
    const char* bytes = nullptr;
    if (!take(length, &bytes)) return false;
    out->assign(bytes, length);
    return true;
}

bool Decoder::getSize(std::size_t* out) {
    std::uint64_t raw = 0;
    if (!getU64(&raw)) {
        *out = 0;
        return false;
    }
    *out = static_cast<std::size_t>(raw);
    return true;
}

}  // namespace wm::persist
