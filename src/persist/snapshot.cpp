#include "persist/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "persist/checksum.h"
#include "persist/serializer.h"

namespace wm::persist {

namespace {

// "WMSNAP" + a framing revision; bump only when the header layout changes
// (payload versioning is the caller's `version` field).
constexpr char kMagic[8] = {'W', 'M', 'S', 'N', 'A', 'P', '0', '1'};

}  // namespace

bool writeSnapshot(const std::string& path, std::uint32_t version,
                   std::string_view payload) {
    Encoder header;
    header.putU32(version);
    header.putU64(payload.size());
    header.putU32(crc32(payload));

    const std::string tmp_path = path + ".tmp";
    std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
    if (file == nullptr) {
        WM_LOG(kError, "persist") << "cannot open snapshot " << tmp_path << ": "
                                  << std::strerror(errno);
        return false;
    }
    const bool written =
        std::fwrite(kMagic, 1, sizeof(kMagic), file) == sizeof(kMagic) &&
        std::fwrite(header.data().data(), 1, header.size(), file) == header.size() &&
        std::fwrite(payload.data(), 1, payload.size(), file) == payload.size() &&
        std::fflush(file) == 0;
    std::fclose(file);
    if (!written) {
        WM_LOG(kError, "persist") << "snapshot write failed on " << tmp_path;
        std::remove(tmp_path.c_str());
        return false;
    }
    if (const auto fault = common::fault::check("persist.snapshot_write")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else {
            // Simulated crash before the atomic rename: the previous
            // snapshot (if any) stays authoritative.
            std::remove(tmp_path.c_str());
            return false;
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        WM_LOG(kError, "persist") << "cannot rename snapshot into place at " << path
                                  << ": " << std::strerror(errno);
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

std::optional<SnapshotData> readSnapshot(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return std::nullopt;

    char magic[sizeof(kMagic)];
    unsigned char header[16];  // u32 version + u64 length + u32 crc
    SnapshotData data;
    bool valid = std::fread(magic, 1, sizeof(magic), file) == sizeof(magic) &&
                 std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
                 std::fread(header, 1, sizeof(header), file) == sizeof(header);
    std::uint64_t length = 0;
    if (valid) {
        for (std::size_t i = 0; i < 4; ++i) {
            data.version |= static_cast<std::uint32_t>(header[i]) << (8 * i);
        }
        for (std::size_t i = 0; i < 8; ++i) {
            length |= static_cast<std::uint64_t>(header[4 + i]) << (8 * i);
        }
        std::uint32_t expected_crc = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            expected_crc |= static_cast<std::uint32_t>(header[12 + i]) << (8 * i);
        }
        data.payload.resize(static_cast<std::size_t>(length));
        valid = std::fread(data.payload.data(), 1, data.payload.size(), file) ==
                    data.payload.size() &&
                crc32(data.payload) == expected_crc;
        // Trailing bytes mean the file is not a snapshot this code wrote.
        if (valid && std::fgetc(file) != EOF) valid = false;
    }
    std::fclose(file);
    if (!valid) {
        WM_LOG(kWarning, "persist") << "snapshot " << path
                                    << " is invalid or corrupt; ignoring it";
        return std::nullopt;
    }
    return data;
}

}  // namespace wm::persist
