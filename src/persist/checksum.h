#pragma once

// CRC-32 (IEEE 802.3 polynomial, reflected) for the persistence layer's
// record framing. Every WAL record and snapshot payload carries its
// checksum so replay can distinguish a torn tail (a crash mid-write) from
// silent corruption — both are detected, only the former is recoverable by
// truncation.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wm::persist {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental updates:
/// crc32(ab) == crc32(b, crc32(a)).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace wm::persist
