#pragma once

// Healthchecker operator plugin: the paper's running example (Section III-B,
// the "healthy" output of a compute-node unit). Evaluates range checks over
// the latest readings of the unit's inputs and emits 1 (healthy) or 0.
//
// Plugin-specific configuration keys (repeatable `check` blocks):
//   check <sensor-name> {
//       min <value>      lower bound (optional)
//       max <value>      upper bound (optional)
//   }
// A unit is healthy when every configured check passes for every matching
// input sensor. Inputs without a matching check are ignored.

#include <optional>
#include <string>
#include <vector>

#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

struct HealthCheck {
    std::string sensor_name;  // matched against the input's leaf name
    std::optional<double> min;
    std::optional<double> max;
};

class HealthcheckerOperator final : public core::OperatorTemplate {
  public:
    HealthcheckerOperator(core::OperatorConfig config, core::OperatorContext context,
                          std::vector<HealthCheck> checks)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          checks_(std::move(checks)) {}

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    std::vector<HealthCheck> checks_;
};

std::vector<core::OperatorPtr> configureHealthchecker(const common::ConfigNode& node,
                                                      const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateHealthchecker(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
