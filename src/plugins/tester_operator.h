#pragma once

// The tester operator plugin of the Fig. 5 overhead experiment: at each
// computation interval it performs a configurable number of queries over the
// input sensors of its units, exercising the Query Engine under a controlled
// load. The output sensor (when configured) reports the number of readings
// retrieved, so the load itself is observable as a time series.
//
// Plugin-specific configuration keys:
//   queries   <n>      queries per computation interval (default 10)
//
// The query temporal range and mode come from the common `window` and
// `queryMode` keys.

#include "core/operator.h"
#include "core/operator_manager.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

class TesterOperator final : public core::OperatorTemplate {
  public:
    TesterOperator(core::OperatorConfig config, core::OperatorContext context,
                   std::size_t num_queries)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          num_queries_(num_queries) {}

    std::uint64_t totalReadingsRetrieved() const { return readings_retrieved_.load(); }

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    std::size_t num_queries_;
    std::atomic<std::uint64_t> readings_retrieved_{0};
};

/// Configurator for the Operator Manager's plugin registry.
std::vector<core::OperatorPtr> configureTester(const common::ConfigNode& node,
                                               const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateTester(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
