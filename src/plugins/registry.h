#pragma once

// Registration of all built-in operator plugins with an Operator Manager.
// DCDB loads plugins as shared objects at runtime; this reproduction links
// them statically and registers their configurators by name, preserving the
// dynamic-instantiation workflow (configuration blocks select plugins by
// name at runtime).

#include "core/operator_manager.h"

namespace wm::plugins {

/// Registers every built-in plugin: tester, aggregator, smoothing,
/// perfmetrics, healthchecker, regressor, persyst, clustering, controller,
/// filesink.
void registerBuiltinPlugins(core::OperatorManager& manager);

}  // namespace wm::plugins
