#pragma once

// Registration of all built-in operator plugins with an Operator Manager.
// DCDB loads plugins as shared objects at runtime; this reproduction links
// them statically and registers their configurators by name, preserving the
// dynamic-instantiation workflow (configuration blocks select plugins by
// name at runtime).

#include <map>
#include <string>

#include "core/operator_manager.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

/// Registers every built-in plugin: tester, aggregator, smoothing,
/// perfmetrics, healthchecker, regressor, persyst, clustering, controller,
/// filesink.
void registerBuiltinPlugins(core::OperatorManager& manager);

/// The configurators of all built-in plugins, keyed by plugin name — the
/// single source of truth behind registerBuiltinPlugins().
const std::map<std::string, core::ConfiguratorFn>& builtinConfigurators();

/// Static-analysis contributions of the built-in plugins (wm-check): the
/// validate() hook and, where the configurator synthesizes patterns, the
/// effective-config function. Keyed by plugin name; every plugin in
/// builtinConfigurators() has an entry.
const std::map<std::string, PluginStaticInfo>& builtinPluginStaticInfo();

}  // namespace wm::plugins
