#include "plugins/clustering_operator.h"

#include <algorithm>

#include "analysis/diagnostic.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "persist/serializer.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

analytics::Vector ClusteringOperator::buildPoint(const core::Unit& unit,
                                                 common::TimestampNs t) const {
    analytics::Vector point;
    point.reserve(unit.inputs.size());
    for (const auto& topic : unit.inputs) {
        const sensors::ReadingVector window = queryInput(topic, t);
        if (window.empty()) return {};
        if (settings_.rate_sensors.count(common::pathLeaf(topic)) > 0) {
            // Monotonic counter: convert to a rate per second over the window.
            if (window.size() < 2) return {};
            const double span_sec =
                static_cast<double>(window.back().timestamp - window.front().timestamp) /
                static_cast<double>(common::kNsPerSec);
            if (span_sec <= 0.0) return {};
            point.push_back((window.back().value - window.front().value) / span_sec);
        } else {
            double sum = 0.0;
            for (const auto& reading : window) sum += reading.value;
            point.push_back(sum / static_cast<double>(window.size()));
        }
    }
    return point;
}

void ClusteringOperator::computeAllLocked(common::TimestampNs t) {
    // Phase 1: one point per unit (units with missing data are skipped).
    std::vector<analytics::Vector> points;
    std::vector<core::Unit> snapshot = units();
    {
        common::MutexLock lock(points_mutex_);
        last_points_.clear();
        for (const auto& unit : snapshot) {
            analytics::Vector point = buildPoint(unit, t);
            if (point.empty()) continue;
            points.push_back(point);
            last_points_[unit.name] = std::move(point);
        }
    }
    // Phase 2: fit the mixture over all units' points, then robust-refine:
    // provisionally trim tail points and refit on the inliers so that a
    // genuine anomaly cannot inflate its own cluster's covariance.
    if (points.size() >= 3) {
        analytics::BgmmParams params;
        params.max_components = settings_.max_components;
        params.seed = settings_.seed;
        if (!model_.fit(points, params)) {
            WM_LOG(kWarning, "clustering")
                << config_.name << ": mixture fit failed on " << points.size() << " points";
        }
        for (std::size_t pass = 0; pass < settings_.refine_passes && model_.trained();
             ++pass) {
            std::vector<analytics::Vector> inliers;
            inliers.reserve(points.size());
            for (const auto& point : points) {
                if (model_.maxComponentDensity(point) >= settings_.trim_threshold) {
                    inliers.push_back(point);
                }
            }
            if (inliers.size() == points.size() || inliers.size() < 3) break;
            analytics::BayesianGmm refined;
            if (!refined.fit(inliers, params)) break;
            model_ = std::move(refined);
        }
    }
    // Phase 3: label each unit through the regular per-unit path (keeps
    // publication, error isolation and statistics uniform).
    core::OperatorTemplate::computeAllLocked(t);
}

std::vector<core::SensorValue> ClusteringOperator::compute(const core::Unit& unit,
                                                           common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    if (!model_.trained()) return out;
    analytics::Vector point = lastPointOf(unit.name);
    if (point.empty()) point = buildPoint(unit, t);
    if (point.empty()) return out;
    double label;
    if (model_.isOutlier(point, settings_.outlier_threshold)) {
        label = -1.0;
    } else {
        label = static_cast<double>(model_.predictLabel(point));
    }
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, label}});
    }
    return out;
}

analytics::Vector ClusteringOperator::lastPointOf(const std::string& unit_name) const {
    common::MutexLock lock(points_mutex_);
    auto it = last_points_.find(unit_name);
    return it == last_points_.end() ? analytics::Vector{} : it->second;
}

namespace {

/// Fingerprint of the knobs that shape the clustering model. A checkpoint
/// taken under different settings must not be restored: the fitted mixture
/// would not match what the current configuration would produce.
void encodeClusteringFingerprint(persist::Encoder& encoder,
                                 const ClusteringSettings& settings) {
    encoder.putSize(settings.max_components);
    encoder.putF64(settings.outlier_threshold);
    encoder.putSize(settings.refine_passes);
    encoder.putF64(settings.trim_threshold);
    encoder.putU64(settings.seed);
    encoder.putSize(settings.rate_sensors.size());
    for (const auto& sensor : settings.rate_sensors) encoder.putString(sensor);
}

}  // namespace

bool ClusteringOperator::serializeState(persist::Encoder& encoder) const {
    persist::Encoder fingerprint;
    encodeClusteringFingerprint(fingerprint, settings_);
    encoder.putString(fingerprint.take());
    model_.serialize(encoder);
    common::MutexLock lock(points_mutex_);
    encoder.putSize(last_points_.size());
    for (const auto& [unit_name, point] : last_points_) {
        encoder.putString(unit_name);
        encoder.putSize(point.size());
        for (double x : point) encoder.putF64(x);
    }
    return true;
}

bool ClusteringOperator::deserializeState(persist::Decoder& decoder) {
    persist::Encoder expected;
    encodeClusteringFingerprint(expected, settings_);
    std::string fingerprint;
    decoder.getString(&fingerprint);
    if (!decoder.ok() || fingerprint != expected.take()) return false;
    analytics::BayesianGmm model;
    if (!model.deserialize(decoder)) return false;
    std::size_t count = 0;
    decoder.getSize(&count);
    std::map<std::string, analytics::Vector> points;
    for (std::size_t i = 0; i < count && decoder.ok(); ++i) {
        std::string unit_name;
        std::size_t dim = 0;
        decoder.getString(&unit_name);
        decoder.getSize(&dim);
        analytics::Vector point(decoder.ok() ? dim : 0, 0.0);
        for (double& x : point) decoder.getF64(&x);
        points[unit_name] = std::move(point);
    }
    if (!decoder.ok()) return false;
    model_ = std::move(model);
    common::MutexLock lock(points_mutex_);
    last_points_ = std::move(points);
    return true;
}

std::vector<core::OperatorPtr> configureClustering(const common::ConfigNode& node,
                                                   const core::OperatorContext& context) {
    return configureStandard(
        node, context, "clustering",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            ClusteringSettings settings;
            settings.max_components =
                static_cast<std::size_t>(n.getInt("maxComponents", 10));
            settings.outlier_threshold = n.getDouble("outlierThreshold", 1e-3);
            settings.refine_passes = static_cast<std::size_t>(n.getInt("refinePasses", 1));
            settings.trim_threshold = n.getDouble("trimThreshold", 0.05);
            settings.seed = static_cast<std::uint64_t>(n.getInt("seed", 42));
            const auto rates = n.childrenOf("rates");
            if (!rates.empty()) {
                settings.rate_sensors.clear();
                for (const auto* rate : rates) settings.rate_sensors.insert(rate->value());
            }
            return std::make_shared<ClusteringOperator>(config, ctx, std::move(settings));
        });
}

void validateClustering(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "clustering");
    for (const char* key : {"maxComponents", "refinePasses"}) {
        const auto* child = node.child(key);
        if (child != nullptr && node.getInt(key, 1) <= 0) {
            sink.error("WM0404", std::string("'") + key + "' must be positive",
                       child->line(), child->column(), subject);
        }
    }
    for (const char* key : {"outlierThreshold", "trimThreshold"}) {
        const auto* child = node.child(key);
        if (child != nullptr && node.getDouble(key, 0.5) <= 0.0) {
            sink.error("WM0404", std::string("'") + key + "' must be positive",
                       child->line(), child->column(), subject);
        }
    }
}

PluginCostModel clusteringCost(const common::ConfigNode& node, std::size_t units,
                               std::size_t inputs) {
    PluginCostModel cost;
    const auto components = static_cast<std::size_t>(
        std::max<std::int64_t>(node.getInt("maxComponents", 10), 1));
    const std::size_t dims =
        units > 0 ? std::max<std::size_t>(inputs / units, 1)
                  : std::max<std::size_t>(inputs, 1);
    // One feature point per unit plus the fitted mixture (mean + covariance
    // + weight/precision scalars per component).
    cost.state_bytes = units * dims * sizeof(double) +
                       components * (dims * dims + dims + 2) * sizeof(double);
    cost.ns_per_reading = 100.0;
    return cost;
}

}  // namespace wm::plugins
