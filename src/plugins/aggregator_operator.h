#pragma once

// Aggregator operator plugin: windowed reductions over unit inputs. The
// general-purpose workhorse the paper describes for metric aggregation
// (Wintermute's production deployment on CooLMUC-3 performs exactly this).
//
// Plugin-specific configuration keys:
//   operation  average|sum|minimum|maximum|median|quantile  (default average)
//   quantile   <q in [0,1]>     only for operation=quantile (default 0.5)
//   delta      true|false       difference monotonic counters first

#include <string>

#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

enum class AggregationKind {
    kAverage,
    kSum,
    kMinimum,
    kMaximum,
    kMedian,
    kQuantile,
};

AggregationKind aggregationFromName(const std::string& name);

class AggregatorOperator final : public core::OperatorTemplate {
  public:
    AggregatorOperator(core::OperatorConfig config, core::OperatorContext context,
                       AggregationKind kind, double quantile, bool delta)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          kind_(kind),
          quantile_(quantile),
          delta_(delta) {}

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    AggregationKind kind_;
    double quantile_;
    bool delta_;
};

std::vector<core::OperatorPtr> configureAggregator(const common::ConfigNode& node,
                                                   const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateAggregator(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
