#pragma once

// Classifier operator plugin: application fingerprinting (paper Section
// II-A — "optimizing management decisions by predicting the behavior of
// user jobs"). Statistical features over the unit's input sensors feed a
// random-forest classifier; ground-truth class ids come from a designated
// label sensor during the training phase (fed by the job catalogue in a
// production deployment, or by a teaching run). Once trained, the operator
// emits the predicted class id on the unit's first output sensor and the
// prediction confidence (majority vote share) on the second, when present.
//
// Plugin-specific configuration keys:
//   labelSensor      <name>   leaf name of the input carrying class ids
//                             (default "app-label"); excluded from features
//   trainingSamples  <n>      training-set size (default 2000)
//   trees            <n>      forest size (default 32)
//   maxDepth         <n>      tree depth cap (default 12)
//   seed             <n>      RNG seed (default 42)
//   counters         <name> ... repeatable: monotonic inputs (differenced)

#include <map>
#include <set>
#include <string>

#include "analytics/classifier.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

struct ClassifierSettings {
    std::string label_sensor = "app-label";
    std::size_t training_samples = 2000;
    analytics::ClassifierForestParams forest;
    std::set<std::string> counter_names = {"cpu-cycles", "instructions", "cache-misses",
                                           "vector-ops", "branch-misses", "col_idle"};
};

class ClassifierOperator final : public core::OperatorTemplate {
  public:
    ClassifierOperator(core::OperatorConfig config, core::OperatorContext context,
                       ClassifierSettings settings)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          settings_(std::move(settings)) {}

    bool modelTrained() const { return forest_.trained(); }
    std::size_t trainingSetSize() const { return training_features_.size(); }
    double oobAccuracy() const { return forest_.oobAccuracy(); }

    /// Forces training on the samples accumulated so far.
    bool trainNow();

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

    /// Checkpoints the training buffers and the fitted forest so the
    /// fingerprinting model survives a host restart without re-teaching.
    bool serializeState(persist::Encoder& encoder) const override;
    bool deserializeState(persist::Decoder& decoder) override;

  private:
    std::vector<double> buildFeatures(const core::Unit& unit, common::TimestampNs t) const;
    std::optional<std::size_t> currentLabel(const core::Unit& unit) const;

    ClassifierSettings settings_;
    std::vector<std::vector<double>> training_features_;
    std::vector<std::size_t> training_labels_;
    analytics::RandomForestClassifier forest_;
};

std::vector<core::OperatorPtr> configureClassifier(const common::ConfigNode& node,
                                                   const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateClassifier(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

struct PluginCostModel;

/// Capacity hook (wm-check): predicts the training-buffer and forest
/// footprint from the configured trainingSamples/trees/maxDepth.
PluginCostModel classifierCost(const common::ConfigNode& node, std::size_t units,
                               std::size_t inputs);

}  // namespace wm::plugins
