#include "plugins/filesink_operator.h"

#include "analysis/diagnostic.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

FilesinkOperator::FilesinkOperator(core::OperatorConfig config,
                                   core::OperatorContext context, std::string path,
                                   bool auto_flush)
    : core::OperatorTemplate(std::move(config), std::move(context)),
      auto_flush_(auto_flush) {
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
        WM_LOG(kError, "filesink") << config_.name << ": cannot open " << path;
    } else if (out_.tellp() == 0) {
        out_ << "topic,timestamp,value\n";
    }
}

std::vector<core::SensorValue> FilesinkOperator::compute(const core::Unit& unit,
                                                         common::TimestampNs t) {
    if (!out_.is_open()) return {};
    for (const auto& topic : unit.inputs) {
        const common::TimestampNs watermark =
            last_written_.count(topic) ? last_written_[topic] : -1;
        for (const auto& reading : queryInput(topic, t)) {
            if (reading.timestamp <= watermark) continue;
            out_ << topic << ',' << reading.timestamp << ',' << reading.value << '\n';
            ++rows_written_;
            last_written_[topic] = reading.timestamp;
        }
    }
    if (auto_flush_) out_.flush();
    return {};  // a sink has no sensor outputs
}

common::ConfigNode filesinkPatchedNode(const common::ConfigNode& node) {
    // Sinks have no output sensors; synthesise a unit template from the
    // inputs alone by anchoring units at the inputs' own level.
    common::ConfigNode patched = node;
    core::OperatorConfig probe = core::parseOperatorConfig(node, "filesink");
    if (probe.output_patterns.empty() && !probe.input_patterns.empty()) {
        // Anchor one unit at each node matched by the first input pattern;
        // for an absolute first input, anchor a single unit at its parent.
        const auto expr = core::parsePattern(probe.input_patterns.front());
        if (expr) {
            auto& output_block = patched.addChild("output");
            if (expr->anchor == core::LevelAnchor::kAbsolute) {
                output_block.addChild(
                    "sensor", common::pathJoin(common::pathParent(expr->sensor_name),
                                               "_filesink"));
            } else {
                core::PatternExpression out_expr = *expr;
                out_expr.sensor_name = "_filesink";
                output_block.addChild("sensor", out_expr.toString());
            }
        }
    }
    return patched;
}

std::vector<core::OperatorPtr> configureFilesink(const common::ConfigNode& node,
                                                 const core::OperatorContext& context) {
    const common::ConfigNode patched = filesinkPatchedNode(node);
    const std::string path = node.getString("path");
    const bool auto_flush = node.getBool("autoFlush", false);
    if (path.empty()) {
        WM_LOG(kError, "filesink") << "missing 'path' configuration key";
        return {};
    }
    return configureStandard(
        patched, context, "filesink",
        [path, auto_flush](const core::OperatorConfig& config,
                           const core::OperatorContext& ctx, const common::ConfigNode&) {
            core::OperatorConfig adjusted = config;
            adjusted.publish_outputs = false;  // the synthetic output is never emitted
            return std::make_shared<FilesinkOperator>(adjusted, ctx, path, auto_flush);
        });
}

void validateFilesink(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "filesink");
    if (node.getString("path").empty()) {
        sink.error("WM0404", "missing 'path' configuration key; the sink is rejected",
                   node.line(), node.column(), subject);
    }
}

}  // namespace wm::plugins
