#include "plugins/persyst_operator.h"

#include "analysis/diagnostic.h"
#include "analytics/stats.h"
#include "common/logging.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

std::vector<core::SensorValue> PersystOperator::compute(const core::Unit& unit,
                                                        common::TimestampNs t) {
    // One sample per core: the mean of the metric's readings in the window
    // (falls back to the latest reading when only one is available).
    std::vector<double> values;
    values.reserve(unit.inputs.size());
    for (const auto& topic : unit.inputs) {
        const sensors::ReadingVector window = queryInput(topic, t);
        if (window.empty()) continue;
        double sum = 0.0;
        for (const auto& reading : window) sum += reading.value;
        values.push_back(sum / static_cast<double>(window.size()));
    }
    std::vector<core::SensorValue> out;
    if (values.empty()) return out;
    const double mean = analytics::mean(values).value_or(0.0);
    const std::vector<double> deciles = analytics::deciles(std::move(values));
    const std::size_t n = std::min(deciles.size(), unit.outputs.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back({unit.outputs[i], {t, deciles[i]}});
    }
    if (unit.outputs.size() > deciles.size()) {
        out.push_back({unit.outputs[deciles.size()], {t, mean}});
    }
    return out;
}

core::OperatorConfig persystEffectiveConfig(const common::ConfigNode& node) {
    core::OperatorConfig config = core::parseOperatorConfig(node, "persyst");
    const std::string metric = node.getString("metric", "cpi");

    // Default input pattern: the metric on every CPU-level node.
    if (config.input_patterns.empty()) {
        config.input_patterns.push_back("<bottomup, filter cpu>" + metric);
    }
    // Outputs: the 11 deciles of the metric (<metric>-dec0 ... -dec10) plus
    // the job-level mean (<metric>-avg), the statistical indicators of
    // Section VI-C.
    config.output_patterns.clear();
    for (int i = 0; i <= 10; ++i) {
        config.output_patterns.push_back("<bottomup>" + metric + "-dec" + std::to_string(i));
    }
    config.output_patterns.push_back("<bottomup>" + metric + "-avg");
    return config;
}

std::vector<core::OperatorPtr> configurePersyst(const common::ConfigNode& node,
                                                const core::OperatorContext& context) {
    std::vector<core::OperatorPtr> out;
    const core::OperatorConfig config = persystEffectiveConfig(node);
    const std::string metric = node.getString("metric", "cpi");
    const auto unit_template =
        core::makeUnitTemplate(config.input_patterns, config.output_patterns);
    if (!unit_template) {
        WM_LOG(kError, "wintermute") << "persyst/" << config.name
                                     << ": malformed pattern expression";
        return out;
    }
    out.push_back(
        std::make_shared<PersystOperator>(config, context, *unit_template, metric));
    return out;
}

void validatePersyst(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "persyst");
    if (const auto* metric = node.child("metric")) {
        if (metric->value().empty()) {
            sink.error("WM0404", "'metric' must not be empty", metric->line(),
                       metric->column(), subject);
        }
    }
    // Explicit output patterns are discarded: persyst always synthesizes the
    // decile + mean outputs from the metric name.
    if (const auto* output = node.child("output")) {
        sink.warning("WM0405",
                     "explicit 'output' block is ignored; persyst synthesizes its "
                     "decile and mean outputs from 'metric'",
                     output->line(), output->column(), subject);
    }
}

}  // namespace wm::plugins
