#pragma once

// Shared configurator machinery for operator plugins (paper Section V-C):
// parse the common operator settings, build the pattern-unit template,
// resolve units against the current sensor tree, and honour the unit
// management mode — Sequential keeps all units in one operator (shared
// model), Parallel instantiates one operator per unit (one model per unit,
// concurrently schedulable).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/operator.h"

namespace wm::plugins {

/// Factory invoked once per operator instance to be created; receives the
/// operator's config (with units already decided) and the plugin block for
/// plugin-specific keys.
using OperatorFactory = std::function<std::shared_ptr<core::OperatorTemplate>(
    const core::OperatorConfig& config, const core::OperatorContext& context,
    const common::ConfigNode& node)>;

/// Standard configuration flow for unit-based plugins. Returns the created
/// operators; empty when the pattern template is malformed or no units
/// resolve. Registers all output topics with the Query Engine's tree so that
/// downstream pipeline stages can resolve them as inputs.
std::vector<core::OperatorPtr> configureStandard(const common::ConfigNode& node,
                                                 const core::OperatorContext& context,
                                                 const std::string& plugin,
                                                 const OperatorFactory& factory);

}  // namespace wm::plugins
