#pragma once

// Shared configurator machinery for operator plugins (paper Section V-C):
// parse the common operator settings, build the pattern-unit template,
// resolve units against the current sensor tree, and honour the unit
// management mode — Sequential keeps all units in one operator (shared
// model), Parallel instantiates one operator per unit (one model per unit,
// concurrently schedulable).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

/// Factory invoked once per operator instance to be created; receives the
/// operator's config (with units already decided) and the plugin block for
/// plugin-specific keys.
using OperatorFactory = std::function<std::shared_ptr<core::OperatorTemplate>(
    const core::OperatorConfig& config, const core::OperatorContext& context,
    const common::ConfigNode& node)>;

/// Standard configuration flow for unit-based plugins. Returns the created
/// operators; empty when the pattern template is malformed or no units
/// resolve. Registers all output topics with the Query Engine's tree so that
/// downstream pipeline stages can resolve them as inputs.
std::vector<core::OperatorPtr> configureStandard(const common::ConfigNode& node,
                                                 const core::OperatorContext& context,
                                                 const std::string& plugin,
                                                 const OperatorFactory& factory);

/// Static-analysis hook of a plugin (wm-check, src/analysis): validates one
/// operator configuration block without instantiating anything, reporting
/// plugin-specific findings (threshold sanity, value ranges, grammar) into
/// the sink. Must be side-effect free: no threads, no files, no logging.
using PluginValidator = std::function<void(const common::ConfigNode& operator_node,
                                           analysis::DiagnosticSink& sink)>;

/// Computes the operator configuration exactly as the plugin's configurator
/// would — including synthesized patterns (persyst's decile outputs, the
/// filesink unit anchor) — again without side effects. The analyzer resolves
/// units from this, so dry-run resolution matches runtime resolution.
using EffectiveConfigFn =
    std::function<core::OperatorConfig(const common::ConfigNode& operator_node)>;

/// Capacity/cost prediction a plugin contributes to the wm-check capacity
/// pass (src/analysis/capacity.cpp). Zeroes mean "use the analyzer's
/// defaults" (64 B of state per unit, 100 ns per visited reading).
struct PluginCostModel {
    /// Bytes of retained state (training buffers, models) across all units
    /// of one operator block.
    std::size_t state_bytes = 0;
    /// Estimated compute cost per input reading visited in one pass.
    double ns_per_reading = 0.0;
};

/// Cost hook of a plugin: predicts the retained state and per-reading cost
/// of one operator block from its configuration alone. `units` and `inputs`
/// are the dry-run resolution results. Must be side-effect free.
using PluginCostFn = std::function<PluginCostModel(
    const common::ConfigNode& operator_node, std::size_t units, std::size_t inputs)>;

/// What a plugin contributes to static analysis. A null `validate` means
/// "no plugin-specific checks"; a null `effective_config` means the plain
/// core::parseOperatorConfig() result is authoritative.
struct PluginStaticInfo {
    PluginValidator validate;
    EffectiveConfigFn effective_config;
    /// Units materialise per running job at runtime (JobOperatorTemplate);
    /// the analyzer cannot resolve them against the static sensor tree and
    /// falls back to name-level dataflow edges.
    bool job_scoped = false;
    /// Outputs are synthetic unit anchors (e.g. filesink's "_filesink"),
    /// never published — exempt from output-topic checks.
    bool sink = false;
    /// Capacity/cost hook; null means the analyzer's defaults apply.
    PluginCostFn cost;
};

/// Leaf sensor names of pattern expressions: the pattern form yields its
/// sensor name, the absolute form its last path segment. Malformed
/// expressions are skipped (reported separately as WM0102).
std::vector<std::string> patternLeafNames(const std::vector<std::string>& patterns);

/// "plugin/name" display subject for diagnostics about an operator block.
std::string operatorSubject(const common::ConfigNode& node, const std::string& plugin);

}  // namespace wm::plugins
