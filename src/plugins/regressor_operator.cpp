#include "plugins/regressor_operator.h"

#include <algorithm>
#include <cmath>

#include "analysis/diagnostic.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "persist/serializer.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

bool RegressorOperator::trainNow() {
    if (training_set_.size() < 16) return false;
    bool ok;
    if (settings_.model == RegressorModel::kLinear) {
        ok = linear_.fit(training_set_.features(), training_set_.responses(),
                         settings_.linear);
    } else {
        ok = forest_.fit(training_set_.features(), training_set_.responses(),
                         settings_.forest);
    }
    if (ok) {
        WM_LOG(kInfo, "regressor") << config_.name << ": trained on "
                                   << training_set_.size()
                                   << " samples, RMSE = " << oobRmse();
    }
    return ok;
}

double RegressorOperator::predictValue(const std::vector<double>& features) const {
    return settings_.model == RegressorModel::kLinear ? linear_.predict(features)
                                                      : forest_.predict(features);
}

std::vector<double> RegressorOperator::buildFeatures(const core::Unit& unit,
                                                     common::TimestampNs t) const {
    std::vector<std::vector<double>> blocks;
    blocks.reserve(unit.inputs.size());
    for (const auto& topic : unit.inputs) {
        const bool monotonic = settings_.counter_names.count(common::pathLeaf(topic)) > 0;
        blocks.push_back(analytics::extractFeatures(queryInput(topic, t), monotonic));
    }
    return analytics::concatFeatures(blocks);
}

std::optional<double> RegressorOperator::currentTarget(const core::Unit& unit) const {
    if (context_.query_engine == nullptr) return std::nullopt;
    for (const auto& topic : unit.inputs) {
        if (common::pathLeaf(topic) != settings_.target) continue;
        const auto latest = context_.query_engine->latest(topic);
        if (latest) return latest->value;
    }
    return std::nullopt;
}

std::vector<core::SensorValue> RegressorOperator::compute(const core::Unit& unit,
                                                          common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    std::vector<double> features = buildFeatures(unit, t);

    if (!modelTrained()) {
        // Accumulation phase: pair the previous interval's features with the
        // current target reading.
        const auto target = currentTarget(unit);
        auto pending = pending_features_.find(unit.name);
        if (target && pending != pending_features_.end()) {
            training_set_.add(std::move(pending->second), *target);
            pending_features_.erase(pending);
        }
        pending_features_[unit.name] = std::move(features);
        if (training_set_.full()) trainNow();
        return out;
    }

    // Prediction phase: the forest estimates the target one interval ahead.
    // Score the previous interval's prediction against the target that has
    // now materialised (online error tracking).
    const auto target = currentTarget(unit);
    auto pending = pending_predictions_.find(unit.name);
    if (target && pending != pending_predictions_.end() && *target != 0.0) {
        online_error_.add(std::abs(pending->second - *target) / std::abs(*target));
    }
    const double prediction = predictValue(features);
    pending_predictions_[unit.name] = prediction;
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, prediction}});
    }
    return out;
}

double RegressorOperator::onlineRelativeError() const {
    return online_error_.count() > 0 ? online_error_.mean() : 0.0;
}

std::vector<double> RegressorOperator::computeOperatorLevel(common::TimestampNs) {
    const double progress =
        settings_.training_samples > 0
            ? static_cast<double>(training_set_.size()) /
                  static_cast<double>(settings_.training_samples)
            : 0.0;
    return {progress, modelTrained() ? oobRmse() : 0.0, onlineRelativeError()};
}

std::vector<core::OperatorPtr> configureRegressor(const common::ConfigNode& node,
                                                  const core::OperatorContext& context) {
    return configureStandard(
        node, context, "regressor",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            RegressorSettings settings;
            settings.target = n.getString("target", "power");
            settings.model = common::toLower(n.getString("model", "randomforest")) ==
                                     "linear"
                                 ? RegressorModel::kLinear
                                 : RegressorModel::kRandomForest;
            settings.training_samples =
                static_cast<std::size_t>(n.getInt("trainingSamples", 30000));
            settings.forest.num_trees = static_cast<std::size_t>(n.getInt("trees", 32));
            settings.forest.tree.max_depth =
                static_cast<std::size_t>(n.getInt("maxDepth", 12));
            settings.forest.seed = static_cast<std::uint64_t>(n.getInt("seed", 42));
            const auto counters = n.childrenOf("counters");
            if (!counters.empty()) {
                settings.counter_names.clear();
                for (const auto* counter : counters) {
                    settings.counter_names.insert(counter->value());
                }
            }
            return std::make_shared<RegressorOperator>(config, ctx, std::move(settings));
        });
}

void validateRegressor(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "regressor");
    if (const auto* model = node.child("model")) {
        const std::string lower = common::toLower(model->value());
        if (lower != "linear" && lower != "randomforest") {
            sink.warning("WM0405",
                         "unknown model '" + model->value() +
                             "' (silently treated as 'randomforest' at runtime)",
                         model->line(), model->column(), subject);
        }
    }
    for (const char* key : {"trees", "maxDepth", "trainingSamples"}) {
        const auto* child = node.child(key);
        if (child != nullptr && node.getInt(key, 1) <= 0) {
            sink.error("WM0404", std::string("'") + key + "' must be positive",
                       child->line(), child->column(), subject);
        }
    }
}

PluginCostModel regressorCost(const common::ConfigNode& node, std::size_t units,
                              std::size_t inputs) {
    PluginCostModel cost;
    const auto samples = static_cast<std::size_t>(
        std::max<std::int64_t>(node.getInt("trainingSamples", 30000), 0));
    const std::size_t inputs_per_unit =
        units > 0 ? std::max<std::size_t>(inputs / units, 1)
                  : std::max<std::size_t>(inputs, 1);
    const std::size_t feature_dim = inputs_per_unit * analytics::kFeaturesPerSensor;
    // Training set: one feature vector + response per accumulated sample.
    cost.state_bytes = samples * (feature_dim + 1) * sizeof(double);
    if (common::toLower(node.getString("model", "randomforest")) != "linear") {
        const auto trees = static_cast<std::size_t>(
            std::max<std::int64_t>(node.getInt("trees", 32), 0));
        const auto depth = static_cast<std::size_t>(
            std::max<std::int64_t>(node.getInt("maxDepth", 12), 0));
        // A fitted tree holds at most min(2^(depth+1), 2*samples) nodes.
        const std::size_t nodes =
            std::min<std::size_t>(std::size_t{1} << std::min<std::size_t>(depth + 1, 24),
                                  2 * std::max<std::size_t>(samples, 1));
        cost.state_bytes += trees * nodes * 48;
    }
    // Feature extraction walks each reading a couple of times (diff + stats).
    cost.ns_per_reading = 150.0;
    return cost;
}

namespace {

/// Fingerprint of the knobs that shape the regressor's model and feature
/// layout; a checkpoint from a different configuration is rejected.
void encodeRegressorFingerprint(persist::Encoder& encoder,
                                const RegressorSettings& settings) {
    encoder.putString(settings.target);
    encoder.putSize(settings.training_samples);
    encoder.putU8(settings.model == RegressorModel::kLinear ? 1 : 0);
    encoder.putSize(settings.forest.num_trees);
    encoder.putSize(settings.forest.tree.max_depth);
    encoder.putSize(settings.forest.tree.min_samples_split);
    encoder.putSize(settings.forest.tree.min_samples_leaf);
    encoder.putSize(settings.forest.tree.features_per_split);
    encoder.putF64(settings.forest.tree.min_impurity_decrease);
    encoder.putF64(settings.forest.bootstrap_fraction);
    encoder.putU64(settings.forest.seed);
    encoder.putF64(settings.linear.l2);
    encoder.putBool(settings.linear.standardize);
    encoder.putSize(settings.counter_names.size());
    for (const auto& name : settings.counter_names) encoder.putString(name);
}

}  // namespace

bool RegressorOperator::serializeState(persist::Encoder& encoder) const {
    persist::Encoder fingerprint;
    encodeRegressorFingerprint(fingerprint, settings_);
    encoder.putString(fingerprint.take());
    const auto& features = training_set_.features();
    const auto& responses = training_set_.responses();
    encoder.putSize(features.size());
    for (std::size_t i = 0; i < features.size(); ++i) {
        encoder.putSize(features[i].size());
        for (double x : features[i]) encoder.putF64(x);
        encoder.putF64(responses[i]);
    }
    forest_.serialize(encoder);
    linear_.serialize(encoder);
    online_error_.serialize(encoder);
    return true;
}

bool RegressorOperator::deserializeState(persist::Decoder& decoder) {
    persist::Encoder expected;
    encodeRegressorFingerprint(expected, settings_);
    std::string fingerprint;
    decoder.getString(&fingerprint);
    if (!decoder.ok() || fingerprint != expected.take()) return false;
    std::size_t samples = 0;
    decoder.getSize(&samples);
    analytics::TrainingSet training_set(settings_.training_samples);
    for (std::size_t i = 0; i < samples && decoder.ok(); ++i) {
        std::size_t dim = 0;
        decoder.getSize(&dim);
        std::vector<double> row(decoder.ok() ? dim : 0, 0.0);
        for (double& x : row) decoder.getF64(&x);
        double response = 0.0;
        decoder.getF64(&response);
        if (decoder.ok()) training_set.add(std::move(row), response);
    }
    analytics::RandomForest forest;
    analytics::LinearRegression linear;
    analytics::StreamingStats online_error;
    if (!forest.deserialize(decoder)) return false;
    if (!linear.deserialize(decoder)) return false;
    if (!online_error.deserialize(decoder)) return false;
    if (!decoder.ok()) return false;
    training_set_ = std::move(training_set);
    forest_ = std::move(forest);
    linear_ = std::move(linear);
    online_error_ = online_error;
    pending_features_.clear();
    pending_predictions_.clear();
    return true;
}

}  // namespace wm::plugins
