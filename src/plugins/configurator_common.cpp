#include "plugins/configurator_common.h"

#include "common/logging.h"
#include "common/string_utils.h"

namespace wm::plugins {

std::vector<std::string> patternLeafNames(const std::vector<std::string>& patterns) {
    std::vector<std::string> out;
    out.reserve(patterns.size());
    for (const auto& pattern : patterns) {
        const auto expression = core::parsePattern(pattern);
        if (!expression) continue;
        out.push_back(expression->anchor == core::LevelAnchor::kAbsolute
                          ? common::pathLeaf(expression->sensor_name)
                          : expression->sensor_name);
    }
    return out;
}

std::string operatorSubject(const common::ConfigNode& node, const std::string& plugin) {
    return plugin + "/" + (node.value().empty() ? plugin : node.value());
}

std::vector<core::OperatorPtr> configureStandard(const common::ConfigNode& node,
                                                 const core::OperatorContext& context,
                                                 const std::string& plugin,
                                                 const OperatorFactory& factory) {
    std::vector<core::OperatorPtr> out;
    core::OperatorConfig config = core::parseOperatorConfig(node, plugin);
    if (context.query_engine == nullptr) return out;

    const auto unit_template =
        core::makeUnitTemplate(config.input_patterns, config.output_patterns);
    if (!unit_template) {
        WM_LOG(kError, "wintermute")
            << plugin << "/" << config.name << ": malformed pattern expression";
        return out;
    }
    const core::UnitResolver resolver(context.query_engine->tree());
    std::vector<core::Unit> units = resolver.resolveUnits(*unit_template);
    if (units.empty()) {
        WM_LOG(kWarning, "wintermute")
            << plugin << "/" << config.name << ": no units resolved";
        return out;
    }

    // Make operator outputs discoverable for downstream pipeline stages.
    std::vector<std::string> output_topics;
    for (const auto& unit : units) {
        output_topics.insert(output_topics.end(), unit.outputs.begin(), unit.outputs.end());
    }
    context.query_engine->addTopics(output_topics);

    if (config.unit_mode == core::UnitMode::kParallel) {
        // One operator (and thus one model) per unit.
        for (std::size_t i = 0; i < units.size(); ++i) {
            core::OperatorConfig per_unit = config;
            per_unit.name = config.name + "#" + std::to_string(i);
            auto op = factory(per_unit, context, node);
            if (!op) continue;
            op->setUnits({units[i]});
            out.push_back(std::move(op));
        }
    } else {
        auto op = factory(config, context, node);
        if (op) {
            op->setUnits(std::move(units));
            out.push_back(std::move(op));
        }
    }
    return out;
}

}  // namespace wm::plugins
