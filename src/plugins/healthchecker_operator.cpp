#include "plugins/healthchecker_operator.h"

#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

std::vector<core::SensorValue> HealthcheckerOperator::compute(const core::Unit& unit,
                                                              common::TimestampNs t) {
    bool healthy = true;
    for (const auto& topic : unit.inputs) {
        const std::string name = common::pathLeaf(topic);
        for (const auto& check : checks_) {
            if (check.sensor_name != name) continue;
            if (context_.query_engine == nullptr) continue;
            const auto latest = context_.query_engine->latest(topic);
            if (!latest) {
                healthy = false;  // a silent sensor is itself unhealthy
                continue;
            }
            if (check.min && latest->value < *check.min) healthy = false;
            if (check.max && latest->value > *check.max) healthy = false;
        }
    }
    std::vector<core::SensorValue> out;
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, healthy ? 1.0 : 0.0}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureHealthchecker(
    const common::ConfigNode& node, const core::OperatorContext& context) {
    return configureStandard(
        node, context, "healthchecker",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            std::vector<HealthCheck> checks;
            for (const auto* block : n.childrenOf("check")) {
                HealthCheck check;
                check.sensor_name = block->value();
                if (const auto* min = block->child("min")) {
                    try {
                        check.min = std::stod(min->value());
                    } catch (...) {
                    }
                }
                if (const auto* max = block->child("max")) {
                    try {
                        check.max = std::stod(max->value());
                    } catch (...) {
                    }
                }
                if (!check.sensor_name.empty()) checks.push_back(std::move(check));
            }
            return std::make_shared<HealthcheckerOperator>(config, ctx, std::move(checks));
        });
}

}  // namespace wm::plugins
