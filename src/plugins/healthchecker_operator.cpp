#include "plugins/healthchecker_operator.h"

#include <algorithm>
#include <optional>

#include "analysis/diagnostic.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

namespace {

std::optional<double> parseBound(const common::ConfigNode* bound) {
    if (bound == nullptr) return std::nullopt;
    try {
        return std::stod(bound->value());
    } catch (...) {
        return std::nullopt;
    }
}

}  // namespace

std::vector<core::SensorValue> HealthcheckerOperator::compute(const core::Unit& unit,
                                                              common::TimestampNs t) {
    bool healthy = true;
    for (const auto& topic : unit.inputs) {
        const std::string name = common::pathLeaf(topic);
        for (const auto& check : checks_) {
            if (check.sensor_name != name) continue;
            if (context_.query_engine == nullptr) continue;
            const auto latest = context_.query_engine->latest(topic);
            if (!latest) {
                healthy = false;  // a silent sensor is itself unhealthy
                continue;
            }
            if (check.min && latest->value < *check.min) healthy = false;
            if (check.max && latest->value > *check.max) healthy = false;
        }
    }
    std::vector<core::SensorValue> out;
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, healthy ? 1.0 : 0.0}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureHealthchecker(
    const common::ConfigNode& node, const core::OperatorContext& context) {
    // Reject nonsensical threshold configurations at configure time instead of
    // silently running checks that can never pass (min > max) or never check
    // anything (no usable check blocks).
    const std::string name = node.value().empty() ? "healthchecker" : node.value();
    std::vector<HealthCheck> checks;
    for (const auto* block : node.childrenOf("check")) {
        HealthCheck check;
        check.sensor_name = block->value();
        check.min = parseBound(block->child("min"));
        check.max = parseBound(block->child("max"));
        if (check.sensor_name.empty() || (!check.min && !check.max)) {
            WM_LOG(kError, "healthchecker")
                << name << ": degenerate check block (needs a sensor name and at "
                << "least one of min/max); rejecting operator";
            return {};
        }
        if (check.min && check.max && *check.min > *check.max) {
            WM_LOG(kError, "healthchecker")
                << name << ": check '" << check.sensor_name << "' has min ("
                << *check.min << ") > max (" << *check.max << "); rejecting operator";
            return {};
        }
        checks.push_back(std::move(check));
    }
    if (checks.empty()) {
        WM_LOG(kError, "healthchecker")
            << name << ": no check blocks configured; rejecting operator";
        return {};
    }
    return configureStandard(
        node, context, "healthchecker",
        [&checks](const core::OperatorConfig& config, const core::OperatorContext& ctx,
                  const common::ConfigNode&) {
            return std::make_shared<HealthcheckerOperator>(config, ctx, checks);
        });
}

void validateHealthchecker(const common::ConfigNode& node,
                           analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "healthchecker");
    const core::OperatorConfig config = core::parseOperatorConfig(node, "healthchecker");
    const std::vector<std::string> inputs = patternLeafNames(config.input_patterns);
    const auto blocks = node.childrenOf("check");
    if (blocks.empty()) {
        sink.error("WM0402", "no check blocks configured; the operator checks nothing",
                   node.line(), node.column(), subject);
        return;
    }
    for (const auto* block : blocks) {
        const std::string label =
            block->value().empty() ? "<unnamed>" : block->value();
        const std::optional<double> min = parseBound(block->child("min"));
        const std::optional<double> max = parseBound(block->child("max"));
        if (block->value().empty() || (!min && !max)) {
            sink.error("WM0402",
                       "degenerate check block '" + label +
                           "': needs a sensor name and at least one of min/max",
                       block->line(), block->column(), subject);
            continue;
        }
        if (block->child("min") != nullptr && !min) {
            sink.error("WM0404", "check '" + label + "': 'min' is not a number",
                       block->child("min")->line(), block->child("min")->column(),
                       subject);
        }
        if (block->child("max") != nullptr && !max) {
            sink.error("WM0404", "check '" + label + "': 'max' is not a number",
                       block->child("max")->line(), block->child("max")->column(),
                       subject);
        }
        if (min && max && *min > *max) {
            sink.error("WM0401",
                       "check '" + label + "': min (" + std::to_string(*min) +
                           ") > max (" + std::to_string(*max) + ") can never pass",
                       block->line(), block->column(), subject);
        }
        if (!inputs.empty() &&
            std::find(inputs.begin(), inputs.end(), block->value()) == inputs.end()) {
            sink.warning("WM0403",
                         "check '" + label +
                             "' matches no configured input sensor; it never fires",
                         block->line(), block->column(), subject);
        }
    }
}

}  // namespace wm::plugins
