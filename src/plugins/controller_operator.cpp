#include "plugins/controller_operator.h"

#include <algorithm>
#include <cmath>

#include "analysis/diagnostic.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

double ControllerOperator::knobValueOf(const std::string& unit_name) const {
    common::MutexLock lock(knob_mutex_);
    auto it = knob_values_.find(unit_name);
    return it == knob_values_.end() ? settings_.knob_max : it->second;
}

std::vector<core::SensorValue> ControllerOperator::compute(const core::Unit& unit,
                                                           common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    if (unit.inputs.empty() || context_.query_engine == nullptr ||
        settings_.setpoint == 0.0) {
        return out;
    }
    const auto latest = context_.query_engine->latest(unit.inputs.front());
    if (!latest) return out;

    double knob;
    {
        common::MutexLock lock(knob_mutex_);
        knob = knob_values_.count(unit.name) ? knob_values_[unit.name]
                                             : settings_.knob_max;
    }
    const double error = (latest->value - settings_.setpoint) / settings_.setpoint;
    if (std::abs(error) > settings_.deadband) {
        knob = std::clamp(knob - settings_.gain * error, settings_.knob_min,
                          settings_.knob_max);
        if (context_.actuate && context_.actuate(settings_.knob, unit.name, knob)) {
            actuations_.fetch_add(1, std::memory_order_relaxed);
        }
        common::MutexLock lock(knob_mutex_);
        knob_values_[unit.name] = knob;
    }
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, knob}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureController(const common::ConfigNode& node,
                                                   const core::OperatorContext& context) {
    return configureStandard(
        node, context, "controller",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) -> std::shared_ptr<core::OperatorTemplate> {
            ControllerSettings settings;
            settings.knob = n.getString("knob", "dvfs");
            settings.setpoint = n.getDouble("setpoint", 0.0);
            settings.gain = n.getDouble("gain", 0.1);
            settings.knob_min = n.getDouble("knobMin", 0.5);
            settings.knob_max = n.getDouble("knobMax", 1.0);
            settings.deadband = n.getDouble("deadband", 0.02);
            if (settings.setpoint == 0.0 || settings.knob_min > settings.knob_max) {
                return nullptr;  // a controller without a setpoint is inert
            }
            return std::make_shared<ControllerOperator>(config, ctx, std::move(settings));
        });
}

void validateController(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "controller");
    if (node.getDouble("setpoint", 0.0) == 0.0) {
        const auto* setpoint = node.child("setpoint");
        sink.error("WM0404",
                   "'setpoint' is zero or missing; the controller is silently "
                   "discarded at runtime",
                   setpoint != nullptr ? setpoint->line() : node.line(),
                   setpoint != nullptr ? setpoint->column() : node.column(), subject);
    }
    const double knob_min = node.getDouble("knobMin", 0.5);
    const double knob_max = node.getDouble("knobMax", 1.0);
    if (knob_min > knob_max) {
        const auto* anchor = node.child("knobMin");
        sink.error("WM0404",
                   "'knobMin' (" + std::to_string(knob_min) + ") > 'knobMax' (" +
                       std::to_string(knob_max) +
                       "); the controller is silently discarded at runtime",
                   anchor != nullptr ? anchor->line() : node.line(),
                   anchor != nullptr ? anchor->column() : node.column(), subject);
    }
    if (const auto* gain = node.child("gain")) {
        if (node.getDouble("gain", 0.1) <= 0.0) {
            sink.warning("WM0405", "'gain' is not positive; the knob never moves",
                         gain->line(), gain->column(), subject);
        }
    }
}

}  // namespace wm::plugins
