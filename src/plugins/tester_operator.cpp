#include "plugins/tester_operator.h"

#include "analysis/diagnostic.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

std::vector<core::SensorValue> TesterOperator::compute(const core::Unit& unit,
                                                       common::TimestampNs t) {
    std::uint64_t retrieved = 0;
    if (!unit.inputs.empty()) {
        for (std::size_t q = 0; q < num_queries_; ++q) {
            const std::string& topic = unit.inputs[q % unit.inputs.size()];
            retrieved += queryInput(topic, t).size();
        }
    }
    readings_retrieved_.fetch_add(retrieved, std::memory_order_relaxed);
    std::vector<core::SensorValue> out;
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, static_cast<double>(retrieved)}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureTester(const common::ConfigNode& node,
                                               const core::OperatorContext& context) {
    return configureStandard(
        node, context, "tester",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            const auto queries = static_cast<std::size_t>(n.getInt("queries", 10));
            return std::make_shared<TesterOperator>(config, ctx, queries);
        });
}

void validateTester(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "tester");
    if (const auto* queries = node.child("queries")) {
        if (node.getInt("queries", 10) <= 0) {
            sink.error("WM0404", "'queries' must be positive", queries->line(),
                       queries->column(), subject);
        }
    }
}

}  // namespace wm::plugins
