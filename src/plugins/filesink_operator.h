#pragma once

// Filesink operator plugin: appends each unit's input sensor readings to a
// CSV file at every computation interval. This is the export endpoint of
// analysis pipelines — DCDB feeds visualization front-ends from similar
// sinks — and doubles as a trace recorder for offline analysis of operator
// outputs.
//
// Plugin-specific configuration keys:
//   path       <file>    output CSV path (required); rows are
//                         "topic,timestamp,value"
//   autoFlush  true|false flush after every computation (default false)
//
// Readings are deduplicated by timestamp per topic, so overlapping query
// windows do not produce duplicate rows.

#include <fstream>
#include <map>
#include <string>

#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

class FilesinkOperator final : public core::OperatorTemplate {
  public:
    FilesinkOperator(core::OperatorConfig config, core::OperatorContext context,
                     std::string path, bool auto_flush);

    std::uint64_t rowsWritten() const { return rows_written_; }
    bool fileOpen() const { return out_.is_open(); }

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    std::ofstream out_;
    bool auto_flush_;
    std::uint64_t rows_written_ = 0;
    /// Last timestamp written per topic (dedup across overlapping windows).
    std::map<std::string, common::TimestampNs> last_written_;
};

std::vector<core::OperatorPtr> configureFilesink(const common::ConfigNode& node,
                                                 const core::OperatorContext& context);

/// The configuration node as configureFilesink() patches it: when no
/// outputs are declared, a synthetic "_filesink" output anchors one unit
/// per node matched by the first input pattern.
common::ConfigNode filesinkPatchedNode(const common::ConfigNode& node);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateFilesink(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
