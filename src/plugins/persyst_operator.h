#pragma once

// PerSyst operator plugin (Case Study 2, Collect Agent side): a job operator
// that aggregates a per-core derived metric (typically the perfmetrics
// plugin's CPI output) into job-level decile indicators. At each computation
// interval, one unit is materialised per running job; the unit's inputs are
// the metric sensors of every core of every node the job runs on, and its
// outputs are the 11 deciles (minimum, 9 inner deciles, maximum) of their
// distribution plus the job-level mean — the quantile transport scheme of
// the original PerSyst tool.
//
// Plugin-specific configuration keys:
//   metric  <name>   the per-core metric to aggregate (default "cpi"); the
//                    input pattern is built as <bottomup, filter cpu><metric>
//                    unless explicit input sensors are configured.

#include <string>

#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

class PersystOperator final : public core::JobOperatorTemplate {
  public:
    PersystOperator(core::OperatorConfig config, core::OperatorContext context,
                    core::UnitTemplate unit_template, std::string metric)
        : core::JobOperatorTemplate(std::move(config), std::move(context),
                                    std::move(unit_template)),
          metric_(std::move(metric)) {}

    const std::string& metric() const { return metric_; }

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    std::string metric_;
};

std::vector<core::OperatorPtr> configurePersyst(const common::ConfigNode& node,
                                                const core::OperatorContext& context);

/// The operator configuration exactly as configurePersyst() builds it:
/// the default per-core input pattern and the synthesized decile/mean
/// output patterns.
core::OperatorConfig persystEffectiveConfig(const common::ConfigNode& node);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validatePersyst(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
