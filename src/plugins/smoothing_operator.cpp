#include "plugins/smoothing_operator.h"

#include "analysis/diagnostic.h"
#include "persist/serializer.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

std::vector<core::SensorValue> SmoothingOperator::compute(const core::Unit& unit,
                                                          common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    const std::size_t n = std::min(unit.inputs.size(), unit.outputs.size());
    for (std::size_t i = 0; i < n; ++i) {
        // Handle-keyed read: no per-tick topic hashing (docs/PERFORMANCE.md).
        const auto latest = inputLatest(unit, i);
        if (!latest) continue;
        auto it = state_.try_emplace(unit.inputs[i], analytics::Ewma(alpha_)).first;
        const double smoothed = it->second.update(latest->value);
        out.push_back({unit.outputs[i], {t, smoothed}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureSmoothing(const common::ConfigNode& node,
                                                  const core::OperatorContext& context) {
    return configureStandard(
        node, context, "smoothing",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            double alpha = n.getDouble("alpha", 0.2);
            if (alpha <= 0.0 || alpha > 1.0) alpha = 0.2;
            return std::make_shared<SmoothingOperator>(config, ctx, alpha);
        });
}

void validateSmoothing(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    if (const auto* alpha = node.child("alpha")) {
        const double value = node.getDouble("alpha", 0.2);
        if (value <= 0.0 || value > 1.0) {
            sink.error("WM0404",
                       "'alpha' must be within (0, 1] (silently reset to 0.2 at runtime)",
                       alpha->line(), alpha->column(),
                       operatorSubject(node, "smoothing"));
        }
    }
}

bool SmoothingOperator::serializeState(persist::Encoder& encoder) const {
    encoder.putF64(alpha_);
    encoder.putSize(state_.size());
    for (const auto& [topic, ewma] : state_) {
        encoder.putString(topic);
        ewma.serialize(encoder);
    }
    return true;
}

bool SmoothingOperator::deserializeState(persist::Decoder& decoder) {
    double alpha = 0.0;
    decoder.getF64(&alpha);
    if (!decoder.ok() || alpha != alpha_) return false;
    std::size_t count = 0;
    decoder.getSize(&count);
    std::map<std::string, analytics::Ewma> state;
    for (std::size_t i = 0; i < count && decoder.ok(); ++i) {
        std::string topic;
        decoder.getString(&topic);
        analytics::Ewma ewma;
        if (!ewma.deserialize(decoder)) return false;
        state[topic] = ewma;
    }
    if (!decoder.ok()) return false;
    state_ = std::move(state);
    return true;
}

}  // namespace wm::plugins
