#pragma once

// Smoothing operator plugin: exponential moving average over each input
// sensor, emitted to the positionally-matching output sensor. Units must
// therefore have equally many inputs and outputs (the configurator warns
// otherwise and the extra inputs are ignored).
//
// Plugin-specific configuration keys:
//   alpha   <a in (0,1]>    EWMA smoothing factor (default 0.2)

#include <map>
#include <string>

#include "analytics/stats.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

class SmoothingOperator final : public core::OperatorTemplate {
  public:
    SmoothingOperator(core::OperatorConfig config, core::OperatorContext context,
                      double alpha)
        : core::OperatorTemplate(std::move(config), std::move(context)), alpha_(alpha) {}

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

    /// Checkpoints the per-topic running averages: a restarted host resumes
    /// the smoothed series instead of re-warming every filter.
    bool serializeState(persist::Encoder& encoder) const override;
    bool deserializeState(persist::Decoder& decoder) override;

  private:
    double alpha_;
    std::map<std::string, analytics::Ewma> state_;  // keyed by input topic
};

std::vector<core::OperatorPtr> configureSmoothing(const common::ConfigNode& node,
                                                  const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateSmoothing(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
