#pragma once

// Clustering operator plugin (Case Study 3, performance-anomaly
// identification): variational Bayesian Gaussian mixture clustering over
// long-window aggregates of each unit's input sensors. Every unit (one per
// compute node in the paper) becomes a point whose coordinates are the
// window averages of its inputs (monotonic counters are turned into rates);
// the model determines the number of clusters autonomously and units whose
// density falls below the threshold under every fitted component are
// labelled outliers (emitted as label -1).
//
// This operator performs a cross-unit computation: the model is fitted over
// all units at once (units may access each other for correlation, paper
// Section V-C), then each unit is labelled individually.
//
// Plugin-specific configuration keys:
//   maxComponents     <n>      component cap for the mixture (default 10)
//   outlierThreshold  <p>      density threshold (default 0.001)
//   seed              <n>      RNG seed (default 42)
//   rates             <name> ...  repeatable: inputs converted to rates
//                                 per second (default: "col_idle")

#include <map>
#include <set>
#include <string>

#include "analytics/bayesian_gmm.h"
#include "common/mutex.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

struct ClusteringSettings {
    std::size_t max_components = 10;
    double outlier_threshold = 1e-3;
    /// Robust refinement: after fitting, points whose mode-relative density
    /// falls below `trim_threshold` are provisionally excluded and the model
    /// is refitted on the inliers (up to `refine_passes` times). Without
    /// this, an anomalous point inflates its own cluster's covariance enough
    /// to hide inside the final threshold. 0 passes disables refinement.
    std::size_t refine_passes = 1;
    double trim_threshold = 0.05;
    std::uint64_t seed = 42;
    std::set<std::string> rate_sensors = {"col_idle"};
};

class ClusteringOperator final : public core::OperatorTemplate {
  public:
    ClusteringOperator(core::OperatorConfig config, core::OperatorContext context,
                       ClusteringSettings settings)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          settings_(std::move(settings)) {}

    const analytics::BayesianGmm& model() const { return model_; }
    bool modelTrained() const { return model_.trained(); }

    /// The feature point (window aggregates) computed for a unit on the last
    /// pass; empty if the unit had missing data.
    analytics::Vector lastPointOf(const std::string& unit_name) const;

  protected:
    /// Fits the mixture over all units, then labels each unit.
    void computeAllLocked(common::TimestampNs t) override;

    /// Labels one unit with the current model (used for per-unit and
    /// on-demand computation after a fit).
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

    /// Checkpoints the fitted mixture and the last feature points so a
    /// restarted host labels units without refitting the long window.
    bool serializeState(persist::Encoder& encoder) const override;
    bool deserializeState(persist::Decoder& decoder) override;

  private:
    /// Aggregates the unit's inputs over the configured window into a point.
    /// Returns an empty vector when any input has no data.
    analytics::Vector buildPoint(const core::Unit& unit, common::TimestampNs t) const;

    ClusteringSettings settings_;
    analytics::BayesianGmm model_;
    mutable common::Mutex points_mutex_{"ClusteringOperator.points",
                                        common::LockRank::kPluginState};
    std::map<std::string, analytics::Vector> last_points_ WM_GUARDED_BY(points_mutex_);  // keyed by unit name
};

std::vector<core::OperatorPtr> configureClustering(const common::ConfigNode& node,
                                                   const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateClustering(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

struct PluginCostModel;

/// Capacity hook (wm-check): predicts the per-unit feature points and
/// mixture-model footprint from maxComponents and the resolved units.
PluginCostModel clusteringCost(const common::ConfigNode& node, std::size_t units,
                               std::size_t inputs);

}  // namespace wm::plugins
