#pragma once

// Perfmetrics operator plugin (Case Study 2, Pusher side): computes derived
// performance metrics from raw per-CPU hardware counters — cycles per
// instruction (CPI), instructions per second, vectorisation ratio, cache
// miss rate, branch miss rate and a GFLOPS proxy. Counter inputs are
// monotonic; the plugin works on deltas over the configured window.
//
// The metric emitted on each output sensor is chosen by the output sensor's
// name: "cpi", "ips", "vecratio", "missrate", "branchrate" or "gflops".
// Counter inputs are recognised by their names: "cpu-cycles",
// "instructions", "cache-misses", "vector-ops", "branch-misses".

#include <string>

#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

class PerfmetricsOperator final : public core::OperatorTemplate {
  public:
    PerfmetricsOperator(core::OperatorConfig config, core::OperatorContext context)
        : core::OperatorTemplate(std::move(config), std::move(context)) {}

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;
};

std::vector<core::OperatorPtr> configurePerfmetrics(const common::ConfigNode& node,
                                                    const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validatePerfmetrics(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
