#include "plugins/aggregator_operator.h"

#include "analysis/diagnostic.h"
#include "analytics/stats.h"
#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

AggregationKind aggregationFromName(const std::string& name) {
    const std::string lower = common::toLower(name);
    if (lower == "sum") return AggregationKind::kSum;
    if (lower == "minimum" || lower == "min") return AggregationKind::kMinimum;
    if (lower == "maximum" || lower == "max") return AggregationKind::kMaximum;
    if (lower == "median") return AggregationKind::kMedian;
    if (lower == "quantile") return AggregationKind::kQuantile;
    return AggregationKind::kAverage;
}

std::vector<core::SensorValue> AggregatorOperator::compute(const core::Unit& unit,
                                                           common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    double result = 0.0;
    bool have_result = false;
    const bool needs_values =
        delta_ || kind_ == AggregationKind::kMedian || kind_ == AggregationKind::kQuantile;
    if (!needs_values) {
        // Fused hot path (docs/PERFORMANCE.md): average/sum/min/max need no
        // materialised window — one RangeStats pass per input, merged.
        sensors::RangeStats merged;
        for (std::size_t i = 0; i < unit.inputs.size(); ++i) {
            const auto stats = inputStats(unit, i, t);
            if (stats) merged.merge(*stats);
        }
        if (merged.count > 0) {
            have_result = true;
            switch (kind_) {
                case AggregationKind::kAverage: result = merged.average(); break;
                case AggregationKind::kSum: result = merged.sum; break;
                case AggregationKind::kMinimum: result = merged.min; break;
                case AggregationKind::kMaximum: result = merged.max; break;
                default: have_result = false; break;
            }
        }
    } else {
        // Order statistics need the individual values; delta mode reduces
        // each input to one value first (fused — no window copy).
        std::vector<double> values;
        for (std::size_t i = 0; i < unit.inputs.size(); ++i) {
            if (delta_) {
                const auto stats = inputStats(unit, i, t);
                if (stats && stats->count > 0) values.push_back(stats->delta());
            } else {
                const sensors::ReadingVector window = queryInput(unit, i, t);
                values.reserve(values.size() + window.size());
                for (const auto& reading : window) values.push_back(reading.value);
            }
        }
        if (!values.empty()) {
            have_result = true;
            switch (kind_) {
                case AggregationKind::kAverage:
                    result = analytics::mean(values).value_or(0);
                    break;
                case AggregationKind::kSum: result = analytics::sum(values); break;
                case AggregationKind::kMinimum:
                    result = analytics::minimum(values).value_or(0);
                    break;
                case AggregationKind::kMaximum:
                    result = analytics::maximum(values).value_or(0);
                    break;
                case AggregationKind::kMedian:
                    result = analytics::median(values).value_or(0);
                    break;
                case AggregationKind::kQuantile:
                    result = analytics::quantile(values, quantile_).value_or(0);
                    break;
            }
        }
    }
    if (!have_result) return out;
    for (const auto& topic : unit.outputs) {
        out.push_back({topic, {t, result}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureAggregator(const common::ConfigNode& node,
                                                   const core::OperatorContext& context) {
    return configureStandard(
        node, context, "aggregator",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            const AggregationKind kind =
                aggregationFromName(n.getString("operation", "average"));
            const double quantile = n.getDouble("quantile", 0.5);
            const bool delta = n.getBool("delta", false);
            return std::make_shared<AggregatorOperator>(config, ctx, kind, quantile, delta);
        });
}

void validateAggregator(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "aggregator");
    std::string operation = "average";
    if (const auto* op = node.child("operation")) {
        operation = common::toLower(op->value());
        static const char* kKnown[] = {"average", "sum",    "min",      "minimum",
                                       "max",     "maximum", "median", "quantile"};
        bool known = false;
        for (const char* candidate : kKnown) known = known || operation == candidate;
        if (!known) {
            sink.error("WM0404",
                       "unknown aggregation operation '" + op->value() +
                           "' (silently treated as 'average' at runtime)",
                       op->line(), op->column(), subject);
        }
    }
    if (const auto* quantile = node.child("quantile")) {
        const double q = node.getDouble("quantile", 0.5);
        if (q < 0.0 || q > 1.0) {
            sink.error("WM0404", "'quantile' must be within [0, 1]", quantile->line(),
                       quantile->column(), subject);
        }
        if (operation != "quantile") {
            sink.warning("WM0405",
                         "'quantile' is set but 'operation' is '" + operation +
                             "'; the value is ignored",
                         quantile->line(), quantile->column(), subject);
        }
    }
}

}  // namespace wm::plugins
