#include "plugins/registry.h"

#include "plugins/aggregator_operator.h"
#include "plugins/classifier_operator.h"
#include "plugins/clustering_operator.h"
#include "plugins/controller_operator.h"
#include "plugins/filesink_operator.h"
#include "plugins/healthchecker_operator.h"
#include "plugins/perfmetrics_operator.h"
#include "plugins/persyst_operator.h"
#include "plugins/regressor_operator.h"
#include "plugins/smoothing_operator.h"
#include "plugins/tester_operator.h"

namespace wm::plugins {

const std::map<std::string, core::ConfiguratorFn>& builtinConfigurators() {
    static const std::map<std::string, core::ConfiguratorFn> configurators = {
        {"tester", configureTester},
        {"aggregator", configureAggregator},
        {"smoothing", configureSmoothing},
        {"perfmetrics", configurePerfmetrics},
        {"healthchecker", configureHealthchecker},
        {"regressor", configureRegressor},
        {"persyst", configurePersyst},
        {"clustering", configureClustering},
        {"controller", configureController},
        {"filesink", configureFilesink},
        {"classifier", configureClassifier},
    };
    return configurators;
}

const std::map<std::string, PluginStaticInfo>& builtinPluginStaticInfo() {
    static const std::map<std::string, PluginStaticInfo> info = {
        {"tester", {validateTester, nullptr, false, false, nullptr}},
        {"aggregator", {validateAggregator, nullptr, false, false, nullptr}},
        {"smoothing", {validateSmoothing, nullptr, false, false, nullptr}},
        {"perfmetrics", {validatePerfmetrics, nullptr, false, false, nullptr}},
        {"healthchecker", {validateHealthchecker, nullptr, false, false, nullptr}},
        // The model-training plugins carry cost hooks: their retained state
        // (training sets, forests, mixtures) dominates operator memory and
        // is invisible to the analyzer's per-unit default.
        {"regressor", {validateRegressor, nullptr, false, false, regressorCost}},
        // Units materialise per running job (paper Section VI-C); the static
        // tree still resolves the synthesized decile outputs.
        {"persyst", {validatePersyst, persystEffectiveConfig, true, false, nullptr}},
        {"clustering", {validateClustering, nullptr, false, false, clusteringCost}},
        {"controller", {validateController, nullptr, false, false, nullptr}},
        {"filesink",
         {validateFilesink,
          [](const common::ConfigNode& node) {
              return core::parseOperatorConfig(filesinkPatchedNode(node), "filesink");
          },
          false, true, nullptr}},
        {"classifier", {validateClassifier, nullptr, false, false, classifierCost}},
    };
    return info;
}

void registerBuiltinPlugins(core::OperatorManager& manager) {
    for (const auto& [name, configurator] : builtinConfigurators()) {
        manager.registerPlugin(name, configurator);
    }
}

}  // namespace wm::plugins
