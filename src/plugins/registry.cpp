#include "plugins/registry.h"

#include "plugins/aggregator_operator.h"
#include "plugins/classifier_operator.h"
#include "plugins/clustering_operator.h"
#include "plugins/controller_operator.h"
#include "plugins/filesink_operator.h"
#include "plugins/healthchecker_operator.h"
#include "plugins/perfmetrics_operator.h"
#include "plugins/persyst_operator.h"
#include "plugins/regressor_operator.h"
#include "plugins/smoothing_operator.h"
#include "plugins/tester_operator.h"

namespace wm::plugins {

void registerBuiltinPlugins(core::OperatorManager& manager) {
    manager.registerPlugin("tester", configureTester);
    manager.registerPlugin("aggregator", configureAggregator);
    manager.registerPlugin("smoothing", configureSmoothing);
    manager.registerPlugin("perfmetrics", configurePerfmetrics);
    manager.registerPlugin("healthchecker", configureHealthchecker);
    manager.registerPlugin("regressor", configureRegressor);
    manager.registerPlugin("persyst", configurePersyst);
    manager.registerPlugin("clustering", configureClustering);
    manager.registerPlugin("controller", configureController);
    manager.registerPlugin("filesink", configureFilesink);
    manager.registerPlugin("classifier", configureClassifier);
}

}  // namespace wm::plugins
