#pragma once

// Regressor operator plugin (Case Study 1, power consumption prediction).
// At each computation interval, statistical features (mean, stddev, slope,
// ...) are extracted from the recent readings of every input sensor and
// concatenated into a feature vector; a random forest regresses the target
// sensor's value one interval ahead. Training is automatic: feature vectors
// and responses accumulate in memory until the configured training-set size
// is reached, then the forest is fitted and the operator switches to
// prediction. The model is shared by all units of the operator (paper
// Section VI-B); use unitMode parallel for per-unit models.
//
// Plugin-specific configuration keys:
//   target           <sensor-name>   leaf name of the input to predict
//                                    (default "power")
//   model            randomforest|linear   model family (default
//                                    randomforest; linear = ridge baseline)
//   trainingSamples  <n>             training-set size (default 30000)
//   trees            <n>             forest size (default 32)
//   maxDepth         <n>             tree depth cap (default 12)
//   seed             <n>             RNG seed (default 42)
//   counters         <name> ...      repeatable: inputs treated as monotonic
//                                    counters (differenced before features);
//                                    defaults cover the perfsim counters.

#include <map>
#include <set>
#include <string>

#include "analytics/features.h"
#include "analytics/stats.h"
#include "analytics/linear_regression.h"
#include "analytics/random_forest.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

enum class RegressorModel { kRandomForest, kLinear };

struct RegressorSettings {
    std::string target = "power";
    std::size_t training_samples = 30000;
    RegressorModel model = RegressorModel::kRandomForest;
    analytics::ForestParams forest;
    analytics::LinearRegressionParams linear;
    std::set<std::string> counter_names = {"cpu-cycles", "instructions", "cache-misses",
                                           "vector-ops", "branch-misses", "col_idle"};
};

class RegressorOperator final : public core::OperatorTemplate {
  public:
    RegressorOperator(core::OperatorConfig config, core::OperatorContext context,
                      RegressorSettings settings)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          settings_(std::move(settings)),
          training_set_(settings_.training_samples) {}

    bool modelTrained() const {
        return settings_.model == RegressorModel::kLinear ? linear_.trained()
                                                          : forest_.trained();
    }
    std::size_t trainingSetSize() const { return training_set_.size(); }
    /// OOB RMSE of the forest, or the train RMSE of the linear baseline.
    double oobRmse() const {
        return settings_.model == RegressorModel::kLinear ? linear_.trainRmse()
                                                          : forest_.oobRmse();
    }

    /// Forces training with the currently accumulated samples (benches use
    /// this to train on a shorter-than-default accumulation).
    bool trainNow();

    /// Running mean absolute relative error of the online predictions.
    double onlineRelativeError() const;

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

    /// Operator-level outputs (mapped onto `globalOutput` sensors, in
    /// order): training progress [0,1], OOB RMSE, online mean relative
    /// error — "the average error of a model applied to a set of units"
    /// from the paper's Section V-C.
    std::vector<double> computeOperatorLevel(common::TimestampNs t) override;

    /// Checkpoints the training set, fitted model and running error. The
    /// pending per-unit feature/prediction maps are transient (a one-
    /// interval supervision horizon) and deliberately not persisted.
    bool serializeState(persist::Encoder& encoder) const override;
    bool deserializeState(persist::Decoder& decoder) override;

  private:
    /// Feature vector from the unit's current input windows.
    std::vector<double> buildFeatures(const core::Unit& unit, common::TimestampNs t) const;
    /// Latest value of the unit's target input, if present.
    std::optional<double> currentTarget(const core::Unit& unit) const;

    double predictValue(const std::vector<double>& features) const;

    RegressorSettings settings_;
    analytics::TrainingSet training_set_;
    analytics::RandomForest forest_;
    analytics::LinearRegression linear_;
    /// Features captured at the previous interval, per unit: the supervised
    /// pair is (features at t-1) -> (target at t).
    std::map<std::string, std::vector<double>> pending_features_;
    /// Previous interval's prediction per unit, scored against the next
    /// target reading to track the online error.
    std::map<std::string, double> pending_predictions_;
    analytics::StreamingStats online_error_;
};

std::vector<core::OperatorPtr> configureRegressor(const common::ConfigNode& node,
                                                  const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateRegressor(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

struct PluginCostModel;

/// Capacity hook (wm-check): predicts the training-set and model footprint
/// from the configured trainingSamples/trees/maxDepth; side-effect free.
PluginCostModel regressorCost(const common::ConfigNode& node, std::size_t units,
                              std::size_t inputs);

}  // namespace wm::plugins
