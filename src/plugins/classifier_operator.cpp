#include "plugins/classifier_operator.h"

#include <algorithm>
#include <cmath>

#include "analysis/diagnostic.h"
#include "analytics/features.h"
#include "common/logging.h"
#include "common/string_utils.h"
#include "persist/serializer.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

bool ClassifierOperator::trainNow() {
    if (training_features_.size() < 16) return false;
    const bool ok = forest_.fit(training_features_, training_labels_, settings_.forest);
    if (ok) {
        WM_LOG(kInfo, "classifier")
            << config_.name << ": trained on " << training_features_.size()
            << " samples, " << forest_.classCount()
            << " classes, OOB accuracy = " << forest_.oobAccuracy();
    }
    return ok;
}

std::vector<double> ClassifierOperator::buildFeatures(const core::Unit& unit,
                                                      common::TimestampNs t) const {
    std::vector<std::vector<double>> blocks;
    for (const auto& topic : unit.inputs) {
        const std::string name = common::pathLeaf(topic);
        if (name == settings_.label_sensor) continue;
        const bool monotonic = settings_.counter_names.count(name) > 0;
        blocks.push_back(analytics::extractFeatures(queryInput(topic, t), monotonic));
    }
    return analytics::concatFeatures(blocks);
}

std::optional<std::size_t> ClassifierOperator::currentLabel(const core::Unit& unit) const {
    if (context_.query_engine == nullptr) return std::nullopt;
    for (const auto& topic : unit.inputs) {
        if (common::pathLeaf(topic) != settings_.label_sensor) continue;
        const auto latest = context_.query_engine->latest(topic);
        if (latest && latest->value >= 0.0) {
            return static_cast<std::size_t>(latest->value);
        }
    }
    return std::nullopt;
}

std::vector<core::SensorValue> ClassifierOperator::compute(const core::Unit& unit,
                                                           common::TimestampNs t) {
    std::vector<core::SensorValue> out;
    std::vector<double> features = buildFeatures(unit, t);
    if (features.empty()) return out;

    if (!forest_.trained()) {
        const auto label = currentLabel(unit);
        if (label) {
            training_features_.push_back(std::move(features));
            training_labels_.push_back(*label);
            if (training_features_.size() >= settings_.training_samples) trainNow();
        }
        return out;
    }

    const auto probabilities = forest_.predictProbabilities(features);
    const std::size_t predicted = static_cast<std::size_t>(
        std::max_element(probabilities.begin(), probabilities.end()) -
        probabilities.begin());
    if (!unit.outputs.empty()) {
        out.push_back({unit.outputs[0], {t, static_cast<double>(predicted)}});
    }
    if (unit.outputs.size() > 1) {
        out.push_back({unit.outputs[1], {t, probabilities[predicted]}});
    }
    return out;
}

std::vector<core::OperatorPtr> configureClassifier(const common::ConfigNode& node,
                                                   const core::OperatorContext& context) {
    return configureStandard(
        node, context, "classifier",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode& n) {
            ClassifierSettings settings;
            settings.label_sensor = n.getString("labelSensor", "app-label");
            settings.training_samples =
                static_cast<std::size_t>(n.getInt("trainingSamples", 2000));
            settings.forest.num_trees = static_cast<std::size_t>(n.getInt("trees", 32));
            settings.forest.tree.max_depth =
                static_cast<std::size_t>(n.getInt("maxDepth", 12));
            settings.forest.seed = static_cast<std::uint64_t>(n.getInt("seed", 42));
            const auto counters = n.childrenOf("counters");
            if (!counters.empty()) {
                settings.counter_names.clear();
                for (const auto* counter : counters) {
                    settings.counter_names.insert(counter->value());
                }
            }
            return std::make_shared<ClassifierOperator>(config, ctx, std::move(settings));
        });
}

void validateClassifier(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "classifier");
    for (const char* key : {"trees", "maxDepth", "trainingSamples"}) {
        const auto* child = node.child(key);
        if (child != nullptr && node.getInt(key, 1) <= 0) {
            sink.error("WM0404", std::string("'") + key + "' must be positive",
                       child->line(), child->column(), subject);
        }
    }
    // The label sensor must be among the inputs or training never starts.
    const core::OperatorConfig config = core::parseOperatorConfig(node, "classifier");
    const std::vector<std::string> inputs = patternLeafNames(config.input_patterns);
    const std::string label = node.getString("labelSensor", "app-label");
    if (!inputs.empty() &&
        std::find(inputs.begin(), inputs.end(), label) == inputs.end()) {
        sink.warning("WM0405",
                     "label sensor '" + label +
                         "' is not among the configured inputs; the classifier "
                         "never collects training labels",
                     node.line(), node.column(), subject);
    }
}

PluginCostModel classifierCost(const common::ConfigNode& node, std::size_t units,
                               std::size_t inputs) {
    PluginCostModel cost;
    const auto samples = static_cast<std::size_t>(
        std::max<std::int64_t>(node.getInt("trainingSamples", 2000), 0));
    const std::size_t inputs_per_unit =
        units > 0 ? std::max<std::size_t>(inputs / units, 1)
                  : std::max<std::size_t>(inputs, 1);
    // The label input contributes no feature block.
    const std::size_t feature_dim =
        std::max<std::size_t>(inputs_per_unit, 2) - 1;
    cost.state_bytes =
        samples * (feature_dim * analytics::kFeaturesPerSensor * sizeof(double) +
                   sizeof(std::size_t));
    const auto trees = static_cast<std::size_t>(
        std::max<std::int64_t>(node.getInt("trees", 32), 0));
    const auto depth = static_cast<std::size_t>(
        std::max<std::int64_t>(node.getInt("maxDepth", 12), 0));
    const std::size_t nodes =
        std::min<std::size_t>(std::size_t{1} << std::min<std::size_t>(depth + 1, 24),
                              2 * std::max<std::size_t>(samples, 1));
    cost.state_bytes += trees * nodes * 48;
    cost.ns_per_reading = 150.0;
    return cost;
}

namespace {

/// Fingerprint of the knobs that shape the classifier's model and feature
/// layout; a checkpoint from a different configuration is rejected.
void encodeClassifierFingerprint(persist::Encoder& encoder,
                                 const ClassifierSettings& settings) {
    encoder.putString(settings.label_sensor);
    encoder.putSize(settings.training_samples);
    encoder.putSize(settings.forest.num_trees);
    encoder.putSize(settings.forest.tree.max_depth);
    encoder.putSize(settings.forest.tree.min_samples_split);
    encoder.putSize(settings.forest.tree.min_samples_leaf);
    encoder.putSize(settings.forest.tree.features_per_split);
    encoder.putF64(settings.forest.bootstrap_fraction);
    encoder.putU64(settings.forest.seed);
    encoder.putSize(settings.counter_names.size());
    for (const auto& name : settings.counter_names) encoder.putString(name);
}

}  // namespace

bool ClassifierOperator::serializeState(persist::Encoder& encoder) const {
    persist::Encoder fingerprint;
    encodeClassifierFingerprint(fingerprint, settings_);
    encoder.putString(fingerprint.take());
    encoder.putSize(training_features_.size());
    for (const auto& row : training_features_) {
        encoder.putSize(row.size());
        for (double x : row) encoder.putF64(x);
    }
    encoder.putSize(training_labels_.size());
    for (std::size_t label : training_labels_) encoder.putSize(label);
    forest_.serialize(encoder);
    return true;
}

bool ClassifierOperator::deserializeState(persist::Decoder& decoder) {
    persist::Encoder expected;
    encodeClassifierFingerprint(expected, settings_);
    std::string fingerprint;
    decoder.getString(&fingerprint);
    if (!decoder.ok() || fingerprint != expected.take()) return false;
    std::size_t rows = 0;
    decoder.getSize(&rows);
    std::vector<std::vector<double>> features;
    for (std::size_t i = 0; i < rows && decoder.ok(); ++i) {
        std::size_t dim = 0;
        decoder.getSize(&dim);
        std::vector<double> row(decoder.ok() ? dim : 0, 0.0);
        for (double& x : row) decoder.getF64(&x);
        features.push_back(std::move(row));
    }
    std::size_t label_count = 0;
    decoder.getSize(&label_count);
    std::vector<std::size_t> labels(decoder.ok() ? label_count : 0, 0);
    for (std::size_t& label : labels) decoder.getSize(&label);
    analytics::RandomForestClassifier forest;
    if (!forest.deserialize(decoder)) return false;
    if (!decoder.ok() || features.size() != rows || labels.size() != label_count ||
        features.size() != labels.size()) {
        return false;
    }
    training_features_ = std::move(features);
    training_labels_ = std::move(labels);
    forest_ = std::move(forest);
    return true;
}

}  // namespace wm::plugins
