#include "plugins/perfmetrics_operator.h"

#include <cmath>

#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

namespace {

/// Delta of a monotonic counter over the window, plus the covered time span.
struct CounterDelta {
    double delta = 0.0;
    double span_sec = 0.0;
    bool valid = false;
};

CounterDelta deltaOf(const sensors::ReadingVector& window) {
    CounterDelta out;
    if (window.size() < 2) return out;
    out.delta = window.back().value - window.front().value;
    out.span_sec = static_cast<double>(window.back().timestamp - window.front().timestamp) /
                   static_cast<double>(common::kNsPerSec);
    out.valid = out.delta >= 0.0 && out.span_sec > 0.0;
    return out;
}

}  // namespace

std::vector<core::SensorValue> PerfmetricsOperator::compute(const core::Unit& unit,
                                                            common::TimestampNs t) {
    // Locate the raw counters among the unit's inputs by sensor name.
    CounterDelta cycles, instructions, cache_misses, vector_ops, branch_misses;
    for (const auto& topic : unit.inputs) {
        const std::string name = common::pathLeaf(topic);
        CounterDelta* target = nullptr;
        if (name == "cpu-cycles") {
            target = &cycles;
        } else if (name == "instructions") {
            target = &instructions;
        } else if (name == "cache-misses") {
            target = &cache_misses;
        } else if (name == "vector-ops") {
            target = &vector_ops;
        } else if (name == "branch-misses") {
            target = &branch_misses;
        }
        if (target != nullptr) *target = deltaOf(queryInput(topic, t));
    }

    std::vector<core::SensorValue> out;
    for (const auto& topic : unit.outputs) {
        const std::string metric = common::pathLeaf(topic);
        double value = 0.0;
        bool valid = false;
        if (metric == "cpi" && cycles.valid && instructions.valid &&
            instructions.delta > 0.0) {
            value = cycles.delta / instructions.delta;
            valid = true;
        } else if (metric == "ips" && instructions.valid) {
            value = instructions.delta / instructions.span_sec;
            valid = true;
        } else if (metric == "vecratio" && vector_ops.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = vector_ops.delta / instructions.delta;
            valid = true;
        } else if (metric == "missrate" && cache_misses.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = cache_misses.delta / instructions.delta;
            valid = true;
        } else if (metric == "branchrate" && branch_misses.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = branch_misses.delta / instructions.delta;
            valid = true;
        } else if (metric == "gflops" && vector_ops.valid) {
            // FLOPS proxy: vector operations at 8 DP lanes (KNL AVX-512).
            value = vector_ops.delta * 8.0 / vector_ops.span_sec / 1e9;
            valid = true;
        }
        if (valid && std::isfinite(value)) {
            out.push_back({topic, {t, value}});
        }
    }
    return out;
}

std::vector<core::OperatorPtr> configurePerfmetrics(const common::ConfigNode& node,
                                                    const core::OperatorContext& context) {
    return configureStandard(
        node, context, "perfmetrics",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode&) {
            return std::make_shared<PerfmetricsOperator>(config, ctx);
        });
}

}  // namespace wm::plugins
