#include "plugins/perfmetrics_operator.h"

#include <algorithm>
#include <cmath>

#include "analysis/diagnostic.h"
#include "common/string_utils.h"
#include "plugins/configurator_common.h"

namespace wm::plugins {

namespace {

/// Delta of a monotonic counter over the window, plus the covered time span.
struct CounterDelta {
    double delta = 0.0;
    double span_sec = 0.0;
    bool valid = false;
};

CounterDelta deltaOf(const std::optional<sensors::RangeStats>& stats) {
    CounterDelta out;
    if (!stats || stats->count < 2) return out;
    out.delta = stats->delta();
    out.span_sec = stats->spanSec();
    out.valid = out.delta >= 0.0 && out.span_sec > 0.0;
    return out;
}

}  // namespace

std::vector<core::SensorValue> PerfmetricsOperator::compute(const core::Unit& unit,
                                                            common::TimestampNs t) {
    // Locate the raw counters among the unit's inputs by sensor name.
    CounterDelta cycles, instructions, cache_misses, vector_ops, branch_misses;
    for (std::size_t i = 0; i < unit.inputs.size(); ++i) {
        const std::string name = common::pathLeaf(unit.inputs[i]);
        CounterDelta* target = nullptr;
        if (name == "cpu-cycles") {
            target = &cycles;
        } else if (name == "instructions") {
            target = &instructions;
        } else if (name == "cache-misses") {
            target = &cache_misses;
        } else if (name == "vector-ops") {
            target = &vector_ops;
        } else if (name == "branch-misses") {
            target = &branch_misses;
        }
        // Fused counter delta: first/last/count in one cache pass, no
        // window materialisation (docs/PERFORMANCE.md).
        if (target != nullptr) *target = deltaOf(inputStats(unit, i, t));
    }

    std::vector<core::SensorValue> out;
    for (const auto& topic : unit.outputs) {
        const std::string metric = common::pathLeaf(topic);
        double value = 0.0;
        bool valid = false;
        if (metric == "cpi" && cycles.valid && instructions.valid &&
            instructions.delta > 0.0) {
            value = cycles.delta / instructions.delta;
            valid = true;
        } else if (metric == "ips" && instructions.valid) {
            value = instructions.delta / instructions.span_sec;
            valid = true;
        } else if (metric == "vecratio" && vector_ops.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = vector_ops.delta / instructions.delta;
            valid = true;
        } else if (metric == "missrate" && cache_misses.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = cache_misses.delta / instructions.delta;
            valid = true;
        } else if (metric == "branchrate" && branch_misses.valid && instructions.valid &&
                   instructions.delta > 0.0) {
            value = branch_misses.delta / instructions.delta;
            valid = true;
        } else if (metric == "gflops" && vector_ops.valid) {
            // FLOPS proxy: vector operations at 8 DP lanes (KNL AVX-512).
            value = vector_ops.delta * 8.0 / vector_ops.span_sec / 1e9;
            valid = true;
        }
        if (valid && std::isfinite(value)) {
            out.push_back({topic, {t, value}});
        }
    }
    return out;
}

std::vector<core::OperatorPtr> configurePerfmetrics(const common::ConfigNode& node,
                                                    const core::OperatorContext& context) {
    return configureStandard(
        node, context, "perfmetrics",
        [](const core::OperatorConfig& config, const core::OperatorContext& ctx,
           const common::ConfigNode&) {
            return std::make_shared<PerfmetricsOperator>(config, ctx);
        });
}

void validatePerfmetrics(const common::ConfigNode& node, analysis::DiagnosticSink& sink) {
    const std::string subject = operatorSubject(node, "perfmetrics");
    const core::OperatorConfig config = core::parseOperatorConfig(node, "perfmetrics");
    const std::vector<std::string> inputs = patternLeafNames(config.input_patterns);
    const std::vector<std::string> outputs = patternLeafNames(config.output_patterns);

    // Metric selection happens by output leaf name; anything unknown is
    // silently skipped at runtime (compute() emits no reading for it).
    struct MetricCounters {
        const char* metric;
        std::vector<const char*> counters;
    };
    static const std::vector<MetricCounters> kMetrics = {
        {"cpi", {"cpu-cycles", "instructions"}},
        {"ips", {"instructions"}},
        {"vecratio", {"vector-ops", "instructions"}},
        {"missrate", {"cache-misses", "instructions"}},
        {"branchrate", {"branch-misses", "instructions"}},
        {"gflops", {"vector-ops"}},
    };
    for (const auto& output : outputs) {
        const auto metric =
            std::find_if(kMetrics.begin(), kMetrics.end(),
                         [&output](const MetricCounters& m) { return output == m.metric; });
        if (metric == kMetrics.end()) {
            sink.error("WM0404",
                       "output '" + output +
                           "' is not a perfmetrics metric (known: cpi, ips, vecratio, "
                           "missrate, branchrate, gflops); it would never produce a value",
                       node.line(), node.column(), subject);
            continue;
        }
        for (const char* counter : metric->counters) {
            if (std::find(inputs.begin(), inputs.end(), counter) == inputs.end()) {
                sink.warning("WM0405",
                             "metric '" + output + "' needs input counter '" + counter +
                                 "', which is not among the configured inputs",
                             node.line(), node.column(), subject);
            }
        }
    }
}

}  // namespace wm::plugins
