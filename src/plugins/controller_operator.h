#pragma once

// Controller operator plugin: the feedback-loop endpoint of an analysis
// pipeline (paper Section IV-B-d, "control operators at the end of the
// pipeline that use processed data to tune system knobs"; runtime
// optimization in the taxonomy of Section II). For each unit, the latest
// value of the first input sensor is compared with a setpoint and a knob on
// the unit's component is adjusted with a clamped integrating controller:
//
//     knob <- clamp(knob - gain * (value - setpoint) / setpoint)
//
// e.g. power capping: input = node power, setpoint = cap, knob = DVFS
// frequency scale. The knob's current value is also emitted on the unit's
// output sensor, so the control action is itself monitored.
//
// Plugin-specific configuration keys:
//   knob       <name>     actuator name passed to the host (default "dvfs")
//   setpoint   <value>    control target (required)
//   gain       <g>        integration gain (default 0.1)
//   knobMin    <v>        clamp range (defaults 0.5 / 1.0, DVFS-style)
//   knobMax    <v>
//   deadband   <fraction> no actuation while |error|/setpoint is below this
//                         (default 0.02)

#include <map>
#include <string>

#include "common/mutex.h"
#include "core/operator.h"

namespace wm::analysis {
class DiagnosticSink;
}

namespace wm::plugins {

struct ControllerSettings {
    std::string knob = "dvfs";
    double setpoint = 0.0;
    double gain = 0.1;
    double knob_min = 0.5;
    double knob_max = 1.0;
    double deadband = 0.02;
};

class ControllerOperator final : public core::OperatorTemplate {
  public:
    ControllerOperator(core::OperatorConfig config, core::OperatorContext context,
                       ControllerSettings settings)
        : core::OperatorTemplate(std::move(config), std::move(context)),
          settings_(std::move(settings)) {}

    /// Current knob value held for a unit (knob_max until first actuation).
    double knobValueOf(const std::string& unit_name) const;

    std::uint64_t actuationCount() const { return actuations_.load(); }

  protected:
    std::vector<core::SensorValue> compute(const core::Unit& unit,
                                           common::TimestampNs t) override;

  private:
    ControllerSettings settings_;
    mutable common::Mutex knob_mutex_{"ControllerOperator.knobs",
                                      common::LockRank::kPluginState};
    std::map<std::string, double> knob_values_ WM_GUARDED_BY(knob_mutex_);  // keyed by unit name
    std::atomic<std::uint64_t> actuations_{0};
};

std::vector<core::OperatorPtr> configureController(const common::ConfigNode& node,
                                                   const core::OperatorContext& context);

/// Static-analysis hook (wm-check): plugin-specific configuration
/// checks over one operator block; side-effect free.
void validateController(const common::ConfigNode& node,
                   analysis::DiagnosticSink& sink);

}  // namespace wm::plugins
