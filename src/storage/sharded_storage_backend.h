#pragma once

// Sharded storage plane (docs/PERFORMANCE.md, "Sharded ingest and
// storage"): N independent StorageBackend shards behind the Storage
// interface, with topics dealt to shards by the stable string-hash key in
// shard_map.h. Each shard has its own reader/writer lock and — with
// durability on — its own WAL and snapshot in a `shard-NNN/` subdirectory,
// so one shard's long discovery scan (topics(), stats(), a tree rebuild)
// or checkpoint no longer stalls ingest into the others. A topic lives in
// exactly one shard, which keeps single-topic operations bit-identical to
// the unsharded backend; whole-store operations aggregate shard by shard.
//
// Invariant: at most one shard lock is ever held at a time. Every shard
// mutex carries LockRank::kStorage, so holding two would trip the runtime
// lock-order checker — aggregation releases shard k before touching shard
// k+1, trading a consistent point-in-time snapshot (which stats() never
// promised) for ingest availability.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/shard_map.h"
#include "storage/storage_backend.h"

namespace wm::storage {

class ShardedStorageBackend final : public Storage {
  public:
    static constexpr std::size_t kMaxShards = 64;

    /// `shard_count` is clamped to [1, kMaxShards]. `table` is the topic
    /// table used for shard memoization (the process-wide instance when
    /// null); ids must agree with the cache plane's table.
    explicit ShardedStorageBackend(std::size_t shard_count,
                                   common::TimestampNs default_ttl_ns = 0,
                                   sensors::TopicTable* table = nullptr);

    std::size_t shardCount() const { return shards_.size(); }
    StorageBackend& shard(std::size_t index) { return *shards_[index]; }
    const StorageBackend& shard(std::size_t index) const { return *shards_[index]; }
    /// Stable shard of `topic` (string-hash key, memoized by interned id).
    std::size_t shardOf(const std::string& topic) const { return map_.shardOf(topic); }

    // Single-topic operations: routed to the owning shard.
    bool insert(const std::string& topic, const sensors::Reading& reading) override;
    std::size_t insertBatch(const std::string& topic,
                            const sensors::ReadingVector& readings,
                            sensors::ReadingVector* rejected = nullptr) override;
    void publishMetadata(const sensors::SensorMetadata& metadata) override;
    std::optional<sensors::SensorMetadata> metadataFor(
        const std::string& topic) const override;
    sensors::ReadingVector query(const std::string& topic, common::TimestampNs t0,
                                 common::TimestampNs t1) const override;
    std::optional<sensors::Reading> latest(const std::string& topic) const override;
    bool dropSensor(const std::string& topic) override;

    // Whole-store operations: aggregated across shards, one shard lock at
    // a time. Topic lists are re-sorted so results match the unsharded
    // backend's sorted-map iteration order exactly.
    std::vector<std::string> topics() const override;
    std::vector<std::string> topicsMatching(const std::string& filter) const override;
    std::size_t pruneExpired() override;
    StorageStats stats() const override;
    std::size_t memoryBytes() const override;

    void setDefaultTtl(common::TimestampNs ttl_ns) override;
    common::TimestampNs defaultTtlNs() const override;
    /// Forwards the simulated per-query latency knob to every shard.
    void setSimulatedQueryLatency(common::TimestampNs latency_ns);

    /// Enables per-shard durability: shard i persists under
    /// `options.directory`/shard-NNN/ with the configured file names
    /// (absolute file names are rejected — they cannot be sharded). Shards
    /// recover independently; false when any shard fails to come up.
    bool enableDurability(const DurabilityOptions& options) override;
    bool durable() const override;
    /// Checkpoints every shard; true only when all succeed.
    bool checkpointNow() override;
    /// True only while every shard's WAL is accepting appends.
    bool healthy() const override;
    /// Aggregated counters; booleans are ORed (any shard recovered / any
    /// shard truncated a torn tail shows up here).
    DurabilityStats durabilityStats() const override;

    /// Rows sorted by topic across all shards, matching the unsharded
    /// dump byte for byte. Reads through query(), so it bumps the shards'
    /// query counters.
    bool dumpCsv(const std::string& path) const override;

  private:
    mutable ShardMap map_;
    std::vector<std::unique_ptr<StorageBackend>> shards_;
};

}  // namespace wm::storage
