#pragma once

// Topic -> shard routing for the sharded ingest and storage planes
// (docs/PERFORMANCE.md, "Sharded ingest and storage").
//
// Shard key: FNV-1a over the topic *string*, reduced modulo the shard
// count. Interned TopicIds are assigned in first-contact order, which
// differs across restarts — hashing the id would re-deal every topic to a
// different shard (and therefore a different WAL) after a crash, breaking
// per-shard replay. Hashing the string keeps a topic's shard stable for
// the lifetime of the deployment while the interned id still serves as the
// lookup key: ShardMap memoizes the computed shard in a lock-free
// id-indexed chunk array, so the per-reading hot path pays one acquire
// load after a topic's first contact, never a re-hash.
//
// Subtree ownership (which Collect Agent ingests which top-level subtree)
// uses a different, coarser rule — sorted unique top-level prefixes dealt
// round-robin — shared between the daemon and the wm-cost capacity
// analyzer via assignSubtreeShards() so the static per-shard load
// prediction matches what wintermuted actually deploys.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sensors/topic_table.h"

namespace wm::storage {

/// FNV-1a(topic) % shard_count; the stable per-topic shard key.
std::size_t shardOfTopic(std::string_view topic, std::size_t shard_count);

/// Deterministic subtree -> shard assignment: `prefixes` is deduplicated
/// and sorted lexicographically, then dealt round-robin (sorted index %
/// shard_count). Both wintermuted (Collect Agent subtree ownership) and
/// the capacity analyzer (per-shard rate prediction) use this exact rule.
std::map<std::string, std::size_t> assignSubtreeShards(std::vector<std::string> prefixes,
                                                       std::size_t shard_count);

/// Memoizing topic -> shard resolver over an interned topic table.
/// shardOf() interns the topic (once per topic per process) and caches the
/// string-hash shard in a lock-free chunked array indexed by TopicId.
class ShardMap {
  public:
    explicit ShardMap(std::size_t shard_count, sensors::TopicTable* table = nullptr);
    ~ShardMap();

    ShardMap(const ShardMap&) = delete;
    ShardMap& operator=(const ShardMap&) = delete;

    std::size_t shardCount() const { return shard_count_; }

    /// Shard of `topic`; equals shardOfTopic(topic, shardCount()).
    std::size_t shardOf(std::string_view topic);

  private:
    // Chunked memo mirroring TopicTable's layout: 1024 slots per chunk,
    // chunk pointers published with CAS (the losing allocator frees its
    // copy). Slots hold the shard + 1, 0 meaning "not yet computed" — the
    // value is a pure function of the topic string, so racing writers
    // store the same value and a relaxed read is safe.
    static constexpr std::size_t kChunkBits = 10;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
    static constexpr std::size_t kMaxChunks = 1 << 14;  // 16M topics

    struct Chunk {
        std::atomic<std::uint32_t> slots[kChunkSize] = {};
    };

    std::size_t shard_count_;
    sensors::TopicTable* table_;
    std::vector<std::atomic<Chunk*>> chunks_{kMaxChunks};
};

}  // namespace wm::storage
