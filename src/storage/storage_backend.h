#pragma once

// Time-series storage backend, the stand-in for DCDB's Apache Cassandra
// deployment (see DESIGN.md, substitutions). The Collect Agent inserts every
// reading it receives; the Query Engine falls back to it when the requested
// range is not covered by a sensor cache. The store keeps one ordered series
// per sensor topic, supports range queries, TTL-based pruning, and CSV
// persistence so long experiments (e.g. the 2-week clustering windows of
// Case Study 3) can be checkpointed.
//
// Durability (docs/RESILIENCE.md, "Durability model"): with
// enableDurability() the backend becomes crash-consistent — every mutation
// is framed into a write-ahead log *before* it is applied (an insert whose
// WAL append fails is rejected, so the caller's quarantine path keeps it),
// and periodic snapshots compact the log. A restarted backend pointed at the
// same directory replays snapshot + WAL back to the exact pre-crash state;
// replay skips readings already present, so replaying twice (or a log with
// a truncated torn tail) converges to the same state.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/time_utils.h"
#include "persist/wal.h"
#include "sensors/metadata.h"
#include "sensors/reading.h"

namespace wm::storage {

struct StorageStats {
    std::size_t sensor_count = 0;
    std::size_t reading_count = 0;
    std::uint64_t inserts = 0;
    std::uint64_t queries = 0;
    /// Inserts refused by the injected fault point "storage.insert".
    std::uint64_t rejected_inserts = 0;
    /// Exact (timestamp, value) redeliveries absorbed as already stored —
    /// the idempotence backstop for wire replay after a crash+restart.
    std::uint64_t duplicate_drops = 0;
};

/// Where and how the backend persists its state.
struct DurabilityOptions {
    /// Directory holding the WAL and snapshot (created if missing).
    std::string directory;
    /// File names, resolved inside `directory` unless absolute.
    std::string wal_file = "storage.wal";
    std::string snapshot_file = "storage.snap";
    /// Compact (snapshot + WAL reset) after this many logged records;
    /// 0 = only on explicit checkpointNow() calls.
    std::uint64_t snapshot_every = 4096;
};

struct DurabilityStats {
    bool enabled = false;
    bool recovered_from_snapshot = false;
    std::uint64_t wal_records_logged = 0;
    std::uint64_t wal_records_replayed = 0;
    std::uint64_t wal_append_failures = 0;
    std::uint64_t torn_tail_truncations = 0;
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_failures = 0;
};

/// Outcome of loadCsv(): how many rows were ingested, how many were
/// malformed (and skipped), how many well-formed rows the backend refused
/// (fault injection / failed WAL append). Truthy when the file was readable.
struct CsvLoadResult {
    std::size_t rows_loaded = 0;
    std::size_t rows_malformed = 0;
    std::size_t rows_rejected = 0;
    bool ok = false;
    explicit operator bool() const { return ok; }
};

/// Abstract storage plane. The Collect Agent, Query Engine and daemon all
/// program against this interface so the deployment can pick between the
/// single-lock StorageBackend and the ShardedStorageBackend (per-shard
/// locks and WALs, docs/PERFORMANCE.md "Sharded ingest") without touching
/// the consumers. Virtual dispatch is noise next to the lock acquisition
/// every one of these operations performs.
class Storage {
  public:
    virtual ~Storage() = default;

    /// Inserts one reading; false when refused (fault injection or a failed
    /// WAL append — the caller's quarantine path keeps the reading).
    virtual bool insert(const std::string& topic, const sensors::Reading& reading) = 0;

    /// Inserts a batch for one topic (the MQTT message granularity);
    /// refused readings are appended to `*rejected` when non-null.
    virtual std::size_t insertBatch(const std::string& topic,
                                    const sensors::ReadingVector& readings,
                                    sensors::ReadingVector* rejected = nullptr) = 0;

    virtual void publishMetadata(const sensors::SensorMetadata& metadata) = 0;
    virtual std::optional<sensors::SensorMetadata> metadataFor(
        const std::string& topic) const = 0;

    virtual sensors::ReadingVector query(const std::string& topic, common::TimestampNs t0,
                                         common::TimestampNs t1) const = 0;
    virtual std::optional<sensors::Reading> latest(const std::string& topic) const = 0;
    virtual std::vector<std::string> topics() const = 0;
    virtual std::vector<std::string> topicsMatching(const std::string& filter) const = 0;

    virtual std::size_t pruneExpired() = 0;
    virtual bool dropSensor(const std::string& topic) = 0;
    virtual StorageStats stats() const = 0;
    /// Estimated heap footprint of the stored series (docs/PERFORMANCE.md,
    /// cross-validated against the wm-cost capacity model).
    virtual std::size_t memoryBytes() const = 0;

    virtual void setDefaultTtl(common::TimestampNs ttl_ns) = 0;
    virtual common::TimestampNs defaultTtlNs() const = 0;

    virtual bool enableDurability(const DurabilityOptions& options) = 0;
    virtual bool durable() const = 0;
    virtual bool checkpointNow() = 0;
    virtual bool healthy() const = 0;
    virtual DurabilityStats durabilityStats() const = 0;

    virtual bool dumpCsv(const std::string& path) const = 0;
    /// Loads a CSV dump ("topic,timestamp,value" rows) through insert(),
    /// tolerating malformed rows. Shared across implementations.
    CsvLoadResult loadCsv(const std::string& path);
};

class StorageBackend : public Storage {
  public:
    /// `default_ttl_ns` prunes readings older than (newest - ttl) per sensor;
    /// 0 disables pruning.
    explicit StorageBackend(common::TimestampNs default_ttl_ns = 0)
        : default_ttl_ns_(default_ttl_ns) {}

    /// Sets the retention TTL (`collectagent { storageTtl }`). Call before
    /// concurrent use: the TTL is read on every insert without a lock.
    void setDefaultTtl(common::TimestampNs ttl_ns) override { default_ttl_ns_ = ttl_ns; }
    common::TimestampNs defaultTtlNs() const override { return default_ttl_ns_; }

    /// Simulates the per-query round-trip latency of a networked backend
    /// (the production deployment queries Cassandra over the network);
    /// applied to query()/latest(). 0 disables. For experiments only.
    void setSimulatedQueryLatency(common::TimestampNs latency_ns) {
        simulated_latency_ns_.store(latency_ns, std::memory_order_relaxed);
    }

    /// Turns on crash-consistent persistence: recovers any existing state in
    /// `options.directory` (snapshot first, then WAL replay with torn-tail
    /// truncation) into this backend, then starts logging every mutation.
    /// Call before concurrent use. Returns false when the directory or WAL
    /// cannot be set up (the backend stays volatile).
    bool enableDurability(const DurabilityOptions& options) override;
    bool durable() const override { return durable_.load(std::memory_order_acquire); }

    /// Writes a snapshot of the full state and, on success, resets the WAL
    /// (compaction). False when durability is off or the snapshot failed —
    /// a failed snapshot keeps the previous snapshot + WAL intact.
    bool checkpointNow() override;

    /// False while the WAL is refusing appends (inserts are being rejected);
    /// a successful append or checkpoint clears it. Health-check hook for
    /// the supervisor. Always true with durability off.
    bool healthy() const override { return wal_healthy_.load(std::memory_order_acquire); }

    DurabilityStats durabilityStats() const override;

    /// Inserts one reading for `topic`. Out-of-order inserts are supported.
    /// Returns false when the insert is refused (fault point
    /// "storage.insert": a failing or overloaded backend) or, with
    /// durability on, when its WAL append fails (the reading would not
    /// survive a crash, so it is not applied).
    bool insert(const std::string& topic, const sensors::Reading& reading) override;

    /// Inserts a batch for one topic (the MQTT message granularity).
    /// Each reading is accepted or refused individually; refused readings
    /// are appended to `*rejected` when non-null so callers can quarantine
    /// them instead of losing the whole batch. Returns the number inserted.
    std::size_t insertBatch(const std::string& topic,
                            const sensors::ReadingVector& readings,
                            sensors::ReadingVector* rejected = nullptr) override;

    /// Records sensor metadata (idempotent).
    void publishMetadata(const sensors::SensorMetadata& metadata) override;
    std::optional<sensors::SensorMetadata> metadataFor(
        const std::string& topic) const override;

    /// All readings of `topic` with t0 <= timestamp <= t1, in time order.
    sensors::ReadingVector query(const std::string& topic, common::TimestampNs t0,
                                 common::TimestampNs t1) const override;

    /// Most recent reading of `topic`.
    std::optional<sensors::Reading> latest(const std::string& topic) const override;

    /// All known sensor topics, sorted.
    std::vector<std::string> topics() const override;

    /// Topics matching an MQTT-style filter (used by tree reconstruction).
    std::vector<std::string> topicsMatching(const std::string& filter) const override;

    /// Drops readings older than each sensor's TTL; returns readings removed.
    std::size_t pruneExpired() override;

    /// Removes all data for a topic; returns true if it existed.
    bool dropSensor(const std::string& topic) override;

    StorageStats stats() const override;

    /// Per-series map-node/struct overhead assumed by memoryBytes(); kept in
    /// sync with the wm-cost capacity model (src/analysis/capacity.cpp).
    static constexpr std::size_t kSeriesOverheadEstimateBytes = 128;

    /// Estimated heap bytes held by the series map (topic keys, metadata,
    /// reading vectors). An estimate, not an allocator census.
    std::size_t memoryBytes() const override;

    /// CSV persistence: "topic,timestamp,value" rows, sorted by topic.
    bool dumpCsv(const std::string& path) const override;

  private:
    struct Series {
        sensors::SensorMetadata metadata;
        sensors::ReadingVector readings;  // kept sorted by timestamp
    };

    void simulateLatency() const;

    /// WAL-first mutation logging; true when durability is off. A false
    /// return means the mutation must not be applied.
    bool logRecord(const std::string& payload) WM_REQUIRES(mutex_);
    /// Applies one replayed WAL record (decoding failures are counted and
    /// skipped, never fatal). Called with mutex_ held, but through the
    /// replay std::function, which the static analysis cannot see through.
    void applyWalRecord(std::string_view payload) WM_NO_THREAD_SAFETY_ANALYSIS;
    /// Snapshot + WAL reset with the write lock already held.
    bool checkpointLocked() WM_REQUIRES(mutex_);
    /// Compacts when snapshot_every is reached.
    void maybeCheckpointLocked() WM_REQUIRES(mutex_);

    std::string encodeStateLocked() const WM_REQUIRES(mutex_);
    bool decodeState(const std::string& payload, std::uint32_t version)
        WM_REQUIRES(mutex_);

    mutable common::SharedMutex mutex_{"StorageBackend", common::LockRank::kStorage};
    std::map<std::string, Series> series_ WM_GUARDED_BY(mutex_);
    common::TimestampNs default_ttl_ns_;  // set before concurrent use
    std::atomic<common::TimestampNs> simulated_latency_ns_{0};
    // Atomics, not guarded: query()/latest() bump them under a *shared* lock,
    // so plain integers would race between concurrent readers.
    mutable std::atomic<std::uint64_t> inserts_{0};
    mutable std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> duplicate_drops_{0};

    // Durability plumbing; all mutations happen under the write lock.
    std::unique_ptr<persist::WalWriter> wal_ WM_GUARDED_BY(mutex_);
    std::string snapshot_path_ WM_GUARDED_BY(mutex_);
    std::uint64_t snapshot_every_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t records_since_checkpoint_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t wal_records_logged_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t wal_records_replayed_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t wal_append_failures_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t torn_tail_truncations_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t snapshots_written_ WM_GUARDED_BY(mutex_) = 0;
    std::uint64_t snapshot_failures_ WM_GUARDED_BY(mutex_) = 0;
    bool recovered_from_snapshot_ WM_GUARDED_BY(mutex_) = false;
    std::atomic<bool> durable_{false};
    std::atomic<bool> wal_healthy_{true};
};

}  // namespace wm::storage
