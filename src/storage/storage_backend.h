#pragma once

// Time-series storage backend, the stand-in for DCDB's Apache Cassandra
// deployment (see DESIGN.md, substitutions). The Collect Agent inserts every
// reading it receives; the Query Engine falls back to it when the requested
// range is not covered by a sensor cache. The store keeps one ordered series
// per sensor topic, supports range queries, TTL-based pruning, and CSV
// persistence so long experiments (e.g. the 2-week clustering windows of
// Case Study 3) can be checkpointed.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/time_utils.h"
#include "sensors/metadata.h"
#include "sensors/reading.h"

namespace wm::storage {

struct StorageStats {
    std::size_t sensor_count = 0;
    std::size_t reading_count = 0;
    std::uint64_t inserts = 0;
    std::uint64_t queries = 0;
    /// Inserts refused by the injected fault point "storage.insert".
    std::uint64_t rejected_inserts = 0;
};

class StorageBackend {
  public:
    /// `default_ttl_ns` prunes readings older than (newest - ttl) per sensor;
    /// 0 disables pruning.
    explicit StorageBackend(common::TimestampNs default_ttl_ns = 0)
        : default_ttl_ns_(default_ttl_ns) {}

    /// Simulates the per-query round-trip latency of a networked backend
    /// (the production deployment queries Cassandra over the network);
    /// applied to query()/latest(). 0 disables. For experiments only.
    void setSimulatedQueryLatency(common::TimestampNs latency_ns) {
        simulated_latency_ns_.store(latency_ns, std::memory_order_relaxed);
    }

    /// Inserts one reading for `topic`. Out-of-order inserts are supported.
    /// Returns false when the insert is refused (fault point
    /// "storage.insert": a failing or overloaded backend).
    bool insert(const std::string& topic, const sensors::Reading& reading);

    /// Inserts a batch for one topic (the MQTT message granularity).
    /// Each reading is accepted or refused individually; refused readings
    /// are appended to `*rejected` when non-null so callers can quarantine
    /// them instead of losing the whole batch. Returns the number inserted.
    std::size_t insertBatch(const std::string& topic,
                            const sensors::ReadingVector& readings,
                            sensors::ReadingVector* rejected = nullptr);

    /// Records sensor metadata (idempotent).
    void publishMetadata(const sensors::SensorMetadata& metadata);
    std::optional<sensors::SensorMetadata> metadataFor(const std::string& topic) const;

    /// All readings of `topic` with t0 <= timestamp <= t1, in time order.
    sensors::ReadingVector query(const std::string& topic, common::TimestampNs t0,
                                 common::TimestampNs t1) const;

    /// Most recent reading of `topic`.
    std::optional<sensors::Reading> latest(const std::string& topic) const;

    /// All known sensor topics, sorted.
    std::vector<std::string> topics() const;

    /// Topics matching an MQTT-style filter (used by tree reconstruction).
    std::vector<std::string> topicsMatching(const std::string& filter) const;

    /// Drops readings older than each sensor's TTL; returns readings removed.
    std::size_t pruneExpired();

    /// Removes all data for a topic; returns true if it existed.
    bool dropSensor(const std::string& topic);

    StorageStats stats() const;

    /// CSV persistence: "topic,timestamp,value" rows.
    bool dumpCsv(const std::string& path) const;
    bool loadCsv(const std::string& path);

  private:
    struct Series {
        sensors::SensorMetadata metadata;
        sensors::ReadingVector readings;  // kept sorted by timestamp
    };

    void simulateLatency() const;

    mutable common::SharedMutex mutex_{"StorageBackend", common::LockRank::kStorage};
    std::map<std::string, Series> series_ WM_GUARDED_BY(mutex_);
    common::TimestampNs default_ttl_ns_;  // immutable after construction
    std::atomic<common::TimestampNs> simulated_latency_ns_{0};
    // Atomics, not guarded: query()/latest() bump them under a *shared* lock,
    // so plain integers would race between concurrent readers.
    mutable std::atomic<std::uint64_t> inserts_{0};
    mutable std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace wm::storage
