#include "storage/shard_map.h"

#include <algorithm>

namespace wm::storage {

std::size_t shardOfTopic(std::string_view topic, std::size_t shard_count) {
    if (shard_count <= 1) return 0;
    // FNV-1a, 64-bit.
    std::uint64_t hash = 1469598103934665603ull;
    for (const char c : topic) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return static_cast<std::size_t>(hash % shard_count);
}

std::map<std::string, std::size_t> assignSubtreeShards(std::vector<std::string> prefixes,
                                                       std::size_t shard_count) {
    std::sort(prefixes.begin(), prefixes.end());
    prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
    std::map<std::string, std::size_t> assignment;
    if (shard_count == 0) return assignment;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
        assignment[prefixes[i]] = i % shard_count;
    }
    return assignment;
}

ShardMap::ShardMap(std::size_t shard_count, sensors::TopicTable* table)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      table_(table != nullptr ? table : &sensors::TopicTable::instance()) {}

ShardMap::~ShardMap() {
    for (auto& slot : chunks_) {
        delete slot.load(std::memory_order_acquire);
    }
}

std::size_t ShardMap::shardOf(std::string_view topic) {
    if (shard_count_ == 1) return 0;
    const sensors::TopicId id = table_->intern(topic);
    const std::size_t chunk_index = id >> kChunkBits;
    if (chunk_index >= kMaxChunks) return shardOfTopic(topic, shard_count_);
    Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
        auto* fresh = new Chunk();
        if (chunks_[chunk_index].compare_exchange_strong(chunk, fresh,
                                                         std::memory_order_acq_rel,
                                                         std::memory_order_acquire)) {
            chunk = fresh;
        } else {
            delete fresh;  // another thread won the publication race
        }
    }
    std::atomic<std::uint32_t>& slot = chunk->slots[id & (kChunkSize - 1)];
    const std::uint32_t memo = slot.load(std::memory_order_relaxed);
    if (memo != 0) return memo - 1;
    const std::size_t shard = shardOfTopic(topic, shard_count_);
    slot.store(static_cast<std::uint32_t>(shard) + 1, std::memory_order_relaxed);
    return shard;
}

}  // namespace wm::storage
