#include "storage/sharded_storage_backend.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/logging.h"

namespace wm::storage {

namespace {

std::string shardDirectory(const std::string& base, std::size_t index) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "shard-%03zu", index);
    return (std::filesystem::path(base) / suffix).string();
}

}  // namespace

ShardedStorageBackend::ShardedStorageBackend(std::size_t shard_count,
                                             common::TimestampNs default_ttl_ns,
                                             sensors::TopicTable* table)
    : map_(std::clamp<std::size_t>(shard_count, 1, kMaxShards), table) {
    shards_.reserve(map_.shardCount());
    for (std::size_t i = 0; i < map_.shardCount(); ++i) {
        shards_.push_back(std::make_unique<StorageBackend>(default_ttl_ns));
    }
}

bool ShardedStorageBackend::insert(const std::string& topic,
                                   const sensors::Reading& reading) {
    return shards_[map_.shardOf(topic)]->insert(topic, reading);
}

std::size_t ShardedStorageBackend::insertBatch(const std::string& topic,
                                               const sensors::ReadingVector& readings,
                                               sensors::ReadingVector* rejected) {
    return shards_[map_.shardOf(topic)]->insertBatch(topic, readings, rejected);
}

void ShardedStorageBackend::publishMetadata(const sensors::SensorMetadata& metadata) {
    shards_[map_.shardOf(metadata.topic)]->publishMetadata(metadata);
}

std::optional<sensors::SensorMetadata> ShardedStorageBackend::metadataFor(
    const std::string& topic) const {
    return shards_[map_.shardOf(topic)]->metadataFor(topic);
}

sensors::ReadingVector ShardedStorageBackend::query(const std::string& topic,
                                                    common::TimestampNs t0,
                                                    common::TimestampNs t1) const {
    return shards_[map_.shardOf(topic)]->query(topic, t0, t1);
}

std::optional<sensors::Reading> ShardedStorageBackend::latest(
    const std::string& topic) const {
    return shards_[map_.shardOf(topic)]->latest(topic);
}

bool ShardedStorageBackend::dropSensor(const std::string& topic) {
    return shards_[map_.shardOf(topic)]->dropSensor(topic);
}

std::vector<std::string> ShardedStorageBackend::topics() const {
    std::vector<std::string> out;
    for (const auto& shard : shards_) {
        auto part = shard->topics();
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string> ShardedStorageBackend::topicsMatching(
    const std::string& filter) const {
    std::vector<std::string> out;
    for (const auto& shard : shards_) {
        auto part = shard->topicsMatching(filter);
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t ShardedStorageBackend::pruneExpired() {
    std::size_t removed = 0;
    for (const auto& shard : shards_) removed += shard->pruneExpired();
    return removed;
}

StorageStats ShardedStorageBackend::stats() const {
    StorageStats total;
    for (const auto& shard : shards_) {
        const StorageStats part = shard->stats();
        total.sensor_count += part.sensor_count;
        total.reading_count += part.reading_count;
        total.inserts += part.inserts;
        total.queries += part.queries;
        total.rejected_inserts += part.rejected_inserts;
        total.duplicate_drops += part.duplicate_drops;
    }
    return total;
}

std::size_t ShardedStorageBackend::memoryBytes() const {
    std::size_t total = sizeof(*this);
    for (const auto& shard : shards_) total += shard->memoryBytes();
    return total;
}

void ShardedStorageBackend::setDefaultTtl(common::TimestampNs ttl_ns) {
    for (const auto& shard : shards_) shard->setDefaultTtl(ttl_ns);
}

common::TimestampNs ShardedStorageBackend::defaultTtlNs() const {
    return shards_.front()->defaultTtlNs();
}

void ShardedStorageBackend::setSimulatedQueryLatency(common::TimestampNs latency_ns) {
    for (const auto& shard : shards_) shard->setSimulatedQueryLatency(latency_ns);
}

bool ShardedStorageBackend::enableDurability(const DurabilityOptions& options) {
    if ((!options.wal_file.empty() && options.wal_file.front() == '/') ||
        (!options.snapshot_file.empty() && options.snapshot_file.front() == '/')) {
        WM_LOG(kError, "storage")
            << "sharded durability requires relative WAL/snapshot file names "
            << "(per-shard directories), got " << options.wal_file << " / "
            << options.snapshot_file;
        return false;
    }
    bool ok = true;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        DurabilityOptions shard_options = options;
        shard_options.directory = shardDirectory(options.directory, i);
        ok = shards_[i]->enableDurability(shard_options) && ok;
    }
    return ok;
}

bool ShardedStorageBackend::durable() const {
    for (const auto& shard : shards_) {
        if (!shard->durable()) return false;
    }
    return true;
}

bool ShardedStorageBackend::checkpointNow() {
    bool ok = true;
    for (const auto& shard : shards_) ok = shard->checkpointNow() && ok;
    return ok;
}

bool ShardedStorageBackend::healthy() const {
    for (const auto& shard : shards_) {
        if (!shard->healthy()) return false;
    }
    return true;
}

DurabilityStats ShardedStorageBackend::durabilityStats() const {
    DurabilityStats total;
    total.enabled = durable();
    for (const auto& shard : shards_) {
        const DurabilityStats part = shard->durabilityStats();
        total.recovered_from_snapshot |= part.recovered_from_snapshot;
        total.wal_records_logged += part.wal_records_logged;
        total.wal_records_replayed += part.wal_records_replayed;
        total.wal_append_failures += part.wal_append_failures;
        total.torn_tail_truncations += part.torn_tail_truncations;
        total.snapshots_written += part.snapshots_written;
        total.snapshot_failures += part.snapshot_failures;
    }
    return total;
}

bool ShardedStorageBackend::dumpCsv(const std::string& path) const {
    std::ofstream out(path);
    if (!out.is_open()) return false;
    out << "topic,timestamp,value\n";
    constexpr common::TimestampNs kMin = std::numeric_limits<common::TimestampNs>::min();
    constexpr common::TimestampNs kMax = std::numeric_limits<common::TimestampNs>::max();
    for (const auto& topic : topics()) {
        for (const auto& reading : query(topic, kMin, kMax)) {
            out << topic << ',' << reading.timestamp << ',' << reading.value << '\n';
        }
    }
    return out.good();
}

}  // namespace wm::storage
