#include "storage/storage_backend.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "common/logging.h"
#include "mqtt/topic.h"
#include "persist/serializer.h"
#include "persist/snapshot.h"

namespace wm::storage {

namespace {

// WAL record tags; append-only (replay must keep decoding old logs).
constexpr std::uint8_t kRecordReading = 1;
constexpr std::uint8_t kRecordMetadata = 2;
constexpr std::uint8_t kRecordDropSensor = 3;
constexpr std::uint8_t kRecordPrune = 4;

constexpr std::uint32_t kSnapshotVersion = 1;

/// Inserts `reading` into the sorted vector, fast-pathing in-order appends.
void insertSorted(sensors::ReadingVector& readings, const sensors::Reading& reading) {
    if (readings.empty() || readings.back().timestamp <= reading.timestamp) {
        readings.push_back(reading);
        return;
    }
    auto it = std::upper_bound(readings.begin(), readings.end(), reading,
                               [](const sensors::Reading& a, const sensors::Reading& b) {
                                   return a.timestamp < b.timestamp;
                               });
    readings.insert(it, reading);
}

/// Replay-only insert that skips an exact duplicate (same timestamp and
/// value): the idempotence that makes replaying a WAL twice converge. A
/// non-duplicate lands *after* any readings sharing its timestamp, the
/// same tie order insertSorted() gives the live arrival stream — replaying
/// a WAL reproduces the pre-crash store byte for byte, ties included.
void insertSortedUnique(sensors::ReadingVector& readings,
                        const sensors::Reading& reading) {
    auto it = std::lower_bound(readings.begin(), readings.end(), reading.timestamp,
                               [](const sensors::Reading& r, common::TimestampNs t) {
                                   return r.timestamp < t;
                               });
    while (it != readings.end() && it->timestamp == reading.timestamp) {
        if (it->value == reading.value) return;
        ++it;
    }
    readings.insert(it, reading);
}

/// True when `reading` is already present byte-for-byte (same timestamp,
/// same value). Live inserts use this as the idempotence backstop for
/// wire-level redelivery: the collect agent's per-topic sequence watermark
/// dies with the process, so after a crash+restart a client replaying its
/// unacked ring re-delivers readings the WAL already recovered — those
/// must converge to one stored row, not two. In-order appends (the hot
/// path) never pay the scan: a fresh reading's timestamp is past the tail.
bool isDuplicate(const sensors::ReadingVector& readings,
                 const sensors::Reading& reading) {
    if (readings.empty() || reading.timestamp > readings.back().timestamp) {
        return false;
    }
    auto it = std::lower_bound(readings.begin(), readings.end(), reading.timestamp,
                               [](const sensors::Reading& r, common::TimestampNs t) {
                                   return r.timestamp < t;
                               });
    for (; it != readings.end() && it->timestamp == reading.timestamp; ++it) {
        if (it->value == reading.value) return true;
    }
    return false;
}

/// Evaluates the "storage.insert" fault point for one reading. kFail and
/// kDrop both refuse the insert (the caller decides whether to quarantine);
/// kDelay stalls it like a slow backend, then accepts.
bool insertFaulted() {
    const auto fault = common::fault::check("storage.insert");
    if (!fault) return false;
    if (fault.action == common::fault::Action::kDelay) {
        common::fault::applyDelay(fault.delay_ns);
        return false;
    }
    return true;
}

std::string joinPath(const std::string& directory, const std::string& file) {
    if (!file.empty() && file.front() == '/') return file;
    return (std::filesystem::path(directory) / file).string();
}

void encodeMetadata(persist::Encoder& encoder, const sensors::SensorMetadata& metadata) {
    encoder.putString(metadata.topic);
    encoder.putString(metadata.unit);
    encoder.putI64(metadata.interval_ns);
    encoder.putF64(metadata.scale);
    encoder.putBool(metadata.publish);
    encoder.putBool(metadata.monotonic);
    encoder.putI64(metadata.ttl_ns);
}

bool decodeMetadata(persist::Decoder& decoder, sensors::SensorMetadata* metadata) {
    decoder.getString(&metadata->topic);
    decoder.getString(&metadata->unit);
    decoder.getI64(&metadata->interval_ns);
    decoder.getF64(&metadata->scale);
    decoder.getBool(&metadata->publish);
    decoder.getBool(&metadata->monotonic);
    decoder.getI64(&metadata->ttl_ns);
    return decoder.ok();
}

}  // namespace

void StorageBackend::simulateLatency() const {
    const common::TimestampNs latency = simulated_latency_ns_.load(std::memory_order_relaxed);
    if (latency <= 0) return;
    // Busy-wait: sleep granularity on most kernels is far coarser than the
    // sub-millisecond latencies being modelled.
    const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(latency);
    while (std::chrono::steady_clock::now() < until) {
    }
}

bool StorageBackend::enableDurability(const DurabilityOptions& options) {
    std::error_code ec;
    std::filesystem::create_directories(options.directory, ec);
    if (ec) {
        WM_LOG(kError, "storage") << "cannot create durability directory "
                                  << options.directory << ": " << ec.message();
        return false;
    }
    const std::string wal_path = joinPath(options.directory, options.wal_file);

    common::WriteLock lock(mutex_);
    snapshot_path_ = joinPath(options.directory, options.snapshot_file);
    snapshot_every_ = options.snapshot_every;

    // Recovery, phase 1: the last completed snapshot.
    if (const auto snapshot = persist::readSnapshot(snapshot_path_)) {
        if (decodeState(snapshot->payload, snapshot->version)) {
            recovered_from_snapshot_ = true;
        } else {
            WM_LOG(kError, "storage")
                << "snapshot " << snapshot_path_ << " has unsupported version "
                << snapshot->version << "; starting from the WAL alone";
        }
    }
    // Recovery, phase 2: the WAL tail since that snapshot. Torn final
    // records (a crash mid-append) are truncated before the writer reopens.
    const persist::WalReplayStats replay = persist::replayWal(
        wal_path, [this](std::string_view payload) { applyWalRecord(payload); });
    wal_records_replayed_ += replay.records_applied;
    if (replay.torn_tail_truncated) ++torn_tail_truncations_;
    if (!replay.ok) {
        WM_LOG(kError, "storage") << "WAL " << wal_path << " is unrecoverable";
        return false;
    }

    auto wal = std::make_unique<persist::WalWriter>();
    if (!wal->open(wal_path)) return false;
    wal_ = std::move(wal);
    records_since_checkpoint_ = replay.records_applied;
    durable_.store(true, std::memory_order_release);
    wal_healthy_.store(true, std::memory_order_release);
    WM_LOG(kInfo, "storage") << "durability enabled in " << options.directory
                             << ": replayed " << replay.records_applied
                             << " WAL record(s)"
                             << (recovered_from_snapshot_ ? " on top of a snapshot" : "");
    return true;
}

bool StorageBackend::logRecord(const std::string& payload) {
    if (wal_ == nullptr) return true;
    if (!wal_->append(payload)) {
        ++wal_append_failures_;
        wal_healthy_.store(false, std::memory_order_release);
        return false;
    }
    ++wal_records_logged_;
    ++records_since_checkpoint_;
    wal_healthy_.store(true, std::memory_order_release);
    return true;
}

void StorageBackend::applyWalRecord(std::string_view payload) {
    persist::Decoder decoder(payload);
    std::uint8_t tag = 0;
    decoder.getU8(&tag);
    switch (tag) {
        case kRecordReading: {
            std::string topic;
            sensors::Reading reading;
            decoder.getString(&topic);
            decoder.getI64(&reading.timestamp);
            decoder.getF64(&reading.value);
            if (!decoder.ok()) break;
            insertSortedUnique(series_[topic].readings, reading);
            inserts_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        case kRecordMetadata: {
            sensors::SensorMetadata metadata;
            if (!decodeMetadata(decoder, &metadata)) break;
            series_[metadata.topic].metadata = metadata;
            return;
        }
        case kRecordDropSensor: {
            std::string topic;
            decoder.getString(&topic);
            if (!decoder.ok()) break;
            series_.erase(topic);
            return;
        }
        case kRecordPrune: {
            std::string topic;
            std::int64_t cutoff = 0;
            decoder.getString(&topic);
            decoder.getI64(&cutoff);
            if (!decoder.ok()) break;
            auto it = series_.find(topic);
            if (it == series_.end()) return;
            auto& readings = it->second.readings;
            auto first_kept = std::lower_bound(
                readings.begin(), readings.end(), cutoff,
                [](const sensors::Reading& r, common::TimestampNs t) {
                    return r.timestamp < t;
                });
            readings.erase(readings.begin(), first_kept);
            return;
        }
        default:
            break;
    }
    WM_LOG(kWarning, "storage") << "skipping undecodable WAL record (tag "
                                << static_cast<int>(tag) << ", " << payload.size()
                                << " bytes)";
}

std::string StorageBackend::encodeStateLocked() const {
    persist::Encoder encoder;
    encoder.putSize(series_.size());
    for (const auto& [topic, series] : series_) {
        encoder.putString(topic);
        encodeMetadata(encoder, series.metadata);
        encoder.putSize(series.readings.size());
        for (const auto& reading : series.readings) {
            encoder.putI64(reading.timestamp);
            encoder.putF64(reading.value);
        }
    }
    return encoder.take();
}

bool StorageBackend::decodeState(const std::string& payload, std::uint32_t version) {
    if (version != kSnapshotVersion) return false;
    persist::Decoder decoder(payload);
    std::map<std::string, Series> loaded;
    std::size_t series_count = 0;
    decoder.getSize(&series_count);
    for (std::size_t i = 0; i < series_count && decoder.ok(); ++i) {
        std::string topic;
        decoder.getString(&topic);
        Series series;
        decodeMetadata(decoder, &series.metadata);
        std::size_t reading_count = 0;
        decoder.getSize(&reading_count);
        series.readings.reserve(reading_count);
        for (std::size_t r = 0; r < reading_count && decoder.ok(); ++r) {
            sensors::Reading reading;
            decoder.getI64(&reading.timestamp);
            decoder.getF64(&reading.value);
            series.readings.push_back(reading);
        }
        loaded.emplace(std::move(topic), std::move(series));
    }
    if (!decoder.ok() || !decoder.atEnd()) {
        WM_LOG(kError, "storage") << "snapshot payload is malformed; ignoring it";
        return false;
    }
    for (auto& [topic, series] : loaded) {
        series_[topic] = std::move(series);
    }
    return true;
}

bool StorageBackend::checkpointLocked() {
    if (wal_ == nullptr) return false;
    if (!persist::writeSnapshot(snapshot_path_, kSnapshotVersion, encodeStateLocked())) {
        // The previous snapshot and the full WAL stay authoritative; state
        // is unchanged, only the compaction is deferred.
        ++snapshot_failures_;
        return false;
    }
    ++snapshots_written_;
    wal_->reset();
    records_since_checkpoint_ = 0;
    wal_healthy_.store(true, std::memory_order_release);
    return true;
}

void StorageBackend::maybeCheckpointLocked() {
    if (wal_ == nullptr || snapshot_every_ == 0) return;
    if (records_since_checkpoint_ >= snapshot_every_) checkpointLocked();
}

bool StorageBackend::checkpointNow() {
    common::WriteLock lock(mutex_);
    return checkpointLocked();
}

DurabilityStats StorageBackend::durabilityStats() const {
    common::ReadLock lock(mutex_);
    DurabilityStats stats;
    stats.enabled = durable_.load(std::memory_order_acquire);
    stats.recovered_from_snapshot = recovered_from_snapshot_;
    stats.wal_records_logged = wal_records_logged_;
    stats.wal_records_replayed = wal_records_replayed_;
    stats.wal_append_failures = wal_append_failures_;
    stats.torn_tail_truncations = torn_tail_truncations_;
    stats.snapshots_written = snapshots_written_;
    stats.snapshot_failures = snapshot_failures_;
    return stats;
}

bool StorageBackend::insert(const std::string& topic, const sensors::Reading& reading) {
    if (insertFaulted()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    common::WriteLock lock(mutex_);
    auto& series = series_[topic];
    if (isDuplicate(series.readings, reading)) {
        // Idempotent success: the reading is already durably stored (and
        // already in the WAL), so the redelivery is absorbed, not re-logged.
        duplicate_drops_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    if (wal_ != nullptr) {
        persist::Encoder encoder;
        encoder.putU8(kRecordReading);
        encoder.putString(topic);
        encoder.putI64(reading.timestamp);
        encoder.putF64(reading.value);
        // WAL-first: if the reading cannot be made durable it is rejected,
        // so the caller's quarantine keeps it for a later retry.
        if (!logRecord(encoder.data())) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    }
    insertSorted(series.readings, reading);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    maybeCheckpointLocked();
    return true;
}

std::size_t StorageBackend::insertBatch(const std::string& topic,
                                        const sensors::ReadingVector& readings,
                                        sensors::ReadingVector* rejected) {
    std::size_t inserted = 0;
    common::WriteLock lock(mutex_);
    auto& series = series_[topic];
    for (const auto& reading : readings) {
        if (insertFaulted()) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (rejected != nullptr) rejected->push_back(reading);
            continue;
        }
        if (isDuplicate(series.readings, reading)) {
            // Absorbed as already stored — neither rejected nor re-inserted.
            duplicate_drops_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (wal_ != nullptr) {
            persist::Encoder encoder;
            encoder.putU8(kRecordReading);
            encoder.putString(topic);
            encoder.putI64(reading.timestamp);
            encoder.putF64(reading.value);
            if (!logRecord(encoder.data())) {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                if (rejected != nullptr) rejected->push_back(reading);
                continue;
            }
        }
        insertSorted(series.readings, reading);
        ++inserted;
    }
    inserts_.fetch_add(inserted, std::memory_order_relaxed);
    maybeCheckpointLocked();
    return inserted;
}

void StorageBackend::publishMetadata(const sensors::SensorMetadata& metadata) {
    common::WriteLock lock(mutex_);
    if (wal_ != nullptr) {
        persist::Encoder encoder;
        encoder.putU8(kRecordMetadata);
        encodeMetadata(encoder, metadata);
        logRecord(encoder.data());
    }
    series_[metadata.topic].metadata = metadata;
}

std::optional<sensors::SensorMetadata> StorageBackend::metadataFor(
    const std::string& topic) const {
    common::ReadLock lock(mutex_);
    auto it = series_.find(topic);
    if (it == series_.end() || it->second.metadata.topic.empty()) return std::nullopt;
    return it->second.metadata;
}

sensors::ReadingVector StorageBackend::query(const std::string& topic,
                                             common::TimestampNs t0,
                                             common::TimestampNs t1) const {
    simulateLatency();
    common::ReadLock lock(mutex_);
    queries_.fetch_add(1, std::memory_order_relaxed);
    auto it = series_.find(topic);
    if (it == series_.end() || t1 < t0) return {};
    const auto& readings = it->second.readings;
    auto first = std::lower_bound(readings.begin(), readings.end(), t0,
                                  [](const sensors::Reading& r, common::TimestampNs t) {
                                      return r.timestamp < t;
                                  });
    auto last = std::upper_bound(readings.begin(), readings.end(), t1,
                                 [](common::TimestampNs t, const sensors::Reading& r) {
                                     return t < r.timestamp;
                                 });
    return sensors::ReadingVector(first, last);
}

std::optional<sensors::Reading> StorageBackend::latest(const std::string& topic) const {
    simulateLatency();
    common::ReadLock lock(mutex_);
    queries_.fetch_add(1, std::memory_order_relaxed);
    auto it = series_.find(topic);
    if (it == series_.end() || it->second.readings.empty()) return std::nullopt;
    return it->second.readings.back();
}

std::vector<std::string> StorageBackend::topics() const {
    common::ReadLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [topic, series] : series_) out.push_back(topic);
    return out;
}

std::vector<std::string> StorageBackend::topicsMatching(const std::string& filter) const {
    common::ReadLock lock(mutex_);
    std::vector<std::string> out;
    for (const auto& [topic, series] : series_) {
        if (mqtt::topicMatches(filter, topic)) out.push_back(topic);
    }
    return out;
}

std::size_t StorageBackend::pruneExpired() {
    common::WriteLock lock(mutex_);
    std::size_t removed = 0;
    for (auto& [topic, series] : series_) {
        common::TimestampNs ttl = series.metadata.ttl_ns;
        if (ttl == 0) ttl = default_ttl_ns_;
        if (ttl == 0 || series.readings.empty()) continue;
        const common::TimestampNs cutoff = series.readings.back().timestamp - ttl;
        auto first_kept = std::lower_bound(
            series.readings.begin(), series.readings.end(), cutoff,
            [](const sensors::Reading& r, common::TimestampNs t) { return r.timestamp < t; });
        const auto pruned = static_cast<std::size_t>(first_kept - series.readings.begin());
        if (pruned == 0) continue;
        if (wal_ != nullptr) {
            // Logged so a replayed log reproduces the same retention state.
            persist::Encoder encoder;
            encoder.putU8(kRecordPrune);
            encoder.putString(topic);
            encoder.putI64(cutoff);
            logRecord(encoder.data());
        }
        removed += pruned;
        series.readings.erase(series.readings.begin(), first_kept);
    }
    return removed;
}

bool StorageBackend::dropSensor(const std::string& topic) {
    common::WriteLock lock(mutex_);
    if (wal_ != nullptr) {
        persist::Encoder encoder;
        encoder.putU8(kRecordDropSensor);
        encoder.putString(topic);
        logRecord(encoder.data());
    }
    return series_.erase(topic) > 0;
}

StorageStats StorageBackend::stats() const {
    common::ReadLock lock(mutex_);
    StorageStats stats;
    stats.sensor_count = series_.size();
    for (const auto& [topic, series] : series_) stats.reading_count += series.readings.size();
    stats.inserts = inserts_.load(std::memory_order_relaxed);
    stats.queries = queries_.load(std::memory_order_relaxed);
    stats.rejected_inserts = rejected_.load(std::memory_order_relaxed);
    stats.duplicate_drops = duplicate_drops_.load(std::memory_order_relaxed);
    return stats;
}

std::size_t StorageBackend::memoryBytes() const {
    common::ReadLock lock(mutex_);
    std::size_t total = sizeof(*this);
    for (const auto& [topic, series] : series_) {
        total += kSeriesOverheadEstimateBytes + topic.capacity() +
                 series.metadata.topic.capacity() + series.metadata.unit.capacity() +
                 series.readings.capacity() * sizeof(sensors::Reading);
    }
    return total;
}

bool StorageBackend::dumpCsv(const std::string& path) const {
    common::ReadLock lock(mutex_);
    std::ofstream out(path);
    if (!out.is_open()) return false;
    out << "topic,timestamp,value\n";
    for (const auto& [topic, series] : series_) {
        for (const auto& reading : series.readings) {
            out << topic << ',' << reading.timestamp << ',' << reading.value << '\n';
        }
    }
    return out.good();
}

CsvLoadResult Storage::loadCsv(const std::string& path) {
    CsvLoadResult result;
    std::ifstream in(path);
    if (!in.is_open()) {
        WM_LOG(kError, "storage") << "cannot open CSV " << path;
        return result;
    }
    result.ok = true;
    std::string line;
    std::size_t line_number = 1;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) continue;
        const std::size_t c1 = line.find(',');
        const std::size_t c2 = line.find(',', c1 + 1);
        bool parsed = c1 != std::string::npos && c2 != std::string::npos && c1 > 0;
        std::string topic;
        sensors::Reading reading;
        if (parsed) {
            try {
                topic = line.substr(0, c1);
                std::size_t consumed = 0;
                const std::string ts_text = line.substr(c1 + 1, c2 - c1 - 1);
                reading.timestamp = std::stoll(ts_text, &consumed);
                parsed = consumed == ts_text.size();
                const std::string value_text = line.substr(c2 + 1);
                reading.value = std::stod(value_text, &consumed);
                parsed = parsed && consumed == value_text.size();
            } catch (...) {
                parsed = false;
            }
        }
        if (!parsed) {
            ++result.rows_malformed;
            WM_LOG(kWarning, "storage")
                << path << ":" << line_number << ": malformed CSV row skipped: " << line;
            continue;
        }
        if (insert(topic, reading)) {
            ++result.rows_loaded;
        } else {
            ++result.rows_rejected;
        }
    }
    if (result.rows_malformed > 0) {
        WM_LOG(kWarning, "storage")
            << path << ": loaded " << result.rows_loaded << " row(s), skipped "
            << result.rows_malformed << " malformed row(s)";
    }
    return result;
}

}  // namespace wm::storage
