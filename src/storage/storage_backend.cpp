#include "storage/storage_backend.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "mqtt/topic.h"

namespace wm::storage {

namespace {

/// Inserts `reading` into the sorted vector, fast-pathing in-order appends.
void insertSorted(sensors::ReadingVector& readings, const sensors::Reading& reading) {
    if (readings.empty() || readings.back().timestamp <= reading.timestamp) {
        readings.push_back(reading);
        return;
    }
    auto it = std::upper_bound(readings.begin(), readings.end(), reading,
                               [](const sensors::Reading& a, const sensors::Reading& b) {
                                   return a.timestamp < b.timestamp;
                               });
    readings.insert(it, reading);
}

/// Evaluates the "storage.insert" fault point for one reading. kFail and
/// kDrop both refuse the insert (the caller decides whether to quarantine);
/// kDelay stalls it like a slow backend, then accepts.
bool insertFaulted() {
    const auto fault = common::fault::check("storage.insert");
    if (!fault) return false;
    if (fault.action == common::fault::Action::kDelay) {
        common::fault::applyDelay(fault.delay_ns);
        return false;
    }
    return true;
}

}  // namespace

void StorageBackend::simulateLatency() const {
    const common::TimestampNs latency = simulated_latency_ns_.load(std::memory_order_relaxed);
    if (latency <= 0) return;
    // Busy-wait: sleep granularity on most kernels is far coarser than the
    // sub-millisecond latencies being modelled.
    const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(latency);
    while (std::chrono::steady_clock::now() < until) {
    }
}

bool StorageBackend::insert(const std::string& topic, const sensors::Reading& reading) {
    if (insertFaulted()) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    common::WriteLock lock(mutex_);
    insertSorted(series_[topic].readings, reading);
    inserts_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t StorageBackend::insertBatch(const std::string& topic,
                                        const sensors::ReadingVector& readings,
                                        sensors::ReadingVector* rejected) {
    std::size_t inserted = 0;
    common::WriteLock lock(mutex_);
    auto& series = series_[topic];
    for (const auto& reading : readings) {
        if (insertFaulted()) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (rejected != nullptr) rejected->push_back(reading);
            continue;
        }
        insertSorted(series.readings, reading);
        ++inserted;
    }
    inserts_.fetch_add(inserted, std::memory_order_relaxed);
    return inserted;
}

void StorageBackend::publishMetadata(const sensors::SensorMetadata& metadata) {
    common::WriteLock lock(mutex_);
    series_[metadata.topic].metadata = metadata;
}

std::optional<sensors::SensorMetadata> StorageBackend::metadataFor(
    const std::string& topic) const {
    common::ReadLock lock(mutex_);
    auto it = series_.find(topic);
    if (it == series_.end() || it->second.metadata.topic.empty()) return std::nullopt;
    return it->second.metadata;
}

sensors::ReadingVector StorageBackend::query(const std::string& topic,
                                             common::TimestampNs t0,
                                             common::TimestampNs t1) const {
    simulateLatency();
    common::ReadLock lock(mutex_);
    queries_.fetch_add(1, std::memory_order_relaxed);
    auto it = series_.find(topic);
    if (it == series_.end() || t1 < t0) return {};
    const auto& readings = it->second.readings;
    auto first = std::lower_bound(readings.begin(), readings.end(), t0,
                                  [](const sensors::Reading& r, common::TimestampNs t) {
                                      return r.timestamp < t;
                                  });
    auto last = std::upper_bound(readings.begin(), readings.end(), t1,
                                 [](common::TimestampNs t, const sensors::Reading& r) {
                                     return t < r.timestamp;
                                 });
    return sensors::ReadingVector(first, last);
}

std::optional<sensors::Reading> StorageBackend::latest(const std::string& topic) const {
    simulateLatency();
    common::ReadLock lock(mutex_);
    queries_.fetch_add(1, std::memory_order_relaxed);
    auto it = series_.find(topic);
    if (it == series_.end() || it->second.readings.empty()) return std::nullopt;
    return it->second.readings.back();
}

std::vector<std::string> StorageBackend::topics() const {
    common::ReadLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [topic, series] : series_) out.push_back(topic);
    return out;
}

std::vector<std::string> StorageBackend::topicsMatching(const std::string& filter) const {
    common::ReadLock lock(mutex_);
    std::vector<std::string> out;
    for (const auto& [topic, series] : series_) {
        if (mqtt::topicMatches(filter, topic)) out.push_back(topic);
    }
    return out;
}

std::size_t StorageBackend::pruneExpired() {
    common::WriteLock lock(mutex_);
    std::size_t removed = 0;
    for (auto& [topic, series] : series_) {
        common::TimestampNs ttl = series.metadata.ttl_ns;
        if (ttl == 0) ttl = default_ttl_ns_;
        if (ttl == 0 || series.readings.empty()) continue;
        const common::TimestampNs cutoff = series.readings.back().timestamp - ttl;
        auto first_kept = std::lower_bound(
            series.readings.begin(), series.readings.end(), cutoff,
            [](const sensors::Reading& r, common::TimestampNs t) { return r.timestamp < t; });
        removed += static_cast<std::size_t>(first_kept - series.readings.begin());
        series.readings.erase(series.readings.begin(), first_kept);
    }
    return removed;
}

bool StorageBackend::dropSensor(const std::string& topic) {
    common::WriteLock lock(mutex_);
    return series_.erase(topic) > 0;
}

StorageStats StorageBackend::stats() const {
    common::ReadLock lock(mutex_);
    StorageStats stats;
    stats.sensor_count = series_.size();
    for (const auto& [topic, series] : series_) stats.reading_count += series.readings.size();
    stats.inserts = inserts_.load(std::memory_order_relaxed);
    stats.queries = queries_.load(std::memory_order_relaxed);
    stats.rejected_inserts = rejected_.load(std::memory_order_relaxed);
    return stats;
}

bool StorageBackend::dumpCsv(const std::string& path) const {
    common::ReadLock lock(mutex_);
    std::ofstream out(path);
    if (!out.is_open()) return false;
    out << "topic,timestamp,value\n";
    for (const auto& [topic, series] : series_) {
        for (const auto& reading : series.readings) {
            out << topic << ',' << reading.timestamp << ',' << reading.value << '\n';
        }
    }
    return out.good();
}

bool StorageBackend::loadCsv(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) return false;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const std::size_t c1 = line.find(',');
        const std::size_t c2 = line.find(',', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos) return false;
        try {
            const std::string topic = line.substr(0, c1);
            sensors::Reading reading;
            reading.timestamp = std::stoll(line.substr(c1 + 1, c2 - c1 - 1));
            reading.value = std::stod(line.substr(c2 + 1));
            insert(topic, reading);
        } catch (...) {
            return false;
        }
    }
    return true;
}

}  // namespace wm::storage
