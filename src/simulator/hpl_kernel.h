#pragma once

// A real compute kernel standing in for the High-Performance Linpack run of
// the Fig. 5 overhead experiment. The kernel performs repeated blocked
// matrix-matrix multiplications (the DGEMM inner loop that dominates HPL);
// because it is genuinely CPU-bound, running a Pusher alongside it measures
// real interference, which is exactly what the paper's overhead metric
// captures.

#include <cstddef>
#include <cstdint>

namespace wm::simulator {

struct HplResult {
    double elapsed_sec = 0.0;
    double gflops = 0.0;
    double checksum = 0.0;  // defeats dead-code elimination; also a sanity check
};

/// Runs `repetitions` multiplications of n x n matrices (blocked, single
/// thread). Matrices are filled deterministically from `seed`.
HplResult runHplKernel(std::size_t n, std::size_t repetitions, std::uint64_t seed = 7);

/// Calibrates a repetition count so the kernel runs for roughly
/// `target_sec` at the given problem size.
std::size_t calibrateHplRepetitions(std::size_t n, double target_sec);

}  // namespace wm::simulator
