#pragma once

// Per-node hardware model: integrates application core activity into the
// sensor signals a real compute node exposes — per-core monotonic
// performance counters (cycles, instructions, cache misses, vector ops),
// node power at the supply, an RC thermal model, memory occupancy and an
// accumulated CPU idle-time counter. Includes per-node manufacturing
// variability (the paper highlights power variance between nodes) and an
// optional anomaly mode (a node drawing ~20% extra power, the Fig. 8
// outlier).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "simulator/app_model.h"

namespace wm::simulator {

/// Static electrical/thermal characteristics of a node (KNL-like defaults).
struct NodeCharacteristics {
    double freq_hz = 1.3e9;          // nominal core frequency
    double idle_power_w = 75.0;      // node power at idle
    double max_dynamic_power_w = 195.0;  // additional power at full load
    double inlet_temp_c = 42.0;      // warm-water cooling inlet
    double temp_per_watt = 0.042;    // steady-state degC per watt
    double thermal_tau_sec = 60.0;   // RC time constant
    double total_memory_gb = 96.0;
    double hbm_memory_gb = 16.0;
    /// Std-dev of the per-node manufacturing power variability factor.
    double power_variability = 0.04;
    /// Extra multiplicative power draw for anomalous nodes (1.0 = healthy).
    double anomaly_power_factor = 1.0;
};

/// Composable anomaly perturbation applied to the node's physics
/// (src/scenario schedules these on the virtual clock; all neutral values
/// leave the model bit-identical to an unperturbed run). Each field maps to
/// one production failure class:
///   power_factor    — extra electrical draw (the Fig. 8 outlier, VR fault);
///   temp_offset_c   — hot-spot offset on the measured temperature, applied
///                     after the RC filter (thermal runaway reads fast);
///   cooling_factor  — multiplies degC/W, i.e. degraded heat removal (fan
///                     failure / clogged cold plate), RC-lagged like the
///                     real plant;
///   cpi_factor + core_fraction — CPI stretch on the affected core tail
///                     (network congestion, see applyCorePerturbation);
///   util_factor     — utilization scale on all cores (straggler node);
///   memory_leak_gb  — resident-set growth eating into free memory.
struct NodePerturbation {
    double power_factor = 1.0;
    double temp_offset_c = 0.0;
    double cooling_factor = 1.0;
    double cpi_factor = 1.0;
    double core_fraction = 1.0;
    double util_factor = 1.0;
    double memory_leak_gb = 0.0;

    bool active() const {
        return power_factor != 1.0 || temp_offset_c != 0.0 || cooling_factor != 1.0 ||
               cpi_factor != 1.0 || util_factor != 1.0 || memory_leak_gb != 0.0;
    }
};

/// Monotonic per-core counters, in the style of perf events.
struct CoreCounters {
    double cycles = 0.0;
    double instructions = 0.0;
    double cache_misses = 0.0;
    double vector_ops = 0.0;
    double branch_misses = 0.0;
};

/// Instantaneous node state exposed to the monitoring plugins.
struct NodeSample {
    double power_w = 0.0;
    double temperature_c = 0.0;
    double memory_free_gb = 0.0;
    /// Current DVFS setting as a fraction of nominal frequency, [0.5, 1.0].
    double frequency_scale = 1.0;
    /// Accumulated idle time across all cores, in core-centiseconds
    /// (matches the /proc/stat-style col_idle units of the paper's plots).
    double idle_time_total = 0.0;
    std::vector<CoreCounters> cores;
};

class NodeModel {
  public:
    /// `node_seed` individualises variability; derived values (power factor)
    /// are deterministic in it.
    NodeModel(std::size_t num_cores, std::uint64_t node_seed,
              NodeCharacteristics characteristics = {});

    /// Switches the running application; resets the app-local clock.
    void startApp(AppKind kind);
    AppKind currentApp() const { return app_.kind(); }

    /// DVFS knob: scales core frequency (and, quadratically, the dynamic
    /// power) — the actuation target of runtime-optimization feedback loops.
    /// Clamped to [0.5, 1.0].
    void setFrequencyScale(double scale);
    double frequencyScale() const { return sample_.frequency_scale; }

    /// Installs the anomaly perturbation applied by subsequent advance()
    /// steps (scenario campaigns update it once per virtual tick).
    void setPerturbation(const NodePerturbation& perturbation);
    const NodePerturbation& perturbation() const { return perturbation_; }

    /// Advances the model by `dt_sec` of simulated time, integrating the
    /// counters and updating power/thermal state.
    void advance(double dt_sec);

    /// Current sensor values (counters are cumulative since construction).
    const NodeSample& sample() const { return sample_; }

    /// Seconds the current application has been running.
    double appTimeSec() const { return app_time_sec_; }
    /// Total simulated seconds since construction.
    double totalTimeSec() const { return total_time_sec_; }

    std::size_t coreCount() const { return sample_.cores.size(); }
    /// The node's manufacturing variability factor (for tests/analysis).
    double powerFactor() const { return power_factor_; }

  private:
    NodeCharacteristics characteristics_;
    AppModel app_;
    std::uint64_t seed_;
    common::Rng rng_;
    double power_factor_;
    double app_time_sec_ = 0.0;
    double total_time_sec_ = 0.0;
    NodeSample sample_;
    NodePerturbation perturbation_;
    /// RC thermal state before the sensor-level temp_offset_c is applied;
    /// sample_.temperature_c is this plus the offset.
    double thermal_state_c_ = 0.0;
};

}  // namespace wm::simulator
