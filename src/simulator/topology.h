#pragma once

// Cluster topology model: racks containing chassis containing compute nodes
// containing CPUs, mirroring the physical hierarchy that DCDB encodes in its
// slash-separated sensor topics. The default parameters approximate the
// CooLMUC-3 system of the paper (148 Knights-Landing nodes with 64 cores).

#include <cstddef>
#include <string>
#include <vector>

namespace wm::simulator {

struct Topology {
    std::size_t racks = 5;
    std::size_t chassis_per_rack = 6;
    std::size_t nodes_per_chassis = 5;
    std::size_t cpus_per_node = 64;
    /// Cap on the total node count (the last chassis may be partial);
    /// 0 means no cap. CooLMUC-3 has 148 nodes out of a 150-slot layout.
    std::size_t max_nodes = 148;

    /// Total number of compute nodes, honouring `max_nodes`.
    std::size_t nodeCount() const;

    /// Canonical path of the i-th node: "/rackR/chassisC/serverS".
    std::string nodePath(std::size_t node_index) const;

    /// All node paths in index order.
    std::vector<std::string> nodePaths() const;

    /// Path of a CPU under a node: "<node>/cpuK".
    static std::string cpuPath(const std::string& node_path, std::size_t cpu_index);

    /// A small topology for fast tests (2x2x2 nodes, 4 CPUs).
    static Topology tiny();

    /// The CooLMUC-3-like default.
    static Topology coolmuc3();

    /// A leadership-class layout for sharding/scale experiments: 50 racks x
    /// 20 chassis x 10 nodes = 10,000 nodes, 64 CPUs each. With the default
    /// perfsim/sysfssim/procfssim sensor groups this publishes over one
    /// million distinct sensor topics.
    static Topology production10k();
};

}  // namespace wm::simulator
