#include "simulator/node_model.h"

#include <algorithm>
#include <cmath>

namespace wm::simulator {

NodeModel::NodeModel(std::size_t num_cores, std::uint64_t node_seed,
                     NodeCharacteristics characteristics)
    : characteristics_(characteristics),
      app_(AppKind::kIdle, node_seed),
      seed_(node_seed),
      rng_(node_seed ^ 0xA5A5A5A5DEADBEEFULL) {
    sample_.cores.resize(std::max<std::size_t>(num_cores, 1));
    // Manufacturing variability: a fixed per-node factor around 1.0.
    power_factor_ =
        std::clamp(1.0 + characteristics_.power_variability * rng_.gaussian(), 0.85, 1.15) *
        characteristics_.anomaly_power_factor;
    thermal_state_c_ =
        characteristics_.inlet_temp_c + characteristics_.idle_power_w *
                                            characteristics_.temp_per_watt;
    sample_.temperature_c = thermal_state_c_;
    sample_.memory_free_gb = characteristics_.total_memory_gb - 4.0;  // OS baseline
    sample_.power_w = characteristics_.idle_power_w * power_factor_;
}

void NodeModel::setPerturbation(const NodePerturbation& perturbation) {
    perturbation_ = perturbation;
}

void NodeModel::startApp(AppKind kind) {
    app_ = AppModel(kind, seed_);
    app_time_sec_ = 0.0;
}

void NodeModel::setFrequencyScale(double scale) {
    sample_.frequency_scale = std::clamp(scale, 0.5, 1.0);
}

void NodeModel::advance(double dt_sec) {
    if (dt_sec <= 0.0) return;
    const std::size_t num_cores = sample_.cores.size();

    double util_sum = 0.0;
    double ipc_sum = 0.0;
    double miss_rate_sum = 0.0;
    const double freq_scale = sample_.frequency_scale;
    for (std::size_t core = 0; core < num_cores; ++core) {
        CoreActivity activity = app_.coreActivity(app_time_sec_, core, num_cores);
        applyCorePerturbation(activity, perturbation_.cpi_factor,
                              perturbation_.core_fraction, perturbation_.util_factor,
                              core, num_cores);
        const double busy_cycles =
            characteristics_.freq_hz * freq_scale * activity.utilization * dt_sec;
        const double instructions = busy_cycles / activity.cpi;
        CoreCounters& counters = sample_.cores[core];
        counters.cycles += busy_cycles;
        counters.instructions += instructions;
        counters.cache_misses += instructions * activity.cache_miss_rate;
        counters.vector_ops += instructions * activity.vector_ratio;
        counters.branch_misses += instructions * 0.004;
        sample_.idle_time_total += (1.0 - activity.utilization) * dt_sec * 100.0;  // cs
        util_sum += activity.utilization;
        ipc_sum += 1.0 / activity.cpi;
        miss_rate_sum += activity.cache_miss_rate;
    }
    const double avg_util = util_sum / static_cast<double>(num_cores);
    const double avg_ipc = ipc_sum / static_cast<double>(num_cores);
    const double avg_miss = miss_rate_sum / static_cast<double>(num_cores);

    // Power: idle floor + dynamic part driven by utilisation and IPC (a
    // stalled core burns less than a retiring one) + memory-traffic part,
    // all scaled by the node's variability factor; plus short unpredictable
    // turbo/electrical spikes and sensor noise (the residual the paper's
    // model cannot capture either).
    // Dynamic power scales roughly with f*V^2; under DVFS, V tracks f, so
    // the dynamic part falls off quadratically with the frequency scale.
    double power = characteristics_.idle_power_w +
                   characteristics_.max_dynamic_power_w * freq_scale * freq_scale *
                       avg_util * (0.55 + 0.45 * std::min(avg_ipc, 1.0)) +
                   420.0 * std::min(avg_miss, 0.08);
    power *= power_factor_ * perturbation_.power_factor;
    // Turbo / power-management transients last ~250 ms: they touch a fixed
    // fraction of samples at any sub-second rate, show near-full amplitude
    // in short integration windows and average out in long ones.
    const double spike_scale = std::clamp(0.25 / dt_sec, 0.8, 1.5);
    if (rng_.bernoulli(0.4)) {
        power += rng_.uniform(8.0, 45.0) * spike_scale;
    }
    // Meter noise grows as the integration window shrinks.
    power += rng_.gaussian(0.0, 3.0 * std::sqrt(std::clamp(0.25 / dt_sec, 0.5, 2.5)));
    sample_.power_w = std::max(power, characteristics_.idle_power_w * 0.9);

    // RC thermal response towards the power-dependent steady state. A
    // degraded cooling path (fan failure) raises degC/W and heats up with
    // the same RC lag as the real plant; the hot-spot offset of a thermal
    // runaway sits on the measured value directly — the sensor is at the
    // hot spot, not behind the heat sink.
    const double target_temp =
        characteristics_.inlet_temp_c +
        sample_.power_w * characteristics_.temp_per_watt *
            std::max(perturbation_.cooling_factor, 0.0);
    const double blend = 1.0 - std::exp(-dt_sec / characteristics_.thermal_tau_sec);
    thermal_state_c_ += (target_temp - thermal_state_c_) * blend;
    sample_.temperature_c = thermal_state_c_ + perturbation_.temp_offset_c;

    // Memory occupancy: apps allocate towards a per-app working set.
    double target_free = characteristics_.total_memory_gb - 4.0;
    switch (app_.kind()) {
        case AppKind::kIdle: break;
        case AppKind::kHpl: target_free -= 70.0; break;
        case AppKind::kKripke: target_free -= 40.0; break;
        case AppKind::kAmg: target_free -= 35.0; break;
        case AppKind::kNekbone:
            // Growing problem sizes: working set grows through the run and
            // crosses the HBM capacity mid-run.
            target_free -= 8.0 + 40.0 * app_.progress(app_time_sec_);
            break;
        case AppKind::kLammps: target_free -= 30.0; break;
    }
    // A leaking process grows its resident set on top of the application's
    // working set; free memory relaxes towards the reduced target.
    target_free -= std::max(perturbation_.memory_leak_gb, 0.0);
    sample_.memory_free_gb +=
        (std::max(target_free, 1.0) - sample_.memory_free_gb) * std::min(dt_sec / 20.0, 1.0);

    app_time_sec_ += dt_sec;
    total_time_sec_ += dt_sec;
}

}  // namespace wm::simulator
