#pragma once

// Facility-level model: the warm-water cooling circuit serving the cluster
// (infrastructure management, the first taxonomy class of paper Section
// II-A; CooLMUC-3 itself is warm-water cooled). The model tracks the supply
// (inlet) and return water temperatures of the loop, the heat-exchanger
// power needed to reject the IT load against the outdoor temperature, and
// the resulting PUE. The inlet setpoint is an actuation knob: energy-aware
// cooling raises it when the load allows, cutting chiller effort (paper
// references [17], [18]).

#include <cstdint>

namespace wm::simulator {

struct FacilityCharacteristics {
    double nominal_inlet_c = 42.0;     // warm-water design point
    double min_inlet_c = 30.0;
    double max_inlet_c = 50.0;
    double flow_kg_per_s = 18.0;       // loop mass flow
    double water_heat_capacity = 4186.0;  // J/(kg K)
    double loop_tau_sec = 120.0;       // thermal inertia of the loop
    /// Chiller coefficient of performance at zero lift, and its degradation
    /// per Kelvin of lift (outdoor above return means free cooling).
    double cop_base = 8.0;
    double cop_per_kelvin_lift = 0.25;
    /// Fixed facility overhead (pumps, fans) as a fraction of IT power.
    double overhead_fraction = 0.03;
    /// Diurnal outdoor temperature: mean and daily swing amplitude.
    double outdoor_mean_c = 15.0;
    double outdoor_swing_c = 8.0;
};

/// Facility-side anomaly perturbation (src/scenario): an inlet offset models
/// a cooling-plant excursion the setpoint controller cannot hold (the loop
/// relaxes towards setpoint + offset), and a COP factor models degraded
/// chillers. Neutral values leave the model bit-identical.
struct FacilityPerturbation {
    double inlet_offset_c = 0.0;
    double cop_factor = 1.0;

    bool active() const { return inlet_offset_c != 0.0 || cop_factor != 1.0; }
};

/// Instantaneous facility state exposed to monitoring.
struct FacilitySample {
    double inlet_temp_c = 0.0;
    double return_temp_c = 0.0;
    double outdoor_temp_c = 0.0;
    double flow_kg_per_s = 0.0;
    double cooling_power_w = 0.0;  // chiller + overhead electrical power
    double it_power_w = 0.0;
    double pue = 1.0;
};

class FacilityModel {
  public:
    explicit FacilityModel(FacilityCharacteristics characteristics = {});

    /// Sets the inlet temperature setpoint (clamped to the design range) —
    /// the knob infrastructure feedback loops actuate.
    void setInletSetpoint(double temp_c);
    double inletSetpoint() const { return setpoint_c_; }

    /// Installs the anomaly perturbation applied by subsequent advance()
    /// steps (scenario campaigns update it once per virtual tick).
    void setPerturbation(const FacilityPerturbation& perturbation);
    const FacilityPerturbation& perturbation() const { return perturbation_; }

    /// Advances the loop by `dt_sec` under `it_power_w` of IT load.
    void advance(double dt_sec, double it_power_w);

    const FacilitySample& sample() const { return sample_; }
    double totalTimeSec() const { return time_sec_; }

  private:
    FacilityCharacteristics characteristics_;
    double setpoint_c_;
    double time_sec_ = 0.0;
    FacilitySample sample_;
    FacilityPerturbation perturbation_;
};

}  // namespace wm::simulator
