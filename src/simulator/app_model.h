#pragma once

// Application workload signal models. Each model reproduces the qualitative
// per-core performance signature the paper reports for the CORAL-2
// applications it runs on CooLMUC-3 (Section VI):
//
//  * LAMMPS  — compute-bound: low CPI (~1.6) with minimal spread.
//  * AMG     — network-bound: low CPI for most cores, but a tail of cores
//              (upper deciles) spiking to CPI ~30 under network latency.
//  * Kripke  — iterative sweeps: CPI rises and falls with each iteration,
//              visible across all deciles (sawtooth).
//  * Nekbone — batch of growing problem sizes: compute-bound (low CPI) in
//              the first half, then >=20% of cores become memory-limited
//              once the working set exceeds the 16 GB HBM, with a widening
//              decile spread.
//  * HPL     — steady compute-bound load (the Fig. 5 interference target).
//  * Idle    — background OS noise only.
//
// Models are pure functions of (app, time, core, seed): deterministic and
// cheap enough to evaluate for 148 nodes x 64 cores over weeks of virtual
// time. The per-(core, time-block) event structure is hash-driven so that a
// given run is reproducible regardless of query order.

#include <cstddef>
#include <cstdint>
#include <string>

namespace wm::simulator {

enum class AppKind {
    kIdle = 0,
    kHpl,
    kKripke,
    kAmg,
    kNekbone,
    kLammps,
};

const char* appName(AppKind kind);
/// Parses an application name (case-insensitive); kIdle for unknown names.
AppKind appFromName(const std::string& name);

/// Typical standalone run length in seconds (matches the Fig. 7 x-axes).
double appDefaultDurationSec(AppKind kind);

/// Per-core state of an application at a point in time.
struct CoreActivity {
    double cpi = 1.0;           // cycles per instruction
    double utilization = 0.0;   // busy fraction of the interval, [0, 1]
    double vector_ratio = 0.0;  // vector instructions / all instructions
    double cache_miss_rate = 0.0;  // misses per instruction
};

/// Applies an anomaly-scenario perturbation to one core's activity
/// (src/scenario): `cpi_factor` stretches the CPI of the affected core
/// tail (the last ceil(core_fraction * num_cores) cores — network
/// congestion hits the cores whose ranks wait on remote data), and
/// `util_factor` scales the utilization of every core (a straggler node
/// computes, but slowly). Factors of 1.0 leave the activity untouched.
void applyCorePerturbation(CoreActivity& activity, double cpi_factor,
                           double core_fraction, double util_factor,
                           std::size_t core, std::size_t num_cores);

class AppModel {
  public:
    /// `seed` individualises the run (e.g. per node), keeping determinism.
    AppModel(AppKind kind, std::uint64_t seed = 0) : kind_(kind), seed_(seed) {}

    AppKind kind() const { return kind_; }

    /// Activity of core `core` (of `num_cores`) at `t_sec` seconds into the
    /// run. Deterministic in (kind, seed, core, t_sec).
    CoreActivity coreActivity(double t_sec, std::size_t core, std::size_t num_cores) const;

    /// Whole-application progress indicator in [0, 1] given the default
    /// duration; callers may loop runs by wrapping t_sec.
    double progress(double t_sec) const;

  private:
    AppKind kind_;
    std::uint64_t seed_;
};

}  // namespace wm::simulator
