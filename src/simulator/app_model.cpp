#include "simulator/app_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_utils.h"

namespace wm::simulator {

namespace {

/// Deterministic hash of (seed, core, time-block, salt) mapped to [0, 1).
/// Drives per-core events without keeping per-core state.
double hash01(std::uint64_t seed, std::uint64_t core, std::uint64_t block,
              std::uint64_t salt) {
    std::uint64_t s = seed * 0x9E3779B97F4A7C15ULL + core * 0xC2B2AE3D27D4EB4FULL +
                      block * 0x165667B19E3779F9ULL + salt * 0x27D4EB2F165667C5ULL;
    const std::uint64_t h = common::splitmix64(s);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Smooth deterministic noise: interpolated value noise over 1 s blocks.
double smoothNoise(std::uint64_t seed, std::uint64_t core, double t_sec,
                   std::uint64_t salt) {
    const double block = std::floor(t_sec);
    const double frac = t_sec - block;
    const double a = hash01(seed, core, static_cast<std::uint64_t>(block), salt);
    const double b = hash01(seed, core, static_cast<std::uint64_t>(block) + 1, salt);
    const double smooth = frac * frac * (3.0 - 2.0 * frac);  // smoothstep
    return (a * (1.0 - smooth) + b * smooth) * 2.0 - 1.0;    // [-1, 1]
}

}  // namespace

const char* appName(AppKind kind) {
    switch (kind) {
        case AppKind::kIdle: return "idle";
        case AppKind::kHpl: return "hpl";
        case AppKind::kKripke: return "kripke";
        case AppKind::kAmg: return "amg";
        case AppKind::kNekbone: return "nekbone";
        case AppKind::kLammps: return "lammps";
    }
    return "idle";
}

AppKind appFromName(const std::string& name) {
    const std::string lower = common::toLower(name);
    if (lower == "hpl") return AppKind::kHpl;
    if (lower == "kripke") return AppKind::kKripke;
    if (lower == "amg") return AppKind::kAmg;
    if (lower == "nekbone") return AppKind::kNekbone;
    if (lower == "lammps") return AppKind::kLammps;
    return AppKind::kIdle;
}

double appDefaultDurationSec(AppKind kind) {
    // Approximate run lengths from the Fig. 7 time axes.
    switch (kind) {
        case AppKind::kIdle: return 1e12;
        case AppKind::kHpl: return 600.0;
        case AppKind::kKripke: return 450.0;
        case AppKind::kAmg: return 550.0;
        case AppKind::kNekbone: return 800.0;
        case AppKind::kLammps: return 650.0;
    }
    return 600.0;
}

double AppModel::progress(double t_sec) const {
    const double duration = appDefaultDurationSec(kind_);
    return std::clamp(t_sec / duration, 0.0, 1.0);
}

CoreActivity AppModel::coreActivity(double t_sec, std::size_t core,
                                    std::size_t num_cores) const {
    CoreActivity out;
    const double noise = smoothNoise(seed_, core, t_sec, 1);
    // Fine-grained (250 ms block) activity jitter: OS noise, power
    // management and pipeline effects make sub-second behaviour genuinely
    // unpredictable on real nodes; models sampling at finer intervals see
    // more of this (the paper's 125 ms runs have the highest error).
    const double fast_jitter =
        hash01(seed_, core, static_cast<std::uint64_t>(t_sec * 4.0) + 1000003, 7) * 2.0 -
        1.0;
    switch (kind_) {
        case AppKind::kIdle: {
            // OS background noise: near-zero utilization, occasional daemon
            // wakeups on core 0.
            out.utilization = 0.01 + 0.01 * hash01(seed_, core,
                                                   static_cast<std::uint64_t>(t_sec), 2);
            if (core == 0) out.utilization += 0.03;
            out.cpi = 2.0 + 0.5 * noise;
            out.vector_ratio = 0.02;
            out.cache_miss_rate = 0.01;
            break;
        }
        case AppKind::kHpl: {
            // Steady compute-bound DGEMM: low CPI, high vectorisation.
            out.utilization = 0.98;
            out.cpi = 1.1 + 0.06 * noise;
            out.vector_ratio = 0.85 + 0.03 * noise;
            out.cache_miss_rate = 0.004 + 0.001 * std::abs(noise);
            break;
        }
        case AppKind::kLammps: {
            // Compute-bound MD: CPI ~1.6 with minimal spread (Fig. 7).
            out.utilization = 0.96;
            out.cpi = 1.6 + 0.12 * noise;
            out.vector_ratio = 0.55 + 0.05 * noise;
            out.cache_miss_rate = 0.006 + 0.002 * std::abs(noise);
            break;
        }
        case AppKind::kAmg: {
            // Network-bound multigrid: bulk of cores at low CPI, a tail of
            // cores stalled on communication spiking towards CPI ~30.
            out.utilization = 0.9;
            out.cpi = 2.0 + 0.4 * std::abs(noise);
            // Latency events: per (core, 5 s block), ~18% of cores affected.
            const auto block = static_cast<std::uint64_t>(t_sec / 5.0);
            const double event = hash01(seed_, core, block, 3);
            if (event < 0.18) {
                const double severity = hash01(seed_, core, block, 4);
                out.cpi += 8.0 + 22.0 * severity;  // up to ~30+
                out.utilization = 0.5;
            }
            out.vector_ratio = 0.35;
            out.cache_miss_rate = 0.015 + 0.005 * std::abs(noise);
            break;
        }
        case AppKind::kKripke: {
            // Sweep iterations: all cores rise and fall together (sawtooth
            // across all deciles, Fig. 7), relatively high CPI overall.
            const double period = 45.0;
            const double phase = std::fmod(t_sec, period) / period;
            const double tri = phase < 0.7 ? phase / 0.7 : (1.0 - phase) / 0.3;
            out.utilization = 0.92;
            out.cpi = 3.0 + 9.0 * tri + 0.8 * std::abs(noise);
            out.vector_ratio = 0.4;
            out.cache_miss_rate = 0.02 + 0.01 * tri;
            break;
        }
        case AppKind::kNekbone: {
            // Batch of growing problem sizes: compute-bound first half, then
            // a growing fraction of cores becomes memory-limited once the
            // working set exceeds HBM capacity (Fig. 7).
            const double duration = appDefaultDurationSec(kind_);
            const double p = std::clamp(t_sec / duration, 0.0, 1.0);
            out.utilization = 0.95;
            out.cpi = 1.8 + 0.2 * std::abs(noise);
            out.vector_ratio = 0.6;
            out.cache_miss_rate = 0.005;
            if (p > 0.5) {
                const double late = (p - 0.5) / 0.5;  // 0..1 across second half
                const double affected_fraction = 0.2 + 0.25 * late;
                // A stable pseudo-random subset of cores is memory-limited.
                const double core_draw = hash01(seed_, core, 0, 5);
                if (core_draw < affected_fraction) {
                    out.cpi = 8.0 + 22.0 * late * hash01(seed_, core, 1, 6) +
                              14.0 * late;
                    out.cache_miss_rate = 0.05 + 0.03 * late;
                    out.utilization = 0.85;
                }
            }
            break;
        }
    }
    if (kind_ != AppKind::kIdle) {
        out.utilization *= 1.0 + 0.05 * fast_jitter;
        out.cpi *= 1.0 + 0.04 * fast_jitter;
    }
    out.cpi = std::max(out.cpi, 0.2);
    out.utilization = std::clamp(out.utilization, 0.0, 1.0);
    out.vector_ratio = std::clamp(out.vector_ratio, 0.0, 1.0);
    out.cache_miss_rate = std::max(out.cache_miss_rate, 0.0);
    (void)num_cores;
    return out;
}

void applyCorePerturbation(CoreActivity& activity, double cpi_factor,
                           double core_fraction, double util_factor,
                           std::size_t core, std::size_t num_cores) {
    if (util_factor != 1.0) {
        activity.utilization =
            std::clamp(activity.utilization * std::max(util_factor, 0.0), 0.0, 1.0);
    }
    if (cpi_factor != 1.0 && num_cores > 0) {
        const double fraction = std::clamp(core_fraction, 0.0, 1.0);
        const auto affected = static_cast<std::size_t>(
            std::ceil(fraction * static_cast<double>(num_cores)));
        if (core >= num_cores - affected) {
            activity.cpi = std::max(activity.cpi * std::max(cpi_factor, 0.0), 0.2);
        }
    }
}

}  // namespace wm::simulator
