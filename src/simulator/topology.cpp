#include "simulator/topology.h"

#include <stdexcept>

namespace wm::simulator {

std::size_t Topology::nodeCount() const {
    const std::size_t raw = racks * chassis_per_rack * nodes_per_chassis;
    return max_nodes > 0 ? std::min(raw, max_nodes) : raw;
}

std::string Topology::nodePath(std::size_t node_index) const {
    if (node_index >= nodeCount()) throw std::out_of_range("node index out of range");
    const std::size_t per_rack = chassis_per_rack * nodes_per_chassis;
    const std::size_t rack = node_index / per_rack;
    const std::size_t chassis = (node_index % per_rack) / nodes_per_chassis;
    const std::size_t server = node_index % nodes_per_chassis;
    return "/rack" + std::to_string(rack) + "/chassis" + std::to_string(chassis) +
           "/server" + std::to_string(server);
}

std::vector<std::string> Topology::nodePaths() const {
    std::vector<std::string> out;
    const std::size_t n = nodeCount();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(nodePath(i));
    return out;
}

std::string Topology::cpuPath(const std::string& node_path, std::size_t cpu_index) {
    return node_path + "/cpu" + std::to_string(cpu_index);
}

Topology Topology::tiny() {
    Topology t;
    t.racks = 2;
    t.chassis_per_rack = 2;
    t.nodes_per_chassis = 2;
    t.cpus_per_node = 4;
    t.max_nodes = 0;
    return t;
}

Topology Topology::coolmuc3() {
    return Topology{};
}

Topology Topology::production10k() {
    Topology t;
    t.racks = 50;
    t.chassis_per_rack = 20;
    t.nodes_per_chassis = 10;
    t.cpus_per_node = 64;
    t.max_nodes = 0;
    return t;
}

}  // namespace wm::simulator
