#include "simulator/facility_model.h"

#include <algorithm>
#include <cmath>

namespace wm::simulator {

FacilityModel::FacilityModel(FacilityCharacteristics characteristics)
    : characteristics_(characteristics),
      setpoint_c_(characteristics.nominal_inlet_c) {
    sample_.inlet_temp_c = setpoint_c_;
    sample_.return_temp_c = setpoint_c_;
    sample_.outdoor_temp_c = characteristics_.outdoor_mean_c;
    sample_.flow_kg_per_s = characteristics_.flow_kg_per_s;
}

void FacilityModel::setInletSetpoint(double temp_c) {
    setpoint_c_ = std::clamp(temp_c, characteristics_.min_inlet_c,
                             characteristics_.max_inlet_c);
}

void FacilityModel::setPerturbation(const FacilityPerturbation& perturbation) {
    perturbation_ = perturbation;
}

void FacilityModel::advance(double dt_sec, double it_power_w) {
    if (dt_sec <= 0.0) return;
    time_sec_ += dt_sec;
    sample_.it_power_w = std::max(it_power_w, 0.0);

    // Diurnal outdoor temperature (24 h sine).
    sample_.outdoor_temp_c =
        characteristics_.outdoor_mean_c +
        characteristics_.outdoor_swing_c *
            std::sin(2.0 * M_PI * time_sec_ / 86400.0);

    // The loop's inlet relaxes towards the setpoint with the loop time
    // constant; the return temperature follows from the IT heat load:
    //   dT = P / (flow * c_p).
    // A perturbed plant relaxes towards the setpoint plus the excursion the
    // controller cannot hold (cooling-plant anomaly, src/scenario).
    const double blend = 1.0 - std::exp(-dt_sec / characteristics_.loop_tau_sec);
    const double inlet_target = setpoint_c_ + perturbation_.inlet_offset_c;
    sample_.inlet_temp_c += (inlet_target - sample_.inlet_temp_c) * blend;
    const double delta_t =
        sample_.it_power_w /
        (characteristics_.flow_kg_per_s * characteristics_.water_heat_capacity);
    sample_.return_temp_c = sample_.inlet_temp_c + delta_t;

    // Heat rejection: when the return water is warmer than outdoors, the dry
    // cooler rejects heat nearly for free; otherwise the chiller works
    // against the lift with a degrading COP. Warmer inlet setpoints raise
    // the return temperature and cut the lift — the energy-aware knob.
    const double lift = std::max(sample_.outdoor_temp_c - sample_.return_temp_c, 0.0);
    const double cop = std::max(
        (characteristics_.cop_base - characteristics_.cop_per_kelvin_lift * lift) *
            std::clamp(perturbation_.cop_factor, 0.05, 1.0),
        1.2);
    const double chiller_w = lift > 0.0 ? sample_.it_power_w / cop : 0.0;
    // Free-cooling still costs fan power, folded into the fixed overhead.
    sample_.cooling_power_w =
        chiller_w + characteristics_.overhead_fraction * sample_.it_power_w;
    sample_.pue = sample_.it_power_w > 0.0
                      ? (sample_.it_power_w + sample_.cooling_power_w) /
                            sample_.it_power_w
                      : 1.0;
    sample_.flow_kg_per_s = characteristics_.flow_kg_per_s;
}

}  // namespace wm::simulator
