#include "simulator/hpl_kernel.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"

namespace wm::simulator {

namespace {

/// Blocked C += A * B over n x n row-major matrices.
void dgemmBlocked(const double* a, const double* b, double* c, std::size_t n) {
    constexpr std::size_t kBlock = 48;
    for (std::size_t ii = 0; ii < n; ii += kBlock) {
        const std::size_t imax = std::min(ii + kBlock, n);
        for (std::size_t kk = 0; kk < n; kk += kBlock) {
            const std::size_t kmax = std::min(kk + kBlock, n);
            for (std::size_t jj = 0; jj < n; jj += kBlock) {
                const std::size_t jmax = std::min(jj + kBlock, n);
                for (std::size_t i = ii; i < imax; ++i) {
                    for (std::size_t k = kk; k < kmax; ++k) {
                        const double aik = a[i * n + k];
                        double* crow = c + i * n;
                        const double* brow = b + k * n;
                        for (std::size_t j = jj; j < jmax; ++j) {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

}  // namespace

HplResult runHplKernel(std::size_t n, std::size_t repetitions, std::uint64_t seed) {
    HplResult result;
    if (n == 0 || repetitions == 0) return result;
    std::vector<double> a(n * n);
    std::vector<double> b(n * n);
    std::vector<double> c(n * n, 0.0);
    common::Rng rng(seed);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
        dgemmBlocked(a.data(), b.data(), c.data(), n);
    }
    const auto end = std::chrono::steady_clock::now();
    result.elapsed_sec = std::chrono::duration<double>(end - start).count();

    for (double v : c) result.checksum += v;
    const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(repetitions);
    result.gflops = result.elapsed_sec > 0 ? flops / result.elapsed_sec / 1e9 : 0.0;
    return result;
}

std::size_t calibrateHplRepetitions(std::size_t n, double target_sec) {
    const HplResult probe = runHplKernel(n, 1);
    if (probe.elapsed_sec <= 0.0) return 1;
    return std::max<std::size_t>(1, static_cast<std::size_t>(target_sec / probe.elapsed_sec));
}

}  // namespace wm::simulator
