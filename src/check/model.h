#pragma once

// Front-end of the wm::sched model checker. A model test hands Model::run a
// body — ordinary code using wm::common::Thread / Mutex / ConditionVariable
// and (optionally) wm::sched::Shared<T> cells — and the checker executes it
// repeatedly under controlled schedules:
//
//   kExhaustive  DFS over every interleaving within `preemption_bound`
//                preemptions (CHESS-style iterative context bounding);
//   kPct         `pct_iterations` seeded random-priority schedules with
//                pct_depth-1 priority change points each;
//   kReplay      the single schedule recorded in `replay_trace`.
//
// The body must be deterministic apart from scheduling: given the same
// decision prefix it must issue the same operations (fresh state per call,
// no wall-clock or randomness — the model clock is virtual and starts at
// the same epoch every schedule). Violations are detected and reported as
// FailureKind::kNondeterminism rather than silently corrupting exploration.
//
// On the first failing schedule, exploration stops and the schedule trace
// is written next to the test (WM_SCHED_TRACE_DIR overrides the directory);
// rerunning the test binary with --wm-sched-replay <trace> reproduces that
// exact schedule. The conductor (caller of run) is never a model thread, so
// gtest assertions on the returned Result are safe.

#include <cstdint>
#include <functional>
#include <string>

#include "check/scheduler.h"

namespace wm::sched {

/// True when the library was built with model-checking support
/// (WM_SCHED_CHECK); false means Model::run degrades to a single
/// uncontrolled execution of the body.
bool available();

/// Process-wide replay override, set by the --wm-sched-replay flag of the
/// model-test binary: a Model whose test name matches the trace header runs
/// that single schedule instead of exploring.
void setGlobalReplayFile(const std::string& path);
const std::string& globalReplayFile();

struct Options {
    enum class Mode { kExhaustive, kPct, kReplay };

    std::string name;  // test name: trace headers, file names, replay match
    Mode mode = Mode::kExhaustive;
    int preemption_bound = 2;
    std::size_t max_schedules = 250000;     // exhaustive-mode safety valve
    std::size_t pct_iterations = 200;
    int pct_depth = 3;
    std::uint64_t seed = 0x5EED;
    std::size_t max_steps_per_schedule = 20000;
    std::size_t max_threads = 32;
    std::string trace_dir;     // "" -> $WM_SCHED_TRACE_DIR or "."
    std::string replay_trace;  // trace file path for kReplay
};

struct Result {
    bool ok = true;
    FailureKind failure = FailureKind::kNone;
    std::string message;
    bool exhausted = false;     // DFS fully enumerated the bounded space
    std::size_t schedules = 0;  // schedules executed
    std::size_t max_steps = 0;  // longest schedule seen
    std::uint64_t seed = 0;     // reproduces a PCT failure end-to-end
    std::string trace;          // serialized failing schedule ("" when ok)
    std::string trace_path;     // where the failing trace was written
};

class Model {
  public:
    explicit Model(Options options) : options_(std::move(options)) {}

    Result run(const std::function<void()>& body);

  private:
    Options options_;
};

/// One-call convenience wrapper.
Result check(Options options, const std::function<void()>& body);

}  // namespace wm::sched
