#include "check/scheduler.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <sstream>

#include "check/assert.h"

namespace wm::sched {

namespace {

// Identifies the calling thread inside hook entry points. Set by
// runModelThread; stale values on abandoned (forever-parked) threads are
// harmless because those threads never execute hooks again.
thread_local int t_current_tid = -1;

}  // namespace

const char* failureKindName(FailureKind kind) {
    switch (kind) {
        case FailureKind::kNone: return "none";
        case FailureKind::kDeadlock: return "deadlock";
        case FailureKind::kLostWakeup: return "lost_wakeup";
        case FailureKind::kDataRace: return "data_race";
        case FailureKind::kAssertion: return "assertion";
        case FailureKind::kNondeterminism: return "nondeterminism";
        case FailureKind::kLimit: return "limit";
    }
    return "?";
}

// ---------------------------------------------------------------- helpers

void Scheduler::joinVc(VectorClock& into, const VectorClock& from) {
    if (into.size() < from.size()) {
        into.resize(from.size(), 0);
    }
    for (std::size_t i = 0; i < from.size(); ++i) {
        into[i] = std::max(into[i], from[i]);
    }
}

std::uint32_t Scheduler::vcAt(const VectorClock& vc, int tid) {
    return static_cast<std::size_t>(tid) < vc.size() ? vc[tid] : 0;
}

void Scheduler::bumpEpochLocked(ThreadRec& rec) {
    if (rec.vc.size() <= static_cast<std::size_t>(rec.tid)) {
        rec.vc.resize(rec.tid + 1, 0);
    }
    ++rec.vc[rec.tid];
}

Scheduler::ThreadRec& Scheduler::currentRecLocked() {
    return *threads_[t_current_tid];
}

void Scheduler::recordEventLocked(int tid, Op op, const std::string& object,
                                  std::int64_t arg) {
    events_.push_back(TraceEvent{tid, op, object, arg});
}

// ---------------------------------------------------------------- eligibility

bool Scheduler::executableLocked(const ThreadRec& rec) const {
    if (rec.finished) {
        return false;
    }
    switch (rec.pending.op) {
        case Op::kStart:
        case Op::kSpawn:
        case Op::kUnlock:
        case Op::kUnlockShared:
        case Op::kCvWaitBegin:
        case Op::kCvNotify:
        case Op::kYield:
        case Op::kExit:
        case Op::kSharedRead:
        case Op::kSharedWrite:
            return true;
        case Op::kLock: {
            auto it = mutexes_.find(rec.pending.obj);
            return it == mutexes_.end() ||
                   (it->second.owner < 0 && it->second.readers.empty());
        }
        case Op::kLockShared: {
            auto it = mutexes_.find(rec.pending.obj);
            return it == mutexes_.end() || it->second.owner < 0;
        }
        case Op::kCvWaitResume: {
            if (!rec.notified && !rec.timed_out) {
                return false;  // still waiting for a notify or the deadline
            }
            auto it = mutexes_.find(rec.pending.obj2);
            return it == mutexes_.end() ||
                   (it->second.owner < 0 && it->second.readers.empty());
        }
        case Op::kJoin:
            return threads_[rec.pending.target]->finished;
        case Op::kSleep:
            return virtual_now_.load(std::memory_order_relaxed) >= rec.pending.deadline;
    }
    return false;
}

std::vector<int> Scheduler::eligibleSetLocked() const {
    std::vector<int> eligible;
    for (const auto& rec : threads_) {
        if (executableLocked(*rec)) {
            eligible.push_back(rec->tid);
        }
    }
    return eligible;
}

bool Scheduler::advanceVirtualTimeLocked() {
    // Timed waits fire only when the system is otherwise idle: jump the
    // model clock to the earliest pending deadline.
    common::TimestampNs best = std::numeric_limits<common::TimestampNs>::max();
    const common::TimestampNs now = virtual_now_.load(std::memory_order_relaxed);
    for (const auto& rec : threads_) {
        if (rec->finished) {
            continue;
        }
        if (rec->pending.op == Op::kSleep && rec->pending.deadline > now) {
            best = std::min(best, rec->pending.deadline);
        } else if (rec->pending.op == Op::kCvWaitResume && !rec->notified &&
                   !rec->timed_out && rec->pending.deadline >= 0) {
            best = std::min(best, rec->pending.deadline);
        }
    }
    if (best == std::numeric_limits<common::TimestampNs>::max()) {
        return false;
    }
    virtual_now_.store(best, std::memory_order_relaxed);
    for (auto& rec : threads_) {
        if (rec->finished || rec->pending.op != Op::kCvWaitResume || rec->notified ||
            rec->timed_out || rec->pending.deadline < 0 ||
            rec->pending.deadline > best) {
            continue;
        }
        rec->timed_out = true;
        auto cv = cvs_.find(rec->pending.obj);
        if (cv != cvs_.end()) {
            auto& waiters = cv->second.waiters;
            waiters.erase(std::remove(waiters.begin(), waiters.end(), rec->tid),
                          waiters.end());
        }
    }
    return true;
}

// ---------------------------------------------------------------- failures

void Scheduler::setFailureLocked(FailureKind kind, std::string message) {
    if (failure_.kind == FailureKind::kNone) {
        failure_ = Failure{kind, std::move(message)};
    }
}

std::string Scheduler::describeBlockedLocked(const ThreadRec& rec) const {
    std::ostringstream out;
    out << "t" << rec.tid << "(" << rec.name << ") ";
    switch (rec.pending.op) {
        case Op::kLock:
        case Op::kLockShared: {
            out << "blocked acquiring mutex '" << rec.pending.obj_name << "'";
            auto it = mutexes_.find(rec.pending.obj);
            if (it != mutexes_.end() && it->second.owner >= 0) {
                out << " held by t" << it->second.owner;
            }
            break;
        }
        case Op::kCvWaitResume:
            if (!rec.notified && !rec.timed_out) {
                out << "waiting on a condition variable (mutex '"
                    << rec.pending.obj_name << "') with no pending notify";
            } else {
                out << "woken from a condition wait but blocked reacquiring mutex '"
                    << rec.pending.obj_name << "'";
            }
            break;
        case Op::kJoin:
            out << "joining t" << rec.pending.target;
            break;
        default:
            out << "blocked at " << opName(rec.pending.op);
            break;
    }
    return out.str();
}

void Scheduler::reportStuckLocked() {
    // Build the waits-for graph over unfinished threads.
    std::map<int, std::vector<int>> waits_for;
    bool has_cv_waiter = false;
    for (const auto& rec : threads_) {
        if (rec->finished) {
            continue;
        }
        std::vector<int>& edges = waits_for[rec->tid];
        switch (rec->pending.op) {
            case Op::kLock:
            case Op::kLockShared: {
                auto it = mutexes_.find(rec->pending.obj);
                if (it != mutexes_.end()) {
                    if (it->second.owner >= 0) {
                        edges.push_back(it->second.owner);
                    }
                    edges.insert(edges.end(), it->second.readers.begin(),
                                 it->second.readers.end());
                }
                break;
            }
            case Op::kCvWaitResume:
                if (!rec->notified && !rec->timed_out) {
                    if (rec->pending.deadline < 0) {
                        has_cv_waiter = true;
                    }
                } else {
                    auto it = mutexes_.find(rec->pending.obj2);
                    if (it != mutexes_.end() && it->second.owner >= 0) {
                        edges.push_back(it->second.owner);
                    }
                }
                break;
            case Op::kJoin:
                edges.push_back(rec->pending.target);
                break;
            default:
                break;
        }
    }
    // Look for a cycle (iterative DFS with colouring).
    std::vector<int> cycle;
    std::map<int, int> colour;  // 0 white, 1 grey, 2 black
    std::function<bool(int, std::vector<int>&)> visit =
        [&](int tid, std::vector<int>& path) -> bool {
        colour[tid] = 1;
        path.push_back(tid);
        for (int next : waits_for[tid]) {
            if (waits_for.find(next) == waits_for.end()) {
                continue;
            }
            if (colour[next] == 1) {
                auto at = std::find(path.begin(), path.end(), next);
                cycle.assign(at, path.end());
                return true;
            }
            if (colour[next] == 0 && visit(next, path)) {
                return true;
            }
        }
        path.pop_back();
        colour[tid] = 2;
        return false;
    };
    for (const auto& [tid, edges] : waits_for) {
        (void)edges;
        std::vector<int> path;
        if (colour[tid] == 0 && visit(tid, path)) {
            break;
        }
    }

    std::ostringstream out;
    FailureKind kind;
    if (!cycle.empty()) {
        kind = FailureKind::kDeadlock;
        out << "deadlock: cycle ";
        for (int tid : cycle) {
            out << "t" << tid << " -> ";
        }
        out << "t" << cycle.front() << ". ";
    } else if (has_cv_waiter) {
        kind = FailureKind::kLostWakeup;
        out << "lost wakeup: no thread is runnable and no notify is pending. ";
    } else {
        kind = FailureKind::kDeadlock;
        out << "deadlock: no thread is runnable. ";
    }
    bool first = true;
    for (const auto& rec : threads_) {
        if (rec->finished) {
            continue;
        }
        out << (first ? "" : "; ") << describeBlockedLocked(*rec);
        first = false;
    }
    setFailureLocked(kind, out.str());
    abandoned_ = true;
    complete_cv_.notify_all();
}

// ---------------------------------------------------------------- token flow

void Scheduler::parkUntilGrantedLocked(std::unique_lock<std::mutex>& lk,
                                       ThreadRec& me) {
    while (!me.granted) {
        me.park.wait(lk);
    }
    me.granted = false;
    if (abandoned_) {
        parkForeverLocked(lk, me);
    }
}

void Scheduler::parkForeverLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me) {
    // Terminal failure: this thread is never scheduled again. Its stack (and
    // the shared_ptr<Scheduler> in its trampoline) stay live until process
    // exit, which keeps all model state reachable.
    me.granted = false;
    for (;;) {
        me.park.wait(lk);
    }
}

void Scheduler::abandonLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me) {
    abandoned_ = true;
    complete_cv_.notify_all();
    parkForeverLocked(lk, me);
}

void Scheduler::decideLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me) {
    for (;;) {
        if (abandoned_) {
            parkForeverLocked(lk, me);
        }
        std::vector<int> eligible = eligibleSetLocked();
        if (eligible.empty()) {
            if (!advanceVirtualTimeLocked()) {
                reportStuckLocked();
                parkForeverLocked(lk, me);
            }
            continue;
        }
        if (steps_ >= limits_.max_steps) {
            setFailureLocked(FailureKind::kLimit,
                             "schedule exceeded " + std::to_string(limits_.max_steps) +
                                 " steps (livelock or unbounded loop in the model)");
            abandonLocked(lk, me);
        }
        const int chosen = strategy_.choose(steps_, eligible, me.tid);
        if (chosen < 0) {
            setFailureLocked(FailureKind::kNondeterminism, strategy_.divergenceMessage());
            abandonLocked(lk, me);
        }
        ++steps_;
        if (chosen == me.tid) {
            return;  // keep the token; caller applies the pending op
        }
        ThreadRec& next = *threads_[chosen];
        next.granted = true;
        next.park.notify_all();
        parkUntilGrantedLocked(lk, me);
        return;  // re-granted: the chooser verified our op is executable
    }
}

void Scheduler::finishAndPassLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me) {
    for (;;) {
        if (abandoned_) {
            return;  // exploration is over; just let this thread die
        }
        if (std::all_of(threads_.begin(), threads_.end(),
                        [](const auto& rec) { return rec->finished; })) {
            complete_ = true;
            complete_cv_.notify_all();
            return;
        }
        std::vector<int> eligible = eligibleSetLocked();
        if (eligible.empty()) {
            if (!advanceVirtualTimeLocked()) {
                reportStuckLocked();
                return;
            }
            continue;
        }
        if (steps_ >= limits_.max_steps) {
            setFailureLocked(FailureKind::kLimit,
                             "schedule exceeded " + std::to_string(limits_.max_steps) +
                                 " steps (livelock or unbounded loop in the model)");
            abandoned_ = true;
            complete_cv_.notify_all();
            return;
        }
        const int chosen = strategy_.choose(steps_, eligible, me.tid);
        if (chosen < 0) {
            setFailureLocked(FailureKind::kNondeterminism, strategy_.divergenceMessage());
            abandoned_ = true;
            complete_cv_.notify_all();
            return;
        }
        ++steps_;
        ThreadRec& next = *threads_[chosen];
        next.granted = true;
        next.park.notify_all();
        return;
    }
}

// ---------------------------------------------------------------- run

Scheduler::Outcome Scheduler::runSchedule(const std::function<void()>& body) {
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto root = std::make_unique<ThreadRec>();
        root->tid = 0;
        root->name = "main";
        root->is_root = true;
        root->pending.op = Op::kStart;
        root->vc.assign(1, 0);
        threads_.push_back(std::move(root));
    }
    auto self = shared_from_this();
    std::thread real([self, body] { self->runModelThread(0, body); });
    Outcome out;
    {
        std::unique_lock<std::mutex> lk(mu_);
        complete_cv_.wait(lk, [&] { return complete_ || abandoned_; });
        out.failure = failure_;
        out.events = events_;
        out.steps = steps_;
        out.abandoned = abandoned_;
    }
    if (out.abandoned) {
        real.detach();
    } else {
        real.join();
    }
    return out;
}

void Scheduler::runModelThread(int tid, std::function<void()> body) {
    common::schedhooks::setCurrent(this);
    t_current_tid = tid;
    {
        std::unique_lock<std::mutex> lk(mu_);
        ThreadRec& me = *threads_[tid];
        if (me.is_root) {
            decideLocked(lk, me);  // bootstraps the token (only thread so far)
        } else {
            parkUntilGrantedLocked(lk, me);
        }
        bumpEpochLocked(me);
        recordEventLocked(tid, Op::kStart, me.name);
    }

    bool failed = false;
    std::string error;
    try {
        body();
    } catch (const ModelAssertionError& e) {
        failed = true;
        error = e.what();
    } catch (const std::exception& e) {
        failed = true;
        error = std::string("uncaught exception in model thread: ") + e.what();
    } catch (...) {
        failed = true;
        error = "uncaught non-standard exception in model thread";
    }

    {
        std::unique_lock<std::mutex> lk(mu_);
        ThreadRec& me = *threads_[tid];
        me.pending = Pending{};
        me.pending.op = Op::kExit;
        decideLocked(lk, me);
        me.finished = true;
        me.final_vc = me.vc;
        recordEventLocked(tid, Op::kExit, me.name);
        if (failed) {
            setFailureLocked(FailureKind::kAssertion, error);
        }
        finishAndPassLocked(lk, me);
    }
    t_current_tid = -1;
    common::schedhooks::setCurrent(nullptr);
}

// ---------------------------------------------------------------- hooks

void Scheduler::mutexLock(const void* mutex, const char* name, bool shared) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    MutexState& state = mutexes_[mutex];
    state.name = name;
    me.pending = Pending{};
    me.pending.op = shared ? Op::kLockShared : Op::kLock;
    me.pending.obj = mutex;
    me.pending.obj_name = name;
    decideLocked(lk, me);
    if (shared) {
        state.readers.push_back(me.tid);
    } else {
        state.owner = me.tid;
    }
    joinVc(me.vc, state.vc);
    bumpEpochLocked(me);
    recordEventLocked(me.tid, me.pending.op, name);
}

void Scheduler::mutexUnlock(const void* mutex, bool shared) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    MutexState& state = mutexes_[mutex];
    me.pending = Pending{};
    me.pending.op = shared ? Op::kUnlockShared : Op::kUnlock;
    me.pending.obj = mutex;
    me.pending.obj_name = state.name;
    decideLocked(lk, me);
    if (shared) {
        auto at = std::find(state.readers.begin(), state.readers.end(), me.tid);
        if (at == state.readers.end()) {
            setFailureLocked(FailureKind::kAssertion,
                             std::string("shared unlock of mutex '") + state.name +
                                 "' not virtually held by the unlocking thread");
            abandonLocked(lk, me);
        }
        state.readers.erase(at);
    } else {
        if (state.owner != me.tid) {
            setFailureLocked(FailureKind::kAssertion,
                             std::string("unlock of mutex '") + state.name +
                                 "' not virtually held by the unlocking thread");
            abandonLocked(lk, me);
        }
        state.owner = -1;
    }
    joinVc(state.vc, me.vc);
    bumpEpochLocked(me);
    recordEventLocked(me.tid, me.pending.op, state.name);
}

void Scheduler::cvWait(const void* cv, const void* mutex, const char* mutex_name) {
    cvWaitCommon(cv, mutex, mutex_name, -1);
}

bool Scheduler::cvWaitFor(const void* cv, const void* mutex, const char* mutex_name,
                          std::int64_t timeout_ns) {
    return cvWaitCommon(cv, mutex, mutex_name, timeout_ns);
}

bool Scheduler::cvWaitCommon(const void* cv, const void* mutex,
                             const char* mutex_name, std::int64_t timeout_ns) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    MutexState& mstate = mutexes_[mutex];
    CvState& cstate = cvs_[cv];

    me.pending = Pending{};
    me.pending.op = Op::kCvWaitBegin;
    me.pending.obj = cv;
    me.pending.obj2 = mutex;
    me.pending.obj_name = mutex_name;
    decideLocked(lk, me);
    if (mstate.owner != me.tid) {
        setFailureLocked(FailureKind::kAssertion,
                         std::string("condition wait without holding mutex '") +
                             mutex_name + "'");
        abandonLocked(lk, me);
    }
    mstate.owner = -1;
    joinVc(mstate.vc, me.vc);
    cstate.waiters.push_back(me.tid);
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kCvWaitBegin, mutex_name);

    me.notified = false;
    me.timed_out = false;
    me.pending = Pending{};
    me.pending.op = Op::kCvWaitResume;
    me.pending.obj = cv;
    me.pending.obj2 = mutex;
    me.pending.obj_name = mutex_name;
    me.pending.deadline =
        timeout_ns < 0
            ? -1
            : virtual_now_.load(std::memory_order_relaxed) + timeout_ns;
    decideLocked(lk, me);
    mstate.owner = me.tid;
    joinVc(me.vc, mstate.vc);
    if (me.notified) {
        joinVc(me.vc, cstate.vc);
    }
    const bool timed_out = me.timed_out;
    me.notified = false;
    me.timed_out = false;
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kCvWaitResume, mutex_name, timed_out ? 1 : 0);
    return timed_out;
}

void Scheduler::cvNotify(const void* cv, bool notify_all) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    CvState& cstate = cvs_[cv];
    me.pending = Pending{};
    me.pending.op = Op::kCvNotify;
    me.pending.obj = cv;
    decideLocked(lk, me);
    joinVc(cstate.vc, me.vc);
    std::int64_t woken = 0;
    while (!cstate.waiters.empty()) {
        const int waiter = cstate.waiters.front();
        cstate.waiters.erase(cstate.waiters.begin());
        threads_[waiter]->notified = true;
        ++woken;
        if (!notify_all) {
            break;
        }
    }
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kCvNotify, "", woken);
}

std::uint64_t Scheduler::threadSpawn(std::function<void()>& body, const char* name) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    if (threads_.size() >= limits_.max_threads) {
        setFailureLocked(FailureKind::kLimit,
                         "model spawned more than " +
                             std::to_string(limits_.max_threads) + " threads");
        abandonLocked(lk, me);
    }
    me.pending = Pending{};
    me.pending.op = Op::kSpawn;
    me.pending.obj_name = name;
    decideLocked(lk, me);

    const int child_tid = static_cast<int>(threads_.size());
    auto child = std::make_unique<ThreadRec>();
    child->tid = child_tid;
    child->name = name;
    child->pending.op = Op::kStart;
    bumpEpochLocked(me);
    child->vc = me.vc;  // spawn -> start happens-before
    if (child->vc.size() <= static_cast<std::size_t>(child_tid)) {
        child->vc.resize(child_tid + 1, 0);
    }
    threads_.push_back(std::move(child));
    recordEventLocked(me.tid, Op::kSpawn, name);

    auto self = shared_from_this();
    std::function<void()> original = std::move(body);
    body = [self, child_tid, original = std::move(original)] {
        self->runModelThread(child_tid, original);
    };
    return kTokenBase + static_cast<std::uint64_t>(child_tid);
}

void Scheduler::threadJoin(std::uint64_t token) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    const int target = static_cast<int>(token - kTokenBase);
    me.pending = Pending{};
    me.pending.op = Op::kJoin;
    me.pending.target = target;
    decideLocked(lk, me);
    joinVc(me.vc, threads_[target]->final_vc);  // exit -> join happens-before
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kJoin, threads_[target]->name);
}

void Scheduler::yield() {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    me.pending = Pending{};
    me.pending.op = Op::kYield;
    decideLocked(lk, me);
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kYield, "");
}

void Scheduler::sleepFor(std::int64_t ns) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    me.pending = Pending{};
    me.pending.op = Op::kSleep;
    me.pending.deadline = virtual_now_.load(std::memory_order_relaxed) + ns;
    decideLocked(lk, me);
    bumpEpochLocked(me);
    recordEventLocked(me.tid, Op::kSleep, "", ns);
}

void Scheduler::sharedAccess(const void* cell, const char* name, bool write) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec& me = currentRecLocked();
    me.pending = Pending{};
    me.pending.op = write ? Op::kSharedWrite : Op::kSharedRead;
    me.pending.obj = cell;
    me.pending.obj_name = name;
    decideLocked(lk, me);

    CellState& cstate = cells_[cell];
    cstate.name = name;
    bumpEpochLocked(me);
    const std::uint32_t epoch = me.vc[me.tid];
    recordEventLocked(me.tid, me.pending.op, name);

    std::ostringstream race;
    bool racy = false;
    if (cstate.writer_tid >= 0 && cstate.writer_tid != me.tid &&
        vcAt(me.vc, cstate.writer_tid) < cstate.writer_epoch) {
        racy = true;
        race << "data race on cell '" << name << "': " << (write ? "write" : "read")
             << " by t" << me.tid << "(" << me.name << ") is unordered with a prior"
             << " write by t" << cstate.writer_tid;
    }
    if (!racy && write) {
        for (const auto& [reader_tid, reader_epoch] : cstate.reader_epochs) {
            if (reader_tid != me.tid && vcAt(me.vc, reader_tid) < reader_epoch) {
                racy = true;
                race << "data race on cell '" << name << "': write by t" << me.tid
                     << "(" << me.name << ") is unordered with a prior read by t"
                     << reader_tid;
                break;
            }
        }
    }
    if (racy) {
        setFailureLocked(FailureKind::kDataRace, race.str());
        abandonLocked(lk, me);
    }
    if (write) {
        cstate.writer_tid = me.tid;
        cstate.writer_epoch = epoch;
        cstate.reader_epochs.clear();
    } else {
        cstate.reader_epochs[me.tid] = epoch;
    }
}

}  // namespace wm::sched
