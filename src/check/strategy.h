#pragma once

// Scheduling strategies for wm::sched. The Scheduler serialises a model run
// into a sequence of decisions — "which thread executes its next operation"
// — and delegates each decision to a Strategy:
//
//  * DfsStrategy: exhaustive depth-first enumeration of all interleavings
//    whose number of *preemptions* (switching away from a thread that could
//    have continued) stays within a bound. This is the CHESS insight: most
//    concurrency bugs manifest with very few preemptions, so a small bound
//    covers the interesting space while keeping it finite and tractable.
//  * PctStrategy: probabilistic concurrency testing — random thread
//    priorities plus d-1 seeded priority-change points per schedule, giving
//    a mathematically lower-bounded probability of hitting any bug of
//    depth <= d. For spaces too large to exhaust.
//  * ReplayStrategy: forces the decision sequence recorded in a trace file,
//    reproducing a failing schedule byte-for-byte.
//
// Strategies are deterministic: identical eligible sets produce identical
// choices for the same internal state. DfsStrategy additionally records the
// eligible set of every decision and reports divergence (a model body whose
// behaviour differs under an identical forced prefix), which would otherwise
// silently corrupt the exploration.

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/trace.h"

namespace wm::sched {

class Strategy {
  public:
    virtual ~Strategy() = default;

    /// Called before each schedule (including the first).
    virtual void beginSchedule() {}

    /// Picks the next thread to run from `eligible` (non-empty, ascending
    /// tid order). `current` is the thread that executed the previous
    /// operation; it may or may not be eligible. Returns -1 on divergence
    /// (the scheduler turns that into a kNondeterminism failure).
    virtual int choose(std::size_t step, const std::vector<int>& eligible,
                       int current) = 0;

    /// Advances to the next schedule; false ends the exploration.
    virtual bool nextSchedule() = 0;

    /// Human-readable reason after choose() returned -1.
    virtual std::string divergenceMessage() const { return "schedule divergence"; }

    /// True when nextSchedule() returned false because the bounded space
    /// was fully enumerated (DFS only).
    virtual bool exhausted() const { return false; }

    /// Mode string for trace headers: "dfs" | "pct" | "replay".
    virtual std::string mode() const = 0;
};

/// Exhaustive DFS with a preemption bound. Maintains a persistent decision
/// stack across schedules; each schedule replays the forced prefix and takes
/// the next untried alternative at the deepest frame with one available.
class DfsStrategy final : public Strategy {
  public:
    /// `preemption_bound` < 0 means unbounded.
    explicit DfsStrategy(int preemption_bound) : bound_(preemption_bound) {}

    int choose(std::size_t step, const std::vector<int>& eligible,
               int current) override;
    bool nextSchedule() override;
    bool exhausted() const override { return exhausted_; }
    std::string mode() const override { return "dfs"; }
    std::string divergenceMessage() const override { return divergence_; }

  private:
    struct Frame {
        std::vector<int> eligible;
        int current = -1;
        std::vector<int> alts;  // exploration order: current-first, then by tid
        std::size_t alt_idx = 0;
        int preemptions_before = 0;  // preemptions in the prefix up to here
    };

    bool choiceIsPreemptive(const Frame& frame, int choice) const;

    int bound_;
    std::vector<Frame> stack_;
    bool exhausted_ = false;
    bool diverged_ = false;
    std::string divergence_;
};

/// Probabilistic concurrency testing (Burckhardt et al.): each schedule
/// assigns seeded random priorities; the highest-priority eligible thread
/// always runs; d-1 random change points demote the running thread, forcing
/// a preemption. Finds depth-d bugs with probability >= 1/(n * k^(d-1)).
class PctStrategy final : public Strategy {
  public:
    PctStrategy(std::uint64_t seed, std::size_t iterations, int depth)
        : base_seed_(seed), iterations_(iterations),
          depth_(depth < 1 ? 1 : depth) {}

    void beginSchedule() override;
    int choose(std::size_t step, const std::vector<int>& eligible,
               int current) override;
    bool nextSchedule() override;
    std::string mode() const override { return "pct"; }

  private:
    std::uint64_t base_seed_;
    std::size_t iterations_;
    int depth_;

    std::size_t iteration_ = 0;
    std::mt19937_64 rng_;
    std::unordered_map<int, std::uint64_t> priority_;
    std::vector<std::size_t> change_points_;
    std::uint64_t next_demoted_priority_ = 0;
    std::size_t steps_last_run_ = 0;
    std::size_t horizon_ = 64;  // schedule-length estimate for change points
};

/// Forces the decision sequence of a recorded trace.
class ReplayStrategy final : public Strategy {
  public:
    explicit ReplayStrategy(Trace trace) : trace_(std::move(trace)) {}

    int choose(std::size_t step, const std::vector<int>& eligible,
               int current) override;
    bool nextSchedule() override { return false; }
    std::string mode() const override { return "replay"; }
    std::string divergenceMessage() const override { return divergence_; }

  private:
    Trace trace_;
    bool diverged_ = false;
    std::string divergence_;
};

}  // namespace wm::sched
