#pragma once

// Compact schedule-trace format for wm::sched. A trace is the sequence of
// scheduling decisions of one explored schedule: one line per decision,
// carrying the chosen thread and the operation it executed. A failing
// schedule serialised to this format replays byte-for-byte: feeding the
// file back (Model::Options::replay_trace, or the test binary's
// --wm-sched-replay flag) forces the scheduler to re-make exactly the same
// choices, reproducing the failure deterministically.
//
//   # wm-sched-trace v1
//   # test=broker_publish_vs_subscribe mode=dfs seed=0 preemption_bound=2
//   # failure=deadlock
//   0 t0 start
//   1 t0 spawn obj=publisher
//   2 t1 lock obj=Broker.subscriptions
//   ...

#include <cstdint>
#include <string>
#include <vector>

namespace wm::sched {

enum class Op : std::uint8_t {
    kStart,         // first scheduling of a thread
    kExit,          // thread body finished
    kSpawn,         // wm::common::Thread construction
    kJoin,          // wm::common::Thread::join
    kLock,          // Mutex/SharedMutex exclusive acquire
    kUnlock,        // exclusive release
    kLockShared,    // SharedMutex shared acquire
    kUnlockShared,  // shared release
    kCvWaitBegin,   // condition wait: release mutex, start waiting
    kCvWaitResume,  // condition wait: woken (or timed out), mutex reacquired
    kCvNotify,      // notify_one / notify_all
    kYield,         // Thread::yield
    kSleep,         // Thread::sleepFor completed (virtual time reached)
    kSharedRead,    // Shared<T> load
    kSharedWrite,   // Shared<T> store / read-modify-write
};

const char* opName(Op op);

/// One executed scheduling decision.
struct TraceEvent {
    int tid = -1;
    Op op = Op::kYield;
    std::string object;      // mutex/cv/cell/thread name, "" if n/a
    std::int64_t arg = -1;   // op-specific: timeout flag, notify count, ...
};

struct Trace {
    std::string test;
    std::string mode;            // dfs | pct | replay
    std::uint64_t seed = 0;
    int preemption_bound = -1;   // -1 = unbounded / n/a
    std::string failure;         // failure kind string, "" when passing
    std::vector<TraceEvent> events;

    std::string serialize() const;

    /// Parses a serialized trace; returns false (with `error` set) on
    /// malformed input. Unknown header keys are ignored so the format can
    /// grow.
    static bool parse(const std::string& text, Trace* out, std::string* error);
};

}  // namespace wm::sched
