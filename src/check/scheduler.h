#pragma once

// The wm::sched controlled scheduler: runs one schedule of a concurrent
// model body with execution fully serialised — exactly one model thread is
// runnable at any moment, and every transfer of control happens at a
// schedule point (mutex lock/unlock, condition wait/notify, thread
// spawn/join/exit, yield, sleep, Shared<T> access), decided by a Strategy.
//
// Mechanics:
//  * Real OS threads, virtual primitives. Each model thread is a real
//    std::thread, but when it locks a wm::common::Mutex the scheduler only
//    records *virtual* ownership — the real mutex is never touched (a real
//    lock would block a suspended owner at OS level, outside our control).
//    Serialisation guarantees mutual exclusion; the park/grant handshake
//    below runs on a real mutex + per-thread condition variables, which
//    also gives TSan the happens-before edges matching the virtual ones.
//  * Token discipline. The one runnable thread executes user code until its
//    next hook, then consults the Strategy: "which eligible thread executes
//    its pending operation next?" Choosing itself, it continues; choosing
//    another, it grants that thread's park token and parks. A thread whose
//    pending operation is not executable (mutex held, cv not notified,
//    child not finished) simply never appears in the eligible set.
//  * Virtual time. Timed waits and sleeps fire only when nothing else is
//    runnable: the clock jumps to the earliest deadline. The scheduler is a
//    ClockSource, installed as the process-global clock for the duration of
//    a run, so nowNs() is deterministic inside model bodies.
//  * Failure handling without unwinding. On a terminal failure (deadlock,
//    lost wakeup, data race, divergence, step limit) blocked threads cannot
//    be unwound safely (exceptions escaping destructors would terminate),
//    so the scheduler abandons the schedule: every model thread parks
//    forever, the conductor (the thread that called runSchedule) collects
//    the Outcome and detaches the root thread. Parked stacks keep the
//    scheduler alive through shared_ptr captures, so nothing is leaked from
//    a leak-sanitizer point of view — merely retained until process exit.
//  * Race detection. Vector clocks per thread, joined through mutex
//    release→acquire, cv notify→wake, spawn→start and exit→join edges;
//    declared Shared<T> cells keep last-writer/last-reader epochs and any
//    unordered conflicting pair is reported as a data race.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/strategy.h"
#include "check/trace.h"
#include "common/sched_hooks.h"
#include "common/time_utils.h"

namespace wm::sched {

enum class FailureKind {
    kNone,
    kDeadlock,
    kLostWakeup,
    kDataRace,
    kAssertion,       // WM_MODEL_CHECK failure or exception from a body
    kNondeterminism,  // model behaved differently under an identical prefix
    kLimit,           // step/thread limit exceeded (livelock guard)
};

const char* failureKindName(FailureKind kind);

struct Failure {
    FailureKind kind = FailureKind::kNone;
    std::string message;
};

class Scheduler final : public common::schedhooks::ModelHooks,
                        public common::ClockSource,
                        public std::enable_shared_from_this<Scheduler> {
  public:
    struct Limits {
        std::size_t max_steps = 200000;
        std::size_t max_threads = 32;
    };

    struct Outcome {
        Failure failure;
        std::vector<TraceEvent> events;
        std::size_t steps = 0;
        bool abandoned = false;  // threads were parked forever (terminal failure)
    };

    Scheduler(Strategy& strategy, Limits limits, common::TimestampNs epoch_ns)
        : strategy_(strategy), limits_(limits), virtual_now_(epoch_ns) {}

    /// Runs one schedule of `body` on a controlled root thread; blocks the
    /// calling (conductor) thread until the schedule completes or is
    /// abandoned. The conductor must NOT itself be a model thread.
    Outcome runSchedule(const std::function<void()>& body);

    /// Virtual model clock (ClockSource).
    common::TimestampNs now() const override {
        return virtual_now_.load(std::memory_order_relaxed);
    }

    // ModelHooks — called from model threads at schedule points.
    void mutexLock(const void* mutex, const char* name, bool shared) override;
    void mutexUnlock(const void* mutex, bool shared) override;
    void cvWait(const void* cv, const void* mutex, const char* mutex_name) override;
    bool cvWaitFor(const void* cv, const void* mutex, const char* mutex_name,
                   std::int64_t timeout_ns) override;
    void cvNotify(const void* cv, bool notify_all) override;
    std::uint64_t threadSpawn(std::function<void()>& body, const char* name) override;
    void threadJoin(std::uint64_t token) override;
    void yield() override;
    void sleepFor(std::int64_t ns) override;
    void sharedAccess(const void* cell, const char* name, bool write) override;

  private:
    using VectorClock = std::vector<std::uint32_t>;

    struct Pending {
        Op op = Op::kStart;
        const void* obj = nullptr;        // mutex / cv / cell
        const void* obj2 = nullptr;       // mutex of a cv wait
        const char* obj_name = "";
        std::int64_t deadline = -1;       // virtual-time deadline, -1 = none
        bool shared = false;
        int target = -1;                  // join target tid
    };

    struct ThreadRec {
        int tid = -1;
        std::string name;
        bool is_root = false;
        bool finished = false;
        bool granted = false;
        bool notified = false;   // cv wake pending
        bool timed_out = false;  // cv deadline fired
        Pending pending;
        std::condition_variable park;
        VectorClock vc;
        VectorClock final_vc;
    };

    struct MutexState {
        const char* name = "";
        int owner = -1;            // exclusive holder
        std::vector<int> readers;  // shared holders
        VectorClock vc;            // released-with clock (release -> acquire HB)
    };

    struct CvState {
        std::vector<int> waiters;  // FIFO
        VectorClock vc;            // notify -> wake HB
    };

    struct CellState {
        std::string name;
        int writer_tid = -1;
        std::uint32_t writer_epoch = 0;
        std::map<int, std::uint32_t> reader_epochs;
    };

    void runModelThread(int tid, std::function<void()> body);
    bool cvWaitCommon(const void* cv, const void* mutex, const char* mutex_name,
                      std::int64_t timeout_ns);

    // All *Locked methods require mu_.
    ThreadRec& currentRecLocked();
    bool executableLocked(const ThreadRec& rec) const;
    std::vector<int> eligibleSetLocked() const;
    bool advanceVirtualTimeLocked();
    /// One scheduling decision by the token-owning thread `me` (whose
    /// pending op is set). Returns once `me` has been (re)chosen with its
    /// op executable; never returns if the schedule is abandoned.
    void decideLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me);
    /// Exit-path variant: `me` has finished; passes the token on (or
    /// completes/abandons the schedule) and returns so the thread can die.
    void finishAndPassLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me);
    void parkUntilGrantedLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me);
    [[noreturn]] void parkForeverLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me);
    [[noreturn]] void abandonLocked(std::unique_lock<std::mutex>& lk, ThreadRec& me);
    void setFailureLocked(FailureKind kind, std::string message);
    /// No eligible thread and no timed waiter: classify and report the
    /// deadlock / lost wakeup.
    void reportStuckLocked();
    void recordEventLocked(int tid, Op op, const std::string& object,
                           std::int64_t arg = -1);
    void bumpEpochLocked(ThreadRec& rec);
    std::string describeBlockedLocked(const ThreadRec& rec) const;

    static void joinVc(VectorClock& into, const VectorClock& from);
    static std::uint32_t vcAt(const VectorClock& vc, int tid);

    Strategy& strategy_;
    Limits limits_;
    std::atomic<common::TimestampNs> virtual_now_;

    std::mutex mu_;
    std::condition_variable complete_cv_;
    bool complete_ = false;
    bool abandoned_ = false;
    Failure failure_;
    std::size_t steps_ = 0;
    std::vector<std::unique_ptr<ThreadRec>> threads_;
    std::map<const void*, MutexState> mutexes_;
    std::map<const void*, CvState> cvs_;
    std::map<const void*, CellState> cells_;
    std::vector<TraceEvent> events_;

    static constexpr std::uint64_t kTokenBase = 1000;
};

}  // namespace wm::sched
