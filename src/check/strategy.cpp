#include "check/strategy.h"

#include <algorithm>
#include <sstream>

namespace wm::sched {

namespace {

bool contains(const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
}

std::string formatSet(const std::vector<int>& v) {
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < v.size(); ++i) {
        out << (i ? "," : "") << "t" << v[i];
    }
    out << "}";
    return out.str();
}

}  // namespace

// ---------------------------------------------------------------- DFS

bool DfsStrategy::choiceIsPreemptive(const Frame& frame, int choice) const {
    // A preemption is switching away from a thread that could have kept
    // running. Forced switches (current blocked/finished) are free.
    return choice != frame.current && contains(frame.eligible, frame.current);
}

int DfsStrategy::choose(std::size_t step, const std::vector<int>& eligible,
                        int current) {
    if (diverged_) {
        return -1;
    }
    if (step < stack_.size()) {
        // Forced prefix replay: the model must behave identically.
        Frame& frame = stack_[step];
        if (frame.eligible != eligible || frame.current != current) {
            diverged_ = true;
            std::ostringstream out;
            out << "schedule diverged at step " << step << ": expected eligible "
                << formatSet(frame.eligible) << " current t" << frame.current
                << ", got " << formatSet(eligible) << " current t" << current
                << " (model body is nondeterministic)";
            divergence_ = out.str();
            return -1;
        }
        return frame.alts[frame.alt_idx];
    }
    // New frontier: push a frame and take the default (non-preemptive first:
    // keep running `current` when possible, else the lowest eligible tid).
    Frame frame;
    frame.eligible = eligible;
    frame.current = current;
    if (contains(eligible, current)) {
        frame.alts.push_back(current);
    }
    for (int tid : eligible) {
        if (tid != current) {
            frame.alts.push_back(tid);
        }
    }
    if (!stack_.empty()) {
        const Frame& prev = stack_.back();
        frame.preemptions_before =
            prev.preemptions_before +
            (choiceIsPreemptive(prev, prev.alts[prev.alt_idx]) ? 1 : 0);
    }
    stack_.push_back(std::move(frame));
    return stack_.back().alts[0];
}

bool DfsStrategy::nextSchedule() {
    if (diverged_) {
        return false;
    }
    while (!stack_.empty()) {
        Frame& frame = stack_.back();
        ++frame.alt_idx;
        while (frame.alt_idx < frame.alts.size()) {
            const int candidate = frame.alts[frame.alt_idx];
            const bool preemptive = choiceIsPreemptive(frame, candidate);
            if (!preemptive || bound_ < 0 || frame.preemptions_before < bound_) {
                return true;
            }
            ++frame.alt_idx;  // over budget; skip this alternative
        }
        stack_.pop_back();
    }
    exhausted_ = true;
    return false;
}

// ---------------------------------------------------------------- PCT

void PctStrategy::beginSchedule() {
    // Mix the iteration into the seed (splitmix-style) so every schedule
    // draws an independent but reproducible stream.
    std::uint64_t mixed = base_seed_ + 0x9E3779B97F4A7C15ull * (iteration_ + 1);
    mixed ^= mixed >> 30;
    mixed *= 0xBF58476D1CE4E5B9ull;
    mixed ^= mixed >> 27;
    rng_.seed(mixed);

    priority_.clear();
    change_points_.clear();
    // d-1 change points uniform over the estimated schedule length.
    for (int i = 0; i < depth_ - 1; ++i) {
        change_points_.push_back(rng_() % (horizon_ > 1 ? horizon_ : 1));
    }
    std::sort(change_points_.begin(), change_points_.end());
    // Demoted priorities count down below every initial priority.
    next_demoted_priority_ = static_cast<std::uint64_t>(depth_);
    steps_last_run_ = 0;
}

int PctStrategy::choose(std::size_t step, const std::vector<int>& eligible,
                        int current) {
    steps_last_run_ = step + 1;
    // Initial priorities: random values well above the demotion range,
    // assigned on first sight (thread creation order is deterministic).
    for (int tid : eligible) {
        if (priority_.find(tid) == priority_.end()) {
            priority_[tid] = (rng_() >> 16) + (static_cast<std::uint64_t>(depth_) + 1);
        }
    }
    if (std::binary_search(change_points_.begin(), change_points_.end(), step) &&
        priority_.count(current) != 0 && next_demoted_priority_ > 0) {
        priority_[current] = --next_demoted_priority_;
    }
    int best = eligible.front();
    for (int tid : eligible) {
        if (priority_[tid] > priority_[best]) {
            best = tid;
        }
    }
    return best;
}

bool PctStrategy::nextSchedule() {
    if (steps_last_run_ + 1 > horizon_) {
        horizon_ = steps_last_run_ + 1;
    }
    ++iteration_;
    return iteration_ < iterations_;
}

// ---------------------------------------------------------------- Replay

int ReplayStrategy::choose(std::size_t step, const std::vector<int>& eligible,
                           int current) {
    (void)current;
    if (diverged_) {
        return -1;
    }
    if (step >= trace_.events.size()) {
        diverged_ = true;
        divergence_ = "replay ran past the end of the trace (" +
                      std::to_string(trace_.events.size()) + " events)";
        return -1;
    }
    const int forced = trace_.events[step].tid;
    if (!std::binary_search(eligible.begin(), eligible.end(), forced)) {
        diverged_ = true;
        std::ostringstream out;
        out << "replay diverged at step " << step << ": trace schedules t" << forced
            << " but eligible set is " << formatSet(eligible);
        divergence_ = out.str();
        return -1;
    }
    return forced;
}

}  // namespace wm::sched
