#include "check/trace.h"

#include <cstdio>
#include <sstream>

namespace wm::sched {

namespace {

struct OpNameEntry {
    Op op;
    const char* name;
};

constexpr OpNameEntry kOpNames[] = {
    {Op::kStart, "start"},
    {Op::kExit, "exit"},
    {Op::kSpawn, "spawn"},
    {Op::kJoin, "join"},
    {Op::kLock, "lock"},
    {Op::kUnlock, "unlock"},
    {Op::kLockShared, "lock_shared"},
    {Op::kUnlockShared, "unlock_shared"},
    {Op::kCvWaitBegin, "cv_wait"},
    {Op::kCvWaitResume, "cv_resume"},
    {Op::kCvNotify, "cv_notify"},
    {Op::kYield, "yield"},
    {Op::kSleep, "sleep"},
    {Op::kSharedRead, "read"},
    {Op::kSharedWrite, "write"},
};

bool opFromName(const std::string& name, Op* out) {
    for (const auto& entry : kOpNames) {
        if (name == entry.name) {
            *out = entry.op;
            return true;
        }
    }
    return false;
}

}  // namespace

const char* opName(Op op) {
    for (const auto& entry : kOpNames) {
        if (entry.op == op) {
            return entry.name;
        }
    }
    return "?";
}

std::string Trace::serialize() const {
    std::ostringstream out;
    out << "# wm-sched-trace v1\n";
    out << "# test=" << test << " mode=" << mode << " seed=" << seed
        << " preemption_bound=" << preemption_bound << "\n";
    if (!failure.empty()) {
        out << "# failure=" << failure << "\n";
    }
    std::size_t step = 0;
    for (const auto& event : events) {
        out << step++ << " t" << event.tid << " " << opName(event.op);
        if (!event.object.empty()) {
            out << " obj=" << event.object;
        }
        if (event.arg >= 0) {
            out << " arg=" << event.arg;
        }
        out << "\n";
    }
    return out.str();
}

bool Trace::parse(const std::string& text, Trace* out, std::string* error) {
    *out = Trace{};
    std::istringstream in(text);
    std::string line;
    bool saw_magic = false;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            if (line.find("wm-sched-trace") != std::string::npos) {
                saw_magic = true;
                continue;
            }
            // Header key=value pairs.
            std::istringstream header(line.substr(1));
            std::string token;
            while (header >> token) {
                auto eq = token.find('=');
                if (eq == std::string::npos) {
                    continue;
                }
                const std::string key = token.substr(0, eq);
                const std::string value = token.substr(eq + 1);
                if (key == "test") {
                    out->test = value;
                } else if (key == "mode") {
                    out->mode = value;
                } else if (key == "seed") {
                    out->seed = std::strtoull(value.c_str(), nullptr, 10);
                } else if (key == "preemption_bound") {
                    out->preemption_bound = std::atoi(value.c_str());
                } else if (key == "failure") {
                    out->failure = value;
                }
            }
            continue;
        }
        // Event line: <step> t<tid> <op> [obj=...] [arg=...]
        std::istringstream ev(line);
        std::size_t step = 0;
        std::string tid_token;
        std::string op_token;
        if (!(ev >> step >> tid_token >> op_token) || tid_token.size() < 2 ||
            tid_token[0] != 't') {
            if (error) {
                *error = "malformed trace line " + std::to_string(line_no) + ": " + line;
            }
            return false;
        }
        TraceEvent event;
        event.tid = std::atoi(tid_token.c_str() + 1);
        if (!opFromName(op_token, &event.op)) {
            if (error) {
                *error = "unknown op '" + op_token + "' on trace line " +
                         std::to_string(line_no);
            }
            return false;
        }
        std::string extra;
        while (ev >> extra) {
            if (extra.rfind("obj=", 0) == 0) {
                event.object = extra.substr(4);
            } else if (extra.rfind("arg=", 0) == 0) {
                event.arg = std::strtoll(extra.c_str() + 4, nullptr, 10);
            }
        }
        out->events.push_back(std::move(event));
    }
    if (!saw_magic) {
        if (error) {
            *error = "missing wm-sched-trace header";
        }
        return false;
    }
    return true;
}

}  // namespace wm::sched
