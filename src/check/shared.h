#pragma once

// Declared shared cells for wm::sched model tests. A Shared<T> is a plain
// value whose every access is (a) a schedule point and (b) registered with
// the checker's vector-clock race detector: two accesses from different
// threads, at least one a write, with no happens-before edge between them
// (via mutexes, condition variables, or thread spawn/join) are reported as
// a data race with a replayable trace. Because model execution is fully
// serialised, the underlying accesses are physically safe even when racy —
// the detector flags the *ordering* bug, not memory corruption.
//
// Outside a model run every operation degrades to a plain access.

#include "common/sched_hooks.h"

namespace wm::sched {

template <typename T>
class Shared {
  public:
    explicit Shared(T value = T{}, const char* name = "cell")
        : value_(value), name_(name) {}

    Shared(const Shared&) = delete;
    Shared& operator=(const Shared&) = delete;

    T load() const {
        access(false);
        return value_;
    }

    void store(const T& value) {
        access(true);
        value_ = value;
    }

    /// Read-modify-write, treated as a single atomic step by the scheduler
    /// (one schedule point, one write access). Returns the previous value.
    T fetchAdd(const T& delta) {
        access(true);
        T previous = value_;
        value_ = static_cast<T>(value_ + delta);
        return previous;
    }

  private:
    void access(bool write) const {
        if (auto* hooks = common::schedhooks::current()) {
            hooks->sharedAccess(this, name_, write);
        }
    }

    T value_;
    const char* name_;
};

}  // namespace wm::sched
