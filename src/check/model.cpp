#include "check/model.h"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "check/assert.h"

namespace wm::sched {

namespace {

std::string g_replay_file;

// The model clock starts at a fixed, recognisable epoch (2021-01-01 UTC) so
// timestamps inside model bodies are deterministic across schedules and
// visibly virtual in logs.
constexpr common::TimestampNs kModelEpochNs = 1609459200LL * common::kNsPerSec;

std::string sanitizeName(const std::string& name) {
    std::string out;
    for (char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        out.push_back(keep ? c : '_');
    }
    return out.empty() ? "model" : out;
}

std::string traceDirectory(const Options& options) {
    // The environment wins over Options::trace_dir: test helpers default
    // trace_dir to a per-run temp directory, and CI must still be able to
    // redirect failing traces into its artifact directory from outside.
    if (const char* env = std::getenv("WM_SCHED_TRACE_DIR")) {
        if (env[0] != '\0') {
            return env;
        }
    }
    if (!options.trace_dir.empty()) {
        return options.trace_dir;
    }
    return ".";
}

}  // namespace

bool available() {
#ifdef WM_SCHED_CHECK
    return true;
#else
    return false;
#endif
}

void setGlobalReplayFile(const std::string& path) { g_replay_file = path; }

const std::string& globalReplayFile() { return g_replay_file; }

Result check(Options options, const std::function<void()>& body) {
    return Model(std::move(options)).run(body);
}

#ifndef WM_SCHED_CHECK

// Without instrumentation the hooks in src/common compile to no-ops, so the
// best we can do is a single uncontrolled execution. Tests gate their
// exploration assertions on wm::sched::available().
Result Model::run(const std::function<void()>& body) {
    Result result;
    result.schedules = 1;
    result.seed = options_.seed;
    try {
        body();
    } catch (const std::exception& e) {
        result.ok = false;
        result.failure = FailureKind::kAssertion;
        result.message = e.what();
    } catch (...) {
        result.ok = false;
        result.failure = FailureKind::kAssertion;
        result.message = "uncaught non-standard exception in model body";
    }
    return result;
}

#else  // WM_SCHED_CHECK

Result Model::run(const std::function<void()>& body) {
    Options options = options_;

    // A --wm-sched-replay trace takes over the matching test and is ignored
    // by every other test in the binary.
    Trace replay_trace;
    if (options.mode != Options::Mode::kReplay && !g_replay_file.empty()) {
        std::ifstream in(g_replay_file);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            std::string error;
            Trace parsed;
            if (Trace::parse(buffer.str(), &parsed, &error) &&
                parsed.test == options.name) {
                options.mode = Options::Mode::kReplay;
                options.replay_trace = g_replay_file;
                replay_trace = std::move(parsed);
            }
        }
    }

    Result result;
    result.seed = options.seed;

    std::unique_ptr<Strategy> strategy;
    switch (options.mode) {
        case Options::Mode::kExhaustive:
            strategy = std::make_unique<DfsStrategy>(options.preemption_bound);
            break;
        case Options::Mode::kPct:
            strategy = std::make_unique<PctStrategy>(
                options.seed, options.pct_iterations, options.pct_depth);
            break;
        case Options::Mode::kReplay: {
            if (replay_trace.events.empty() && !options.replay_trace.empty()) {
                std::ifstream in(options.replay_trace);
                std::stringstream buffer;
                buffer << in.rdbuf();
                std::string error;
                if (!Trace::parse(buffer.str(), &replay_trace, &error)) {
                    result.ok = false;
                    result.failure = FailureKind::kNondeterminism;
                    result.message = "cannot replay '" + options.replay_trace +
                                     "': " + error;
                    return result;
                }
            }
            strategy = std::make_unique<ReplayStrategy>(std::move(replay_trace));
            break;
        }
    }

    Scheduler::Limits limits;
    limits.max_steps = options.max_steps_per_schedule;
    limits.max_threads = options.max_threads;

    for (;;) {
        strategy->beginSchedule();
        auto scheduler = std::make_shared<Scheduler>(*strategy, limits, kModelEpochNs);
        common::setGlobalClock(scheduler.get());
        Scheduler::Outcome outcome = scheduler->runSchedule(body);
        common::setGlobalClock(nullptr);
        ++result.schedules;
        result.max_steps = std::max(result.max_steps, outcome.steps);

        if (outcome.failure.kind != FailureKind::kNone) {
            result.ok = false;
            result.failure = outcome.failure.kind;
            result.message = outcome.failure.message;

            Trace trace;
            trace.test = options.name;
            trace.mode = strategy->mode();
            trace.seed = options.seed;
            trace.preemption_bound =
                options.mode == Options::Mode::kExhaustive ? options.preemption_bound
                                                           : -1;
            trace.failure = failureKindName(outcome.failure.kind);
            trace.events = std::move(outcome.events);
            result.trace = trace.serialize();

            // Replay runs reproduce an existing trace; don't overwrite it —
            // report the file the schedule came from instead.
            if (options.mode == Options::Mode::kReplay) {
                result.trace_path = options.replay_trace;
                result.message += " [replayed from " + options.replay_trace + "]";
            } else {
                const std::string path = traceDirectory(options) + "/" +
                                         sanitizeName(options.name) + ".trace";
                std::ofstream out(path, std::ios::trunc);
                if (out) {
                    out << result.trace;
                    result.trace_path = path;
                    result.message += " [schedule " + std::to_string(result.schedules) +
                                      "; trace: " + path +
                                      "; replay with --wm-sched-replay " + path + "]";
                }
            }
            return result;
        }

        if (!strategy->nextSchedule()) {
            result.exhausted = strategy->exhausted();
            return result;
        }
        if (result.schedules >= options.max_schedules) {
            return result;  // budget exhausted without full enumeration
        }
    }
}

#endif  // WM_SCHED_CHECK

}  // namespace wm::sched
