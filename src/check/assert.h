#pragma once

// Invariant checks inside model-test bodies. gtest's ASSERT/EXPECT machinery
// is not usable there: bodies run on checker-controlled threads (not the
// test's main thread) and a failure must abort the *schedule* with a
// replayable trace, not the process. WM_MODEL_CHECK throws a
// ModelAssertionError that the model-thread trampoline catches and converts
// into a FailureKind::kAssertion outcome carrying the schedule trace.
//
// Place body-side checks after every child thread has been joined: an
// exception unwinding past a joinable wm::common::Thread terminates, exactly
// like std::thread. Checks inside child-thread bodies are always safe.

#include <sstream>
#include <stdexcept>
#include <string>

namespace wm::sched {

class ModelAssertionError : public std::runtime_error {
  public:
    explicit ModelAssertionError(const std::string& what)
        : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void modelCheckFailed(const char* expr, const char* file, int line,
                                          const std::string& detail) {
    std::ostringstream out;
    out << "model invariant failed: " << expr << " at " << file << ":" << line;
    if (!detail.empty()) {
        out << " (" << detail << ")";
    }
    throw ModelAssertionError(out.str());
}

}  // namespace detail
}  // namespace wm::sched

#define WM_MODEL_CHECK(cond)                                                      \
    do {                                                                          \
        if (!(cond)) {                                                            \
            ::wm::sched::detail::modelCheckFailed(#cond, __FILE__, __LINE__, ""); \
        }                                                                         \
    } while (0)

#define WM_MODEL_CHECK_MSG(cond, msg)                                        \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream wm_model_check_out;                           \
            wm_model_check_out << msg;                                       \
            ::wm::sched::detail::modelCheckFailed(#cond, __FILE__, __LINE__, \
                                                  wm_model_check_out.str()); \
        }                                                                    \
    } while (0)
