#include "collectagent/collect_agent.h"

#include "common/logging.h"

namespace wm::collectagent {

CollectAgent::CollectAgent(CollectAgentConfig config, mqtt::Broker& broker,
                           storage::StorageBackend& storage)
    : config_(std::move(config)),
      broker_(broker),
      storage_(storage),
      cache_store_(config_.cache_window_ns) {}

CollectAgent::~CollectAgent() {
    stop();
}

void CollectAgent::start() {
    common::MutexLock lock(lifecycle_mutex_);
    if (subscription_.load(std::memory_order_relaxed) != 0) return;
    subscription_.store(
        broker_.subscribe(config_.filter,
                          [this](const mqtt::Message& message) { onMessage(message); }),
        std::memory_order_release);
    WM_LOG(kInfo, "collectagent")
        << config_.name << ": subscribed to '" << config_.filter << "'";
}

void CollectAgent::stop() {
    common::MutexLock lock(lifecycle_mutex_);
    const mqtt::SubscriptionId id = subscription_.load(std::memory_order_relaxed);
    if (id == 0) return;
    broker_.unsubscribe(id);
    subscription_.store(0, std::memory_order_release);
    WM_LOG(kInfo, "collectagent") << config_.name << ": stopped";
}

void CollectAgent::onMessage(const mqtt::Message& message) {
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    sensors::SensorCache& cache = cache_store_.getOrCreate(message.topic);
    for (const auto& reading : message.readings) cache.store(reading);
    if (config_.forward_to_storage) {
        storage_.insertBatch(message.topic, message.readings);
    }
    readings_stored_.fetch_add(message.readings.size(), std::memory_order_relaxed);
}

}  // namespace wm::collectagent
