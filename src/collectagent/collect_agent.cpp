#include "collectagent/collect_agent.h"

#include "common/fault.h"
#include "common/logging.h"
#include "persist/serializer.h"

namespace wm::collectagent {

namespace {

std::string encodeQuarantineRecord(const std::string& topic,
                                   const sensors::Reading& reading) {
    persist::Encoder encoder;
    encoder.putString(topic);
    encoder.putI64(reading.timestamp);
    encoder.putF64(reading.value);
    return encoder.take();
}

}  // namespace

CollectAgent::CollectAgent(CollectAgentConfig config, mqtt::Broker& broker,
                           storage::Storage& storage)
    : config_(std::move(config)),
      broker_(broker),
      storage_(storage),
      cache_store_(config_.cache_window_ns) {
    if (config_.quarantine_wal_path.empty()) return;
    common::MutexLock lock(quarantine_mutex_);
    // Replay before opening the writer: a torn tail must be truncated while
    // no writer holds an append offset past it.
    std::deque<QuarantinedReading> recovered;
    const persist::WalReplayStats stats =
        persist::replayWal(config_.quarantine_wal_path, [&](std::string_view payload) {
            persist::Decoder decoder(payload);
            QuarantinedReading entry;
            decoder.getString(&entry.topic);
            decoder.getI64(&entry.reading.timestamp);
            decoder.getF64(&entry.reading.value);
            if (!decoder.ok()) return;
            recovered.push_back(std::move(entry));
        });
    if (config_.quarantine_max > 0) {
        while (recovered.size() > config_.quarantine_max) recovered.pop_front();
        quarantine_ = std::move(recovered);
    }
    quarantine_wal_replayed_.store(stats.records_applied, std::memory_order_relaxed);
    quarantine_wal_ = std::make_unique<persist::WalWriter>();
    if (!quarantine_wal_->open(config_.quarantine_wal_path)) {
        WM_LOG(kWarning, "collectagent")
            << config_.name << ": cannot open quarantine journal at "
            << config_.quarantine_wal_path << "; journaling disabled";
        quarantine_wal_.reset();
    } else if (stats.records_applied > 0) {
        WM_LOG(kInfo, "collectagent")
            << config_.name << ": recovered " << quarantine_.size()
            << " quarantined reading(s) from journal";
    }
}

CollectAgent::~CollectAgent() {
    stop();
}

void CollectAgent::start() {
    common::MutexLock lock(lifecycle_mutex_);
    if (!subscriptions_.empty()) return;
    const std::vector<std::string> filters =
        config_.filters.empty() ? std::vector<std::string>{config_.filter}
                                : config_.filters;
    for (const auto& filter : filters) {
        const mqtt::SubscriptionId id = broker_.subscribe(
            filter, [this](const mqtt::Message& message) { onMessage(message); });
        if (id == 0) {
            WM_LOG(kWarning, "collectagent")
                << config_.name << ": invalid filter '" << filter << "' skipped";
            continue;
        }
        subscriptions_.push_back(id);
        WM_LOG(kInfo, "collectagent")
            << config_.name << ": subscribed to '" << filter << "'";
    }
    running_.store(!subscriptions_.empty(), std::memory_order_release);
}

void CollectAgent::stop() {
    common::MutexLock lock(lifecycle_mutex_);
    if (subscriptions_.empty()) return;
    for (const mqtt::SubscriptionId id : subscriptions_) broker_.unsubscribe(id);
    subscriptions_.clear();
    running_.store(false, std::memory_order_release);
    WM_LOG(kInfo, "collectagent") << config_.name << ": stopped";
}

void CollectAgent::onMessage(const mqtt::Message& message) {
    if (const auto fault = common::fault::check("collectagent.ingest")) {
        if (fault.action == common::fault::Action::kDelay) {
            common::fault::applyDelay(fault.delay_ns);
        } else {  // a crashed/overloaded agent loses the message entirely
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    if (message.sequence != 0) {
        // Per-topic dedup: at-least-once replay (Pusher::replayRecent) and
        // redelivery after a restart must not double-count readings.
        common::MutexLock lock(quarantine_mutex_);
        std::uint64_t& last = last_sequence_[message.topic];
        if (message.sequence <= last) {
            dedup_drops_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        last = message.sequence;
    }
    sensors::SensorCache& cache = cache_store_.getOrCreate(message.topic);
    for (const auto& reading : message.readings) cache.store(reading);
    if (!config_.forward_to_storage) {
        readings_stored_.fetch_add(message.readings.size(), std::memory_order_relaxed);
        return;
    }
    sensors::ReadingVector rejected;
    const std::size_t inserted =
        storage_.insertBatch(message.topic, message.readings, &rejected);
    readings_stored_.fetch_add(inserted, std::memory_order_relaxed);
    if (!rejected.empty()) quarantine(message.topic, rejected);
}

void CollectAgent::quarantine(const std::string& topic,
                              const sensors::ReadingVector& readings) {
    storage_errors_total_.fetch_add(readings.size(), std::memory_order_relaxed);
    common::MutexLock lock(quarantine_mutex_);
    storage_errors_[topic] += readings.size();
    if (config_.quarantine_max == 0) {
        quarantine_overflow_.fetch_add(readings.size(), std::memory_order_relaxed);
        return;
    }
    bool overflowed = false;
    for (const auto& reading : readings) {
        while (quarantine_.size() >= config_.quarantine_max) {
            quarantine_.pop_front();  // oldest-first drop
            quarantine_overflow_.fetch_add(1, std::memory_order_relaxed);
            overflowed = true;
        }
        quarantine_.push_back({topic, reading});
    }
    if (quarantine_wal_ != nullptr) {
        if (overflowed) {
            // Evictions invalidated the journal's prefix: rewrite it.
            rewriteQuarantineWal();
        } else {
            for (const auto& reading : readings) {
                quarantine_wal_->append(encodeQuarantineRecord(topic, reading));
            }
        }
    }
    WM_LOG(kWarning, "collectagent")
        << config_.name << ": storage refused " << readings.size()
        << " reading(s) for " << topic << "; quarantined (" << quarantine_.size()
        << " pending)";
}

std::size_t CollectAgent::retryQuarantined() {
    common::MutexLock lock(quarantine_mutex_);
    std::size_t drained = 0;
    std::size_t remaining = quarantine_.size();
    // One pass over the current contents: re-refused readings go back to
    // the tail, preserving oldest-first order among survivors.
    while (remaining-- > 0) {
        QuarantinedReading entry = std::move(quarantine_.front());
        quarantine_.pop_front();
        if (storage_.insert(entry.topic, entry.reading)) {
            readings_stored_.fetch_add(1, std::memory_order_relaxed);
            ++drained;
        } else {
            quarantine_.push_back(std::move(entry));
        }
    }
    if (drained > 0) {
        if (quarantine_wal_ != nullptr) rewriteQuarantineWal();
        WM_LOG(kInfo, "collectagent")
            << config_.name << ": storage recovered, drained " << drained
            << " quarantined reading(s), " << quarantine_.size() << " left";
    }
    return drained;
}

void CollectAgent::rewriteQuarantineWal() {
    if (!quarantine_wal_->reset()) return;
    for (const auto& entry : quarantine_) {
        quarantine_wal_->append(encodeQuarantineRecord(entry.topic, entry.reading));
    }
}

std::size_t CollectAgent::quarantinedReadings() const {
    common::MutexLock lock(quarantine_mutex_);
    return quarantine_.size();
}

std::uint64_t CollectAgent::storageErrors(const std::string& topic) const {
    common::MutexLock lock(quarantine_mutex_);
    auto it = storage_errors_.find(topic);
    return it == storage_errors_.end() ? 0 : it->second;
}

}  // namespace wm::collectagent
