#include "collectagent/collect_agent.h"

#include "common/logging.h"

namespace wm::collectagent {

CollectAgent::CollectAgent(CollectAgentConfig config, mqtt::Broker& broker,
                           storage::StorageBackend& storage)
    : config_(std::move(config)),
      broker_(broker),
      storage_(storage),
      cache_store_(config_.cache_window_ns) {}

CollectAgent::~CollectAgent() {
    stop();
}

void CollectAgent::start() {
    if (subscription_ != 0) return;
    subscription_ = broker_.subscribe(
        config_.filter, [this](const mqtt::Message& message) { onMessage(message); });
    WM_LOG(kInfo, "collectagent")
        << config_.name << ": subscribed to '" << config_.filter << "'";
}

void CollectAgent::stop() {
    if (subscription_ == 0) return;
    broker_.unsubscribe(subscription_);
    subscription_ = 0;
    WM_LOG(kInfo, "collectagent") << config_.name << ": stopped";
}

void CollectAgent::onMessage(const mqtt::Message& message) {
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    sensors::SensorCache& cache = cache_store_.getOrCreate(message.topic);
    for (const auto& reading : message.readings) cache.store(reading);
    if (config_.forward_to_storage) {
        storage_.insertBatch(message.topic, message.readings);
    }
    readings_stored_.fetch_add(message.readings.size(), std::memory_order_relaxed);
}

}  // namespace wm::collectagent
